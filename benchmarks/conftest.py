"""Shared infrastructure for the figure-reproduction benchmarks.

Every benchmark module regenerates one table or figure of the paper's
evaluation (§VII).  Runs are cached per (workload, threads, size, mode)
within a pytest session so that the per-workload benchmark entries and the
full-sweep report tests do not repeat work, and every report is also
written to ``benchmarks/results/`` as a plain-text table.
"""

from __future__ import annotations

import os
from typing import Dict, Tuple

import pytest

from repro.baselines.native import NativeRunResult
from repro.inspector.api import run_native, run_with_provenance
from repro.inspector.config import InspectorConfig
from repro.inspector.session import InspectorRunResult
from repro.workloads.registry import get_workload

#: Thread counts swept by Figure 5 (the paper uses 2..16 on a 16-hyperthread box).
FIG5_THREAD_COUNTS = (2, 4, 8, 16)

#: The thread count used by Figures 6, 7, and 9.
HEADLINE_THREADS = 16

#: Directory the text reports are written into.
RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


_dataset_cache: Dict[Tuple[str, str], object] = {}
_native_cache: Dict[Tuple[str, int, str], NativeRunResult] = {}
_inspector_cache: Dict[Tuple[str, int, str], InspectorRunResult] = {}


def benchmark_config() -> InspectorConfig:
    """The configuration every benchmark run uses (defaults: 4 KiB pages)."""
    return InspectorConfig()


def dataset_for(name: str, size: str = "medium"):
    """Generate (and cache) the dataset of one workload."""
    key = (name, size)
    if key not in _dataset_cache:
        _dataset_cache[key] = get_workload(name).generate_dataset(size)
    return _dataset_cache[key]


def native_run(name: str, threads: int, size: str = "medium") -> NativeRunResult:
    """Run (and cache) the native baseline for one configuration."""
    key = (name, threads, size)
    if key not in _native_cache:
        _native_cache[key] = run_native(
            get_workload(name), threads, dataset=dataset_for(name, size), config=benchmark_config()
        )
    return _native_cache[key]


def inspector_run(name: str, threads: int, size: str = "medium") -> InspectorRunResult:
    """Run (and cache) the INSPECTOR execution for one configuration."""
    key = (name, threads, size)
    if key not in _inspector_cache:
        _inspector_cache[key] = run_with_provenance(
            get_workload(name), threads, dataset=dataset_for(name, size), config=benchmark_config()
        )
    return _inspector_cache[key]


def overhead(name: str, threads: int, size: str = "medium") -> float:
    """INSPECTOR-over-native time overhead for one configuration."""
    return inspector_run(name, threads, size).stats.overhead_against(
        native_run(name, threads, size).stats
    )


def write_report(filename: str, lines) -> str:
    """Write a report to ``benchmarks/results/<filename>`` and return its path."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, filename)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines) + "\n")
    return path


@pytest.fixture(scope="session")
def results_dir() -> str:
    """The directory benchmark reports are written into."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR

"""Figure 6: breakdown of the provenance overhead at 16 threads.

The paper splits the total overhead into the *threading library* component
(process creation, page faults, diffs/commits, synchronization bookkeeping)
and the *OS support for Intel PT* component (trace generation, the perf
consumer), and observes that the three outliers spend their time in the
threading library while PT tracing is the dominant added cost for the
well-behaved applications.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import HEADLINE_THREADS, inspector_run, native_run, write_report
from repro.workloads.registry import OUTLIER_WORKLOADS, list_workloads

WORKLOADS = list_workloads()


def breakdown(workload: str) -> dict:
    """Return the Figure 6 row for one workload."""
    traced = inspector_run(workload, HEADLINE_THREADS).stats
    native = native_run(workload, HEADLINE_THREADS).stats
    base = native.total_seconds
    return {
        "total_overhead": traced.total_seconds / base if base else 0.0,
        "threading_overhead": (traced.compute_seconds + traced.threading_seconds) / base
        if base
        else 0.0,
        "pt_overhead": traced.pt_seconds / base if base else 0.0,
        "threading_seconds": traced.threading_seconds,
        "pt_seconds": traced.pt_seconds,
    }


@pytest.mark.parametrize("workload", WORKLOADS)
def test_fig6_breakdown_per_workload(benchmark, workload):
    """Benchmark and decompose one workload's overhead."""
    row = benchmark.pedantic(lambda: breakdown(workload), rounds=1, iterations=1)
    benchmark.extra_info.update(
        {key: round(value, 3) for key, value in row.items() if key.endswith("overhead")}
    )
    # The two components plus the application compute account for the total.
    assert row["threading_overhead"] + row["pt_overhead"] == pytest.approx(
        row["total_overhead"], rel=1e-6
    )


def test_fig6_outliers_dominated_by_threading_library(benchmark):
    """canneal / reverse_index / kmeans spend their overhead in the threading library."""

    def rows():
        return {name: breakdown(name) for name in OUTLIER_WORKLOADS}

    result = benchmark.pedantic(rows, rounds=1, iterations=1)
    for name, row in result.items():
        assert row["threading_seconds"] > row["pt_seconds"], (name, row)


def test_fig6_pt_is_significant_for_wellbehaved_workloads(benchmark):
    """For the non-outlier applications the PT component is a large share of the
    *added* cost, which is the paper's "hardware is still the bottleneck" point."""

    def shares():
        result = {}
        for name in WORKLOADS:
            if name in OUTLIER_WORKLOADS:
                continue
            stats = inspector_run(name, HEADLINE_THREADS).stats
            added = stats.threading_seconds + stats.pt_seconds
            result[name] = stats.pt_seconds / added if added else 0.0
        return result

    result = benchmark.pedantic(shares, rounds=1, iterations=1)
    significant = [name for name, share in result.items() if share >= 0.2]
    assert len(significant) >= 5, result


def test_fig6_report(benchmark):
    """Write the Figure 6 table to results/."""

    def table():
        return {name: breakdown(name) for name in WORKLOADS}

    rows = benchmark.pedantic(table, rounds=1, iterations=1)
    lines = [
        "Figure 6: overhead breakdown at 16 threads (normalized to native = 1.0)",
        f"{'workload':20s} {'total':>7s} {'threading':>10s} {'intel-pt':>9s}",
    ]
    for name, row in rows.items():
        lines.append(
            f"{name:20s} {row['total_overhead']:7.2f} {row['threading_overhead']:10.2f} "
            f"{row['pt_overhead']:9.2f}"
        )
    path = write_report("fig6_overhead_breakdown.txt", lines)
    print("\n".join(lines))
    print(f"[written to {path}]")
    assert len(rows) == 12

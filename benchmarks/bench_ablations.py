"""Ablation benchmarks for the design choices called out in DESIGN.md.

These are not paper figures; they quantify the main design decisions of the
system so that a user can see what each mechanism costs or buys:

* page-granularity tracking (page size sweep) -- the paper's trade-off of
  faults versus precision;
* the two overhead sources in isolation (memory tracking only / PT only);
* snapshot mode versus full-trace mode of the AUX buffer;
* sub-computation-level provenance versus process-level provenance
  (the PASS/LPM-style baseline).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import dataset_for, write_report
from repro.baselines.process_prov import precision_comparison
from repro.inspector.api import run_with_provenance
from repro.inspector.config import InspectorConfig
from repro.workloads.registry import get_workload

THREADS = 8


def run_with(workload: str, **config_overrides):
    config = InspectorConfig(**config_overrides)
    return run_with_provenance(
        get_workload(workload), THREADS, dataset=dataset_for(workload, "medium"), config=config
    )


@pytest.mark.parametrize("page_size", (1024, 4096, 16384))
def test_ablation_page_size(benchmark, page_size):
    """Smaller pages mean more faults (finer provenance), larger pages fewer."""
    result = benchmark.pedantic(
        lambda: run_with("word_count", page_size=page_size), rounds=1, iterations=1
    )
    benchmark.extra_info["page_faults"] = result.stats.page_faults
    benchmark.extra_info["page_size"] = page_size
    assert result.stats.page_faults > 0


def test_ablation_page_size_monotonicity(benchmark):
    """Fault counts decrease monotonically as the page grows."""

    def faults():
        return [
            run_with("word_count", page_size=size).stats.page_faults
            for size in (1024, 4096, 16384)
        ]

    counts = benchmark.pedantic(faults, rounds=1, iterations=1)
    assert counts[0] >= counts[1] >= counts[2], counts


def test_ablation_memory_tracking_only(benchmark):
    """Disabling PT isolates the threading-library overhead (Figure 6's split)."""
    result = benchmark.pedantic(
        lambda: run_with("histogram", enable_pt=False), rounds=1, iterations=1
    )
    assert result.stats.pt_bytes == 0
    assert result.stats.page_faults > 0
    benchmark.extra_info["threading_seconds"] = round(result.stats.threading_seconds * 1e3, 3)


def test_ablation_pt_only(benchmark):
    """Disabling memory tracking isolates the control-flow tracing overhead."""
    result = benchmark.pedantic(
        lambda: run_with("histogram", enable_memory_tracking=False), rounds=1, iterations=1
    )
    assert result.stats.page_faults == 0
    assert result.stats.pt_bytes > 0
    benchmark.extra_info["pt_seconds"] = round(result.stats.pt_seconds * 1e3, 3)


def test_ablation_full_stack_costs_more_than_each_half(benchmark):
    """The full system is at least as expensive as either mechanism alone."""

    def totals():
        full = run_with("histogram").stats.total_seconds
        memory_only = run_with("histogram", enable_pt=False).stats.total_seconds
        pt_only = run_with("histogram", enable_memory_tracking=False).stats.total_seconds
        return full, memory_only, pt_only

    full, memory_only, pt_only = benchmark.pedantic(totals, rounds=1, iterations=1)
    assert full >= memory_only * 0.99
    assert full >= pt_only * 0.99


def test_ablation_snapshot_mode_bounds_space(benchmark):
    """Snapshot (overwrite) AUX mode bounds the stored trace; full-trace mode may lose data."""

    def run_modes():
        small_aux = 64 * 1024
        full = run_with("streamcluster", aux_buffer_size=small_aux, pt_snapshot_mode=False)
        snap = run_with("streamcluster", aux_buffer_size=small_aux, pt_snapshot_mode=True)
        return full.stats, snap.stats

    full_stats, snap_stats = benchmark.pedantic(run_modes, rounds=1, iterations=1)
    # Full-trace mode with a tiny buffer drops data; snapshot mode never
    # reports *lost* bytes (old data is overwritten instead).
    assert snap_stats.pt_bytes_lost == 0
    benchmark.extra_info["full_trace_lost_bytes"] = full_stats.pt_bytes_lost


def test_ablation_snapshot_facility_overhead_is_bounded(benchmark):
    """Taking periodic consistent snapshots does not change the recorded provenance."""

    def run_pair():
        plain = run_with("reverse_index")
        snapshotting = run_with("reverse_index", enable_snapshots=True, snapshot_interval=32)
        return plain, snapshotting

    plain, snapshotting = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    assert len(plain.cpg) == len(snapshotting.cpg)
    assert snapshotting.backend.snapshotter.stats.snapshots_taken > 0


def test_ablation_subcomputation_vs_process_granularity(benchmark):
    """The CPG distinguishes far more dependencies than process-level provenance."""

    def compare():
        result = run_with("reverse_index")
        return precision_comparison(result.cpg)

    comparison = benchmark.pedantic(compare, rounds=1, iterations=1)
    benchmark.extra_info["precision_ratio"] = round(comparison["precision_ratio"], 1)
    assert comparison["fine_nodes"] > 4 * comparison["coarse_nodes"]
    lines = [
        "Ablation: sub-computation vs process-granularity provenance (reverse_index, 8 threads)",
        *(f"{key:22s} {value:10.1f}" for key, value in comparison.items()),
    ]
    write_report("ablation_granularity.txt", lines)

"""Figure 7 (table): runtime statistics for all benchmarks with 16 threads.

The paper's table lists, per application, the dataset/parameters, the total
number of page faults, and the page-fault rate.  The reproduction
regenerates the same columns from the simulated run and checks the
qualitative structure: canneal and kmeans are the heaviest fault producers,
and every application faults at a rate far below its instruction rate
(page granularity is what keeps tracking affordable).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import HEADLINE_THREADS, inspector_run, write_report
from repro.workloads.registry import get_workload, list_workloads

WORKLOADS = list_workloads()


def runtime_row(workload: str) -> dict:
    """The Figure 7 row for one workload."""
    stats = inspector_run(workload, HEADLINE_THREADS).stats
    reference = get_workload(workload).paper
    return {
        "dataset": reference.dataset if reference else "",
        "page_faults": stats.page_faults,
        "faults_per_sec": stats.faults_per_second,
        "paper_page_faults": reference.page_faults if reference else 0.0,
        "paper_faults_per_sec": reference.faults_per_sec if reference else 0.0,
    }


@pytest.mark.parametrize("workload", WORKLOADS)
def test_fig7_runtime_statistics(benchmark, workload):
    """Benchmark one workload and extract its fault statistics."""
    row = benchmark.pedantic(lambda: runtime_row(workload), rounds=1, iterations=1)
    benchmark.extra_info["page_faults"] = row["page_faults"]
    benchmark.extra_info["faults_per_sec"] = round(row["faults_per_sec"])
    assert row["page_faults"] > 0
    assert row["faults_per_sec"] > 0


def test_fig7_canneal_is_the_heaviest_fault_producer(benchmark):
    """In the paper canneal takes by far the most page faults (2.1e6).

    In the scaled-down reproduction reverse_index (whose per-link critical
    sections re-fault the shared index continuously) ends up in the same
    league, so the assertion is that canneal sits in the top two and above
    kmeans -- the paper's second-heaviest producer.  See EXPERIMENTS.md.
    """

    def faults():
        return {name: inspector_run(name, HEADLINE_THREADS).stats.page_faults for name in WORKLOADS}

    result = benchmark.pedantic(faults, rounds=1, iterations=1)
    ordered = sorted(result, key=result.get, reverse=True)
    assert "canneal" in ordered[:2], result
    assert result["canneal"] > result["kmeans"], result


def test_fig7_kmeans_among_top_fault_producers(benchmark):
    """kmeans re-faults its working set from every fresh worker generation."""

    def rank():
        counts = {
            name: inspector_run(name, HEADLINE_THREADS).stats.page_faults for name in WORKLOADS
        }
        ordered = sorted(counts, key=counts.get, reverse=True)
        return ordered.index("kmeans")

    position = benchmark.pedantic(rank, rounds=1, iterations=1)
    assert position <= 3


def test_fig7_report(benchmark):
    """Write the Figure 7 table (measured vs paper) to results/."""

    def table():
        return {name: runtime_row(name) for name in WORKLOADS}

    rows = benchmark.pedantic(table, rounds=1, iterations=1)
    lines = [
        "Figure 7: runtime statistics with 16 threads (measured | paper)",
        f"{'workload':18s} {'page faults':>12s} {'faults/sec':>12s} "
        f"{'paper faults':>13s} {'paper f/sec':>12s}  dataset",
    ]
    for name, row in rows.items():
        lines.append(
            f"{name:18s} {row['page_faults']:12d} {row['faults_per_sec']:12.0f} "
            f"{row['paper_page_faults']:13.2e} {row['paper_faults_per_sec']:12.2e}  {row['dataset']}"
        )
    path = write_report("fig7_runtime_stats.txt", lines)
    print("\n".join(lines))
    print(f"[written to {path}]")
    assert len(rows) == 12

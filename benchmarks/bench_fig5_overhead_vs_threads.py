"""Figure 5: provenance time overhead over native execution, 2-16 threads.

The paper's claims reproduced here:

* a majority of the applications (9/12) stay in a "reasonable" overhead
  band, roughly 1x-3x over native pthreads;
* canneal, reverse_index, and kmeans are high-overhead outliers;
* linear_regression runs *faster* than pthreads (threads-as-processes
  avoids its false sharing);
* the overhead grows with the number of threads.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import (
    FIG5_THREAD_COUNTS,
    HEADLINE_THREADS,
    inspector_run,
    native_run,
    overhead,
    write_report,
)
from repro.workloads.registry import OUTLIER_WORKLOADS, list_workloads

WORKLOADS = list_workloads()


@pytest.mark.parametrize("workload", WORKLOADS)
def test_fig5_overhead_at_16_threads(benchmark, workload):
    """Benchmark one workload under INSPECTOR at 16 threads (Figure 5's right edge)."""

    def run_once():
        return inspector_run(workload, HEADLINE_THREADS)

    result = benchmark.pedantic(run_once, rounds=1, iterations=1)
    factor = result.stats.overhead_against(native_run(workload, HEADLINE_THREADS).stats)
    benchmark.extra_info["overhead_vs_native"] = round(factor, 2)
    benchmark.extra_info["threads"] = HEADLINE_THREADS
    assert factor > 0


def test_fig5_linear_regression_is_faster_than_pthreads(benchmark):
    """linear_regression: INSPECTOR avoids the benchmark's false sharing."""
    factor = benchmark.pedantic(
        lambda: overhead("linear_regression", HEADLINE_THREADS), rounds=1, iterations=1
    )
    assert factor < 1.0


def test_fig5_outliers_have_high_overhead(benchmark):
    """canneal, reverse_index, and kmeans sit clearly above the majority band."""

    def factors():
        return {name: overhead(name, HEADLINE_THREADS) for name in OUTLIER_WORKLOADS}

    result = benchmark.pedantic(factors, rounds=1, iterations=1)
    assert all(value > 3.5 for value in result.values()), result


def test_fig5_majority_band(benchmark):
    """Most applications stay within a moderate overhead of native execution.

    The paper's band is roughly 1x-2.5x; the scaled-down reproduction lands
    slightly higher (datasets are orders of magnitude smaller, so fixed
    provenance costs weigh more -- see EXPERIMENTS.md), but the structure
    is the same: the non-outlier applications stay within a few x, and
    canneal is the single largest overhead.
    """

    def factors():
        return {name: overhead(name, HEADLINE_THREADS) for name in WORKLOADS}

    result = benchmark.pedantic(factors, rounds=1, iterations=1)
    non_outliers = [name for name in WORKLOADS if name not in OUTLIER_WORKLOADS]
    in_band = [name for name in non_outliers if result[name] <= 4.0]
    assert len(in_band) >= 8, result
    # canneal is the single largest overhead, as in the paper's Figure 5.
    assert max(result, key=result.get) == "canneal"


def test_fig5_overhead_grows_with_threads(benchmark):
    """The provenance overhead increases with the thread count (Figure 5 trend)."""

    def trend():
        per_thread = {}
        for name in ("histogram", "string_match", "canneal"):
            per_thread[name] = [overhead(name, threads) for threads in (2, HEADLINE_THREADS)]
        return per_thread

    result = benchmark.pedantic(trend, rounds=1, iterations=1)
    growing = sum(1 for values in result.values() if values[-1] > values[0])
    assert growing >= 2, result


def test_fig5_full_sweep_report(benchmark):
    """Regenerate the full Figure 5 sweep and write the table to results/."""

    def sweep():
        table = {}
        for name in WORKLOADS:
            table[name] = {
                threads: overhead(name, threads) for threads in FIG5_THREAD_COUNTS
            }
        return table

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    header = f"{'workload':20s}" + "".join(f"  {t:>2d}T" for t in FIG5_THREAD_COUNTS)
    lines = ["Figure 5: INSPECTOR time overhead over native pthreads (x)", header]
    for name, row in table.items():
        lines.append(
            f"{name:20s}" + "".join(f" {row[threads]:5.2f}" for threads in FIG5_THREAD_COUNTS)
        )
    path = write_report("fig5_overhead_vs_threads.txt", lines)
    print("\n".join(lines))
    print(f"[written to {path}]")
    assert len(table) == 12

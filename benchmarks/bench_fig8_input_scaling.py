"""Figure 8: overhead scaling with the input size (16 threads).

The paper runs the four applications that ship with small/medium/large
inputs (histogram, linear_regression, string_match, word_count) and shows
that the gap between pthreads and INSPECTOR *narrows* as the input grows:
with more data per thread, relatively less time is spent in the
shared-memory commit and the other fixed provenance costs.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import HEADLINE_THREADS, dataset_for, overhead, write_report
from repro.workloads.base import SIZES
from repro.workloads.registry import INPUT_SCALING_WORKLOADS


@pytest.mark.parametrize("workload", INPUT_SCALING_WORKLOADS)
@pytest.mark.parametrize("size", SIZES)
def test_fig8_overhead_per_size(benchmark, workload, size):
    """Benchmark one (workload, input size) cell of Figure 8."""
    factor = benchmark.pedantic(
        lambda: overhead(workload, HEADLINE_THREADS, size), rounds=1, iterations=1
    )
    benchmark.extra_info["overhead_vs_native"] = round(factor, 2)
    benchmark.extra_info["input_bytes"] = dataset_for(workload, size).size_bytes
    assert factor > 0


@pytest.mark.parametrize("workload", INPUT_SCALING_WORKLOADS)
def test_fig8_gap_narrows_with_larger_inputs(benchmark, workload):
    """The INSPECTOR-vs-native gap shrinks from the small to the large input."""

    def factors():
        return [overhead(workload, HEADLINE_THREADS, size) for size in SIZES]

    small, _, large = benchmark.pedantic(factors, rounds=1, iterations=1)
    assert large < small, (workload, small, large)


def test_fig8_report(benchmark):
    """Write the Figure 8 table (overhead and input size per variant) to results/."""

    def table():
        rows = {}
        for name in INPUT_SCALING_WORKLOADS:
            rows[name] = {
                size: {
                    "overhead": overhead(name, HEADLINE_THREADS, size),
                    "input_bytes": dataset_for(name, size).size_bytes,
                }
                for size in SIZES
            }
        return rows

    rows = benchmark.pedantic(table, rounds=1, iterations=1)
    lines = [
        "Figure 8: overhead vs input size at 16 threads",
        f"{'workload':20s} " + "".join(f"{size:>22s}" for size in SIZES),
    ]
    for name, row in rows.items():
        cells = "".join(
            f"  {row[size]['overhead']:5.2f}x ({row[size]['input_bytes'] // 1024:5d} KiB)"
            for size in SIZES
        )
        lines.append(f"{name:20s} {cells}")
    path = write_report("fig8_input_scaling.txt", lines)
    print("\n".join(lines))
    print(f"[written to {path}]")
    assert len(rows) == 4

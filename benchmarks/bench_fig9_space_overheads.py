"""Figure 9 (table): space overheads of the provenance log with 16 threads.

Per application the paper reports the provenance-log size, the
lz4-compressed size and ratio, the log bandwidth, and the branch rate, and
makes two quantitative observations reproduced here: the log bandwidth is
strongly correlated with the branch rate (coefficient 0.89 in the paper),
and the log is highly compressible (between 6x and 37x).
"""

from __future__ import annotations

import math

import pytest

from benchmarks.conftest import HEADLINE_THREADS, inspector_run, write_report
from repro.compression.lz import compression_ratio
from repro.workloads.registry import get_workload, list_workloads

WORKLOADS = list_workloads()

#: Compress at most this many bytes per workload; the ratio is extrapolated
#: (the pure-Python match finder is the slow part of the reproduction).
COMPRESSION_SAMPLE_LIMIT = 96 * 1024


def space_row(workload: str) -> dict:
    """The Figure 9 row for one workload."""
    result = inspector_run(workload, HEADLINE_THREADS)
    stats = result.stats
    raw = result.perf_data.raw_trace()
    compressed = compression_ratio(raw, sample_limit=COMPRESSION_SAMPLE_LIMIT)
    reference = get_workload(workload).paper
    return {
        "log_bytes": stats.perf_log_bytes,
        "compressed_bytes": compressed.compressed_size,
        "ratio": compressed.ratio,
        "bandwidth": stats.log_bandwidth_bytes_per_second,
        "branch_rate": stats.branches_per_second,
        "branches": stats.branch_instructions,
        "paper_log_mb": reference.log_mb if reference else 0.0,
        "paper_ratio": reference.compression_ratio if reference else 0.0,
    }


@pytest.mark.parametrize("workload", WORKLOADS)
def test_fig9_space_overheads_per_workload(benchmark, workload):
    """Benchmark one workload's trace production and compression."""
    row = benchmark.pedantic(lambda: space_row(workload), rounds=1, iterations=1)
    benchmark.extra_info["log_bytes"] = row["log_bytes"]
    benchmark.extra_info["compression_ratio"] = round(row["ratio"], 1)
    assert row["log_bytes"] > 0
    assert row["ratio"] >= 1.0


def test_fig9_logs_are_highly_compressible(benchmark):
    """The provenance log compresses well (the paper reports 6x-37x).

    Workloads whose simulated branch outcomes are data dependent
    (string_match, swaptions, canneal) compress far less here than in the
    paper because the simulated trace is almost pure TNT entropy, whereas a
    real PT stream carries a lot of structured framing; the regular
    workloads reach paper-like ratios.  See EXPERIMENTS.md.
    """

    def ratios():
        return {name: space_row(name)["ratio"] for name in WORKLOADS}

    result = benchmark.pedantic(ratios, rounds=1, iterations=1)
    assert all(ratio >= 0.9 for ratio in result.values()), result
    compressible = [ratio for ratio in result.values() if ratio > 4.0]
    assert len(compressible) >= 6, result
    assert max(result.values()) > 15.0


def test_fig9_bandwidth_correlates_with_branch_rate(benchmark):
    """Log bandwidth tracks the branch rate (0.89 correlation in the paper)."""

    def correlation():
        rows = [space_row(name) for name in WORKLOADS]
        xs = [row["branch_rate"] for row in rows]
        ys = [row["bandwidth"] for row in rows]
        mean_x = sum(xs) / len(xs)
        mean_y = sum(ys) / len(ys)
        cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
        var_x = math.sqrt(sum((x - mean_x) ** 2 for x in xs))
        var_y = math.sqrt(sum((y - mean_y) ** 2 for y in ys))
        return cov / (var_x * var_y) if var_x and var_y else 0.0

    coefficient = benchmark.pedantic(correlation, rounds=1, iterations=1)
    assert coefficient > 0.6, coefficient


def test_fig9_streamcluster_has_the_largest_trace(benchmark):
    """streamcluster produces the biggest log in the paper (29.3 GB)."""

    def sizes():
        return {name: space_row(name)["log_bytes"] for name in WORKLOADS}

    result = benchmark.pedantic(sizes, rounds=1, iterations=1)
    ordered = sorted(result, key=result.get, reverse=True)
    assert "streamcluster" in ordered[:2], result


def test_fig9_report(benchmark):
    """Write the Figure 9 table (measured vs paper) to results/."""

    def table():
        return {name: space_row(name) for name in WORKLOADS}

    rows = benchmark.pedantic(table, rounds=1, iterations=1)
    lines = [
        "Figure 9: space overheads with 16 threads (measured; paper ratio in parentheses)",
        f"{'workload':18s} {'log KiB':>9s} {'compr KiB':>10s} {'ratio':>7s} "
        f"{'MB/s':>8s} {'branch/s':>10s} {'paper ratio':>12s}",
    ]
    for name, row in rows.items():
        lines.append(
            f"{name:18s} {row['log_bytes'] / 1024:9.1f} {row['compressed_bytes'] / 1024:10.1f} "
            f"{row['ratio']:6.1f}x {row['bandwidth'] / 1e6:8.1f} {row['branch_rate']:10.2e} "
            f"{row['paper_ratio']:11.0f}x"
        )
    path = write_report("fig9_space_overheads.txt", lines)
    print("\n".join(lines))
    print(f"[written to {path}]")
    assert len(rows) == 12

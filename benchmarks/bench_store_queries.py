"""Store benchmark: indexed on-disk queries vs. full-graph reload.

The persistent store exists so post-run provenance queries (the paper's
case studies) do not need the whole CPG in memory.  This benchmark makes
the win concrete: for backward slices, page lineage, and taint propagation
it compares

* **reload** -- read the whole serialized CPG back from disk and run the
  in-memory query (what every consumer had to do before the store), and
* **indexed** -- open the store cold and let the
  :class:`~repro.store.query.StoreQueryEngine` load only the segments its
  indexes select,

asserting on the way that both paths return identical results and that the
indexed path decoded strictly fewer segments than the store holds.

Run under pytest (``pytest benchmarks/bench_store_queries.py``) or
standalone (``PYTHONPATH=src python benchmarks/bench_store_queries.py``).
"""

from __future__ import annotations

import os
import time
from typing import Callable, Dict, List, Tuple

from repro.core.cpg import ConcurrentProvenanceGraph
from repro.core.queries import backward_slice, lineage_of_pages, propagate_taint
from repro.core.serialization import node_key, read_cpg, write_cpg
from repro.store import ProvenanceStore, StoreQueryEngine

#: Sub-computations per segment; small enough that slices span few of them.
SEGMENT_NODES = 32

#: Benchmarked configuration.  ``reverse_index`` takes a lock per insert,
#: so its CPG has hundreds of sub-computations -- a graph size where the
#: store's indexed access pays off over re-reading the whole document.
WORKLOAD = "reverse_index"
THREADS = 8

#: Timing repetitions (best-of to shave scheduler noise).
REPEATS = 5


def prepare(base_dir: str, cpg: ConcurrentProvenanceGraph) -> Tuple[str, str]:
    """Persist ``cpg`` both ways: as a store and as a flat JSON document."""
    store_dir = os.path.join(base_dir, "store")
    ProvenanceStore.create(store_dir).ingest(cpg, segment_nodes=SEGMENT_NODES)
    json_path = os.path.join(base_dir, "cpg.json")
    write_cpg(cpg, json_path, indent=None)
    return store_dir, json_path


def pick_targets(cpg: ConcurrentProvenanceGraph) -> Tuple[tuple, List[int]]:
    """A slice origin with a non-trivial but *localized* history, plus pages.

    The interesting case for an out-of-core store is a query about one
    corner of the graph (one thread's result, one buffer), not the final
    aggregation whose history is the entire run -- so pick the
    worker-thread node with the largest data-backward slice, and
    taint/lineage pages from its write set.
    """
    candidates = [cpg.thread_nodes(tid)[-1] for tid in cpg.threads() if tid >= 1]
    if not candidates:
        candidates = [node for node in cpg.nodes() if node[0] >= 0]
    origin = max(candidates, key=lambda node: len(backward_slice(cpg, node)))
    pages = sorted(cpg.subcomputation(origin).write_set)[:2]
    if not pages:
        input_node = cpg.input_node
        pages = sorted(cpg.subcomputation(input_node).write_set)[:2] if input_node else [0]
    return origin, pages


def best_of(fn: Callable[[], object], repeats: int = REPEATS) -> float:
    """Best wall-clock seconds of ``repeats`` calls."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def compare_queries(cpg: ConcurrentProvenanceGraph, store_dir: str, json_path: str) -> List[dict]:
    """Run every query both ways; return one report row per query."""
    origin, pages = pick_targets(cpg)
    cases = [
        (
            f"backward_slice {node_key(origin)}",
            lambda graph: backward_slice(graph, origin),
            lambda engine: engine.backward_slice(origin),
            True,
        ),
        (
            f"lineage_of_pages {pages}",
            lambda graph: lineage_of_pages(graph, pages),
            lambda engine: engine.lineage_of_pages(pages),
            True,
        ),
        (
            # Taint from a worker's buffer floods through the shared result
            # pages in most workloads, so "touches every segment" can be
            # the correct answer here; only equality is asserted.
            f"propagate_taint {pages}",
            lambda graph: frozenset(propagate_taint(graph, pages).tainted_nodes),
            lambda engine: frozenset(engine.propagate_taint(pages).tainted_nodes),
            False,
        ),
    ]
    rows = []
    for label, reload_query, indexed_query, expect_subset in cases:

        def reload_path():
            return reload_query(read_cpg(json_path))

        def indexed_path():
            return indexed_query(StoreQueryEngine(ProvenanceStore.open(store_dir)))

        expected = reload_path()
        store = ProvenanceStore.open(store_dir)
        engine = StoreQueryEngine(store)
        actual = indexed_query(engine)
        assert actual == expected, f"{label}: indexed result diverged"
        if engine.last_taint_mode is not None:
            label += f" [{engine.last_taint_mode}]"
        segments_read = engine.segments_loaded
        total_segments = store.manifest.segment_count
        if expect_subset:
            assert segments_read < total_segments, (
                f"{label}: read {segments_read}/{total_segments} segments -- not out-of-core"
            )
        reload_seconds = best_of(reload_path)
        indexed_seconds = best_of(indexed_path)
        rows.append(
            {
                "query": label,
                "reload_ms": reload_seconds * 1e3,
                "indexed_ms": indexed_seconds * 1e3,
                "speedup": reload_seconds / indexed_seconds if indexed_seconds else float("inf"),
                "segments_read": segments_read,
                "total_segments": total_segments,
            }
        )
    return rows


def report_lines(rows: List[dict]) -> List[str]:
    lines = [
        f"Store queries: indexed on-disk vs full reload ({WORKLOAD}, {THREADS} threads)",
        f"{'query':34s} {'reload ms':>10s} {'indexed ms':>11s} {'speedup':>8s} {'segments':>10s}",
    ]
    for row in rows:
        lines.append(
            f"{row['query']:34s} {row['reload_ms']:10.2f} {row['indexed_ms']:11.2f} "
            f"{row['speedup']:7.1f}x {row['segments_read']:>4d}/{row['total_segments']:<4d}"
        )
    return lines


# ---------------------------------------------------------------------- #
# pytest entry points
# ---------------------------------------------------------------------- #


def test_store_queries_report(benchmark, tmp_path):
    """Write the store-query comparison table and assert the indexed win."""
    from benchmarks.conftest import inspector_run, write_report

    cpg = inspector_run(WORKLOAD, THREADS).cpg

    def run() -> List[dict]:
        store_dir, json_path = prepare(str(tmp_path), cpg)
        return compare_queries(cpg, store_dir, json_path)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    path = write_report("store_queries.txt", report_lines(rows))
    print("\n".join(report_lines(rows)))
    print(f"[written to {path}]")
    assert len(rows) == 3
    # The indexed path must beat reloading the whole graph on at least the
    # localized queries (slice + lineage).
    assert any(row["speedup"] > 1.0 for row in rows)


def test_indexed_slice_touches_a_strict_segment_subset(benchmark, tmp_path):
    """Acceptance: a slice decodes fewer segments than the store holds."""
    from benchmarks.conftest import inspector_run

    cpg = inspector_run(WORKLOAD, THREADS).cpg
    store_dir, _ = prepare(str(tmp_path), cpg)
    origin, _ = pick_targets(cpg)

    def run():
        store = ProvenanceStore.open(store_dir)
        engine = StoreQueryEngine(store)
        result = engine.backward_slice(origin)
        return result, engine.segments_loaded, store.manifest.segment_count

    result, segments_read, total = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result == backward_slice(cpg, origin)
    assert 0 < segments_read < total


def test_queries_survive_compaction_with_identical_results(benchmark, tmp_path):
    """Compaction must shrink fragmentation, never change an answer.

    A sink-streamed store (short epochs + edge-only data-edge tails) is
    the fragmented case compaction exists for; every query must return
    exactly the in-memory result before and after.
    """
    from repro.inspector.api import run_with_provenance

    store_dir = str(tmp_path / "streamed-store")
    result = run_with_provenance(
        WORKLOAD, num_threads=THREADS, size="small", store_path=store_dir
    )
    cpg = result.cpg
    origin, pages = pick_targets(cpg)
    before = ProvenanceStore.open(store_dir).manifest.segment_count

    def run():
        store = ProvenanceStore.open(store_dir)
        stats = store.compact(segment_nodes=SEGMENT_NODES)
        engine = StoreQueryEngine(ProvenanceStore.open(store_dir))
        return stats, engine.backward_slice(origin), engine.lineage_of_pages(pages)

    stats, slice_after, lineage_after = benchmark.pedantic(run, rounds=1, iterations=1)
    assert stats.segments_after <= before
    assert slice_after == backward_slice(cpg, origin)
    assert lineage_after == lineage_of_pages(cpg, pages)


# ---------------------------------------------------------------------- #
# Standalone entry point
# ---------------------------------------------------------------------- #


def main() -> None:
    import tempfile

    from repro.inspector.api import run_with_provenance

    cpg = run_with_provenance(WORKLOAD, num_threads=THREADS, size="small").cpg
    with tempfile.TemporaryDirectory(prefix="inspector-bench-") as tmp:
        store_dir, json_path = prepare(tmp, cpg)
        rows = compare_queries(cpg, store_dir, json_path)
    print("\n".join(report_lines(rows)))


if __name__ == "__main__":
    main()

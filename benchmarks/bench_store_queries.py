"""Store benchmarks: out-of-core queries, codecs, flush cost, warm reads.

The persistent store exists so post-run provenance queries (the paper's
case studies) do not need the whole CPG in memory, and so ingest overhead
stays bounded as runs grow.  Nine scenarios keep those claims honest:

* **queries** -- backward slices, page lineage, and taint propagation,
  comparing a full serialized-CPG reload against the
  :class:`~repro.store.query.StoreQueryEngine` loading only the segments
  its indexes select (identical results asserted on the way);
* **codec_decode** -- one dense segment encoded with the v3 ``json``
  codec, the v4 ``binary`` codec, and the v6 ``binary-z`` default
  (zlib-compressed columnar), timing decode (and encode) of each and
  recording the stored-vs-raw bytes: ``binary-z`` must keep the binary
  decode advantage without giving the lz+JSON disk win back;
* **ingest_flush** -- a long streamed run with ``flush_every_epochs=1``,
  comparing the v3 write path (json segments + whole-index rewrite per
  flush, via ``index_full_rewrite``) against the v4 default (binary
  segments + O(epoch) index deltas): the v3 per-flush cost grows with the
  run, the v4 cost must not;
* **flush_scaling** -- the same streamed run committed through the v4
  commit mechanism (whole-manifest rewrite per flush, via
  ``manifest_full_rewrite``) and the v5 one (one framed record appended
  to ``segments.log``): the rewrite cost grows with the store's segment
  count, the log append must stay flat;
* **remote_ingest** -- a run streamed over TCP into a writable
  :class:`~repro.store.server.StoreServer` (``begin_run`` /
  ``append_epoch`` / ``commit_run``), reporting epochs/s and nodes/s
  with every epoch durable before its reply;
* **query_warm_vs_cold** -- the same repeated query served cold (fresh
  open, empty cache, index merge per query -- the one-shot CLI profile)
  and warm (one long-lived engine over a shared
  :class:`~repro.store.cache.SegmentCache` + pinned indexes -- the
  server profile); the warm path must report cache hits and beat cold;
* **parallel_scan** -- a run-spanning taint sweep decoded sequentially
  and through the pooled multi-segment scan, asserted identical, plus a
  **cold sweep**: every segment decoded from a cleared cache at widths
  1/2/4 through the store's shared decode pools (the process-pool path
  on multi-core machines), recording the machine's core count and the
  widest-vs-sequential speedup the CI gate checks;
* **cluster_scatter_gather** -- the same across-runs lineage query served
  by one store server and by a :class:`~repro.store.cluster.StoreCluster`
  of 1, 2, and 4 shards, every server given the *same* cache budget (a
  bit over half the decoded working set): one server thrashes, the
  sharded configs keep their partition warm, and the aggregate QPS and
  p99 under concurrent clients show it (results asserted identical to
  the single-store engine, merge order included);
* **scrub_throughput** -- the deep integrity pass
  (:func:`repro.store.integrity.scrub`) over the whole store, reporting
  verified MB/s, plus the same warm repeated query timed alone and again
  with a scrub looping next to it: scrub reads files directly rather
  than through the decoded-segment cache, so it must add zero cache
  misses and leave warm query latency within 1.5x of baseline;
* **fleet_ingest_maintenance** -- a concurrent run-fleet
  (:func:`repro.store.fleet.run_fleet`) streamed into a writable server
  with and without an in-process maintenance autopilot
  (:mod:`repro.store.autopilot`) firing compact/gc/scrub under it,
  reporting ingest runs/s both ways plus a warm reader's p99 on a
  protected run -- quiescent, during the fleet (informational), and
  during a post-fleet window where only the autopilot churns: the gate
  holds the maintenance-only p99 within 1.5x with zero reader errors
  and byte-identical answers.

Every scenario appends its numbers to
``benchmarks/results/BENCH_store.json`` so the perf trajectory is tracked
across PRs.  Run under pytest (``pytest benchmarks/bench_store_queries.py``)
or standalone (``PYTHONPATH=src python benchmarks/bench_store_queries.py``,
``--smoke`` for CI-sized inputs).
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Callable, Dict, List, Tuple

from repro.core.cpg import ConcurrentProvenanceGraph, EdgeKind
from repro.core.queries import backward_slice, lineage_of_pages, propagate_taint
from repro.core.serialization import node_key, read_cpg, write_cpg
from repro.core.thunk import SubComputation
from repro.core.vector_clock import VectorClock
from repro.store import (
    IndexPinner,
    ProvenanceStore,
    SegmentCache,
    StoreQueryEngine,
    StoreSink,
    scrub,
)
from repro.store.segment import decode_segment, encode_segment

#: Sub-computations per segment; small enough that slices span few of them.
SEGMENT_NODES = 32

#: Machine-readable results file (uploaded as a CI artifact).
BENCH_JSON = "BENCH_store.json"

#: Benchmarked configuration.  ``reverse_index`` takes a lock per insert,
#: so its CPG has hundreds of sub-computations -- a graph size where the
#: store's indexed access pays off over re-reading the whole document.
WORKLOAD = "reverse_index"
THREADS = 8

#: Timing repetitions (best-of to shave scheduler noise).
REPEATS = 5


def prepare(base_dir: str, cpg: ConcurrentProvenanceGraph) -> Tuple[str, str]:
    """Persist ``cpg`` both ways: as a store and as a flat JSON document."""
    store_dir = os.path.join(base_dir, "store")
    ProvenanceStore.create(store_dir).ingest(cpg, segment_nodes=SEGMENT_NODES)
    json_path = os.path.join(base_dir, "cpg.json")
    write_cpg(cpg, json_path, indent=None)
    return store_dir, json_path


def pick_targets(cpg: ConcurrentProvenanceGraph) -> Tuple[tuple, List[int]]:
    """A slice origin with a non-trivial but *localized* history, plus pages.

    The interesting case for an out-of-core store is a query about one
    corner of the graph (one thread's result, one buffer), not the final
    aggregation whose history is the entire run -- so pick the
    worker-thread node with the largest data-backward slice, and
    taint/lineage pages from its write set.
    """
    candidates = [cpg.thread_nodes(tid)[-1] for tid in cpg.threads() if tid >= 1]
    if not candidates:
        candidates = [node for node in cpg.nodes() if node[0] >= 0]
    origin = max(candidates, key=lambda node: len(backward_slice(cpg, node)))
    pages = sorted(cpg.subcomputation(origin).write_set)[:2]
    if not pages:
        input_node = cpg.input_node
        pages = sorted(cpg.subcomputation(input_node).write_set)[:2] if input_node else [0]
    return origin, pages


def best_of(fn: Callable[[], object], repeats: int = REPEATS) -> float:
    """Best wall-clock seconds of ``repeats`` calls."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def compare_queries(cpg: ConcurrentProvenanceGraph, store_dir: str, json_path: str) -> List[dict]:
    """Run every query both ways; return one report row per query."""
    origin, pages = pick_targets(cpg)
    cases = [
        (
            f"backward_slice {node_key(origin)}",
            lambda graph: backward_slice(graph, origin),
            lambda engine: engine.backward_slice(origin),
            True,
        ),
        (
            f"lineage_of_pages {pages}",
            lambda graph: lineage_of_pages(graph, pages),
            lambda engine: engine.lineage_of_pages(pages),
            True,
        ),
        (
            # Taint from a worker's buffer floods through the shared result
            # pages in most workloads, so "touches every segment" can be
            # the correct answer here; only equality is asserted.
            f"propagate_taint {pages}",
            lambda graph: frozenset(propagate_taint(graph, pages).tainted_nodes),
            lambda engine: frozenset(engine.propagate_taint(pages).tainted_nodes),
            False,
        ),
    ]
    rows = []
    for label, reload_query, indexed_query, expect_subset in cases:

        def reload_path():
            return reload_query(read_cpg(json_path))

        def indexed_path():
            return indexed_query(StoreQueryEngine(ProvenanceStore.open(store_dir)))

        expected = reload_path()
        store = ProvenanceStore.open(store_dir)
        engine = StoreQueryEngine(store)
        actual = indexed_query(engine)
        assert actual == expected, f"{label}: indexed result diverged"
        if engine.last_taint_mode is not None:
            label += f" [{engine.last_taint_mode}]"
        segments_read = engine.segments_loaded
        total_segments = store.manifest.segment_count
        if expect_subset:
            assert segments_read < total_segments, (
                f"{label}: read {segments_read}/{total_segments} segments -- not out-of-core"
            )
        reload_seconds = best_of(reload_path)
        indexed_seconds = best_of(indexed_path)
        rows.append(
            {
                "query": label,
                "reload_ms": reload_seconds * 1e3,
                "indexed_ms": indexed_seconds * 1e3,
                "speedup": reload_seconds / indexed_seconds if indexed_seconds else float("inf"),
                "segments_read": segments_read,
                "total_segments": total_segments,
            }
        )
    return rows


def report_lines(rows: List[dict]) -> List[str]:
    lines = [
        f"Store queries: indexed on-disk vs full reload ({WORKLOAD}, {THREADS} threads)",
        f"{'query':34s} {'reload ms':>10s} {'indexed ms':>11s} {'speedup':>8s} {'segments':>10s}",
    ]
    for row in rows:
        lines.append(
            f"{row['query']:34s} {row['reload_ms']:10.2f} {row['indexed_ms']:11.2f} "
            f"{row['speedup']:7.1f}x {row['segments_read']:>4d}/{row['total_segments']:<4d}"
        )
    return lines


# ---------------------------------------------------------------------- #
# Machine-readable results (benchmarks/results/BENCH_store.json)
# ---------------------------------------------------------------------- #


def update_bench_json(section: str, payload) -> str:
    """Merge one scenario's results into ``BENCH_store.json``; returns path."""
    # Not conftest's RESULTS_DIR: the standalone entry point must work
    # without the pytest import path.
    results_dir = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")
    os.makedirs(results_dir, exist_ok=True)
    path = os.path.join(results_dir, BENCH_JSON)
    document: Dict[str, object] = {"schema": 1}
    if os.path.exists(path):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (ValueError, OSError):
            document = {"schema": 1}
    document[section] = payload
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, sort_keys=True, indent=2)
        handle.write("\n")
    return path


# ---------------------------------------------------------------------- #
# Scenario: codec decode speed (v6 binary-z vs v4 binary vs v3 json)
# ---------------------------------------------------------------------- #


def bench_codec_decode(cpg: ConcurrentProvenanceGraph, repeats: int = REPEATS) -> dict:
    """Encode the whole graph as one segment per codec; time decode/encode."""
    order = cpg.topological_order()
    nodes = [cpg.subcomputation(node_id) for node_id in order]
    edges = []
    for source, target, attrs in cpg.edges():
        kind = attrs["kind"]
        extra = {key: value for key, value in attrs.items() if key != "kind"}
        edges.append((source, target, kind, extra))
    results: Dict[str, dict] = {}
    for codec in ("json", "binary", "binary-z"):
        framed, raw_bytes = encode_segment(nodes, edges, codec=codec)
        results[codec] = {
            "raw_bytes": raw_bytes,
            "stored_bytes": len(framed),
            "encode_ms": best_of(lambda: encode_segment(nodes, edges, codec=codec), repeats)
            * 1e3,
            "decode_ms": best_of(lambda: decode_segment(framed), repeats) * 1e3,
        }
    results["nodes"] = len(nodes)
    results["edges"] = len(edges)
    results["decode_speedup"] = (
        results["json"]["decode_ms"] / results["binary"]["decode_ms"]
        if results["binary"]["decode_ms"]
        else float("inf")
    )
    # The v6 default's two claims against the lz+JSON baseline: nearly the
    # uncompressed-binary decode speed, nearly the lz disk footprint.
    results["decode_speedup_z"] = (
        results["json"]["decode_ms"] / results["binary-z"]["decode_ms"]
        if results["binary-z"]["decode_ms"]
        else float("inf")
    )
    results["stored_ratio_z_vs_json"] = (
        results["binary-z"]["stored_bytes"] / results["json"]["stored_bytes"]
        if results["json"]["stored_bytes"]
        else float("inf")
    )
    return results


# ---------------------------------------------------------------------- #
# Scenario: ingest flush cost over a long run (v3 write path vs v4)
# ---------------------------------------------------------------------- #


def _synthetic_epoch(epoch: int, nodes_per_epoch: int) -> Tuple[List[SubComputation], list]:
    """One epoch of a synthetic single-thread run with page churn.

    Returns the epoch's nodes plus, aligned per node, the edges published
    with it (the control edge from its predecessor, except for node 0).
    """
    nodes = []
    edge_lists = []
    for position in range(nodes_per_epoch):
        index = epoch * nodes_per_epoch + position
        node = SubComputation(tid=1, index=index, clock=VectorClock({1: index + 1}))
        node.read_set.update({index % 97, 5000 + (index % 13)})
        node.write_set.update({100000 + index})
        nodes.append(node)
        edge_lists.append(
            [((1, index - 1), (1, index), EdgeKind.CONTROL, {})] if index else []
        )
    return nodes, edge_lists


def bench_ingest_flush(
    base_dir: str, epochs: int, nodes_per_epoch: int, window: int = 10
) -> dict:
    """Stream the same long run through the v3 and v4 write paths.

    Every epoch is appended and flushed (``flush_every_epochs=1``); the
    median per-flush wall time of the first ``window`` epochs is compared
    against the last ``window`` (medians shrug off scheduler hiccups that
    would skew a mean on shared CI runners).  ``growth`` near 1.0 means
    the flush cost is O(epoch); the v3 path's whole-index rewrite makes it
    grow with the run.
    """
    import statistics

    window = min(window, max(1, epochs // 2))
    results: Dict[str, dict] = {}
    for style in ("v3_style", "v4"):
        store_dir = os.path.join(base_dir, f"ingest-{style}")
        store = ProvenanceStore.create(store_dir)
        if style == "v3_style":
            store.default_codec = "json"
            store.index_full_rewrite = True
        sink = StoreSink(
            store, segment_nodes=nodes_per_epoch, flush_every_epochs=1, workload="synthetic"
        )
        flush_ms: List[float] = []
        total_start = time.perf_counter()
        for epoch in range(epochs):
            nodes, edge_lists = _synthetic_epoch(epoch, nodes_per_epoch)
            for position, node in enumerate(nodes):
                # The last publication of the epoch seals + flushes; time it.
                if position == len(nodes) - 1:
                    start = time.perf_counter()
                    sink.subcomputation_published(node, edge_lists[position])
                    flush_ms.append((time.perf_counter() - start) * 1e3)
                else:
                    sink.subcomputation_published(node, edge_lists[position])
        sink.finish()
        total_seconds = time.perf_counter() - total_start
        early = statistics.median(flush_ms[:window])
        late = statistics.median(flush_ms[-window:])
        results[style] = {
            "early_flush_ms": early,
            "late_flush_ms": late,
            "growth": late / early if early else float("inf"),
            "total_ingest_s": total_seconds,
            "store_bytes": sum(
                info.stored_bytes for info in ProvenanceStore.open(store_dir).manifest.segments
            ),
        }
    results["epochs"] = epochs
    results["nodes_per_epoch"] = nodes_per_epoch
    results["window"] = window
    return results


# ---------------------------------------------------------------------- #
# Scenario: commit mechanism (v4 manifest rewrite vs v5 log append)
# ---------------------------------------------------------------------- #


def bench_flush_scaling(
    base_dir: str, epochs: int, nodes_per_epoch: int, window: int = 10
) -> dict:
    """Time just the commit (flush) as the store's segment count grows.

    Both stores take the identical v4 index-delta write path; the only
    difference is the commit mechanism -- ``manifest_full_rewrite`` makes
    every flush rewrite the whole manifest (the v4 cost profile, O(total
    segments)), while the v5 default appends one framed record to
    ``segments.log`` (O(epoch)).  The v5 store's checkpoint interval is
    raised past the run so every timed flush is a pure append.
    """
    import statistics

    window = min(window, max(1, epochs // 2))
    results: Dict[str, dict] = {}
    for style in ("v4_manifest_rewrite", "v5_log_append"):
        store_dir = os.path.join(base_dir, f"flush-{style}")
        store = ProvenanceStore.create(store_dir)
        if style == "v4_manifest_rewrite":
            store.manifest_full_rewrite = True
        else:
            store.checkpoint_interval = epochs * 2
        run_id = store.new_run(workload="synthetic")
        flush_ms: List[float] = []
        for epoch in range(epochs):
            nodes, edge_lists = _synthetic_epoch(epoch, nodes_per_epoch)
            store.append_segment(
                nodes, [edge for edges in edge_lists for edge in edges], run=run_id
            )
            start = time.perf_counter()
            store.flush()
            flush_ms.append((time.perf_counter() - start) * 1e3)
        early = statistics.median(flush_ms[:window])
        late = statistics.median(flush_ms[-window:])
        reopened = ProvenanceStore.open(store_dir)
        results[style] = {
            "early_flush_ms": early,
            "late_flush_ms": late,
            "growth": late / early if early else float("inf"),
            "segments": reopened.manifest.segment_count,
            "log_records": reopened.log_state()["records"],
        }
    results["epochs"] = epochs
    results["nodes_per_epoch"] = nodes_per_epoch
    results["window"] = window
    return results


# ---------------------------------------------------------------------- #
# Scenario: remote ingest throughput (epochs over TCP)
# ---------------------------------------------------------------------- #


def bench_remote_ingest(base_dir: str, epochs: int, nodes_per_epoch: int) -> dict:
    """Stream a synthetic run into a writable server; report epochs/s.

    Every ``append_epoch`` reply arrives only after the server flushed
    the epoch (one log record), so the measured rate includes the full
    durability round-trip -- the back-pressure contract, not just socket
    throughput.
    """
    from repro.store import StoreClient, StoreServer

    store_dir = os.path.join(base_dir, "remote-ingest")
    ProvenanceStore.create(store_dir)
    server = StoreServer(store_dir, writable=True)
    host, port = server.start()
    try:
        client = StoreClient(host, port, timeout=30.0)
        run_id = client.begin_run(workload="synthetic")
        total_nodes = 0
        start = time.perf_counter()
        for epoch in range(epochs):
            nodes, edge_lists = _synthetic_epoch(epoch, nodes_per_epoch)
            client.append_epoch(
                run_id, nodes, [edge for edges in edge_lists for edge in edges]
            )
            total_nodes += len(nodes)
        elapsed = time.perf_counter() - start
        committed = client.commit_run(run_id)
        stats = server.server_stats()
    finally:
        server.close()
    return {
        "epochs": epochs,
        "nodes_per_epoch": nodes_per_epoch,
        "elapsed_s": elapsed,
        "epochs_per_s": epochs / elapsed if elapsed else float("inf"),
        "nodes_per_s": total_nodes / elapsed if elapsed else float("inf"),
        "run_status": committed["status"],
        "segments_ingested": committed["segments"],
        "server_epochs_ingested": stats["epochs_ingested"],
    }


# ---------------------------------------------------------------------- #
# Scenario: warm (cached engine) vs cold (fresh open per query) reads
# ---------------------------------------------------------------------- #


def bench_warm_vs_cold(
    store_dir: str, cpg: ConcurrentProvenanceGraph, repeats: int = REPEATS
) -> dict:
    """Time one compound query served cold per call and from a warm engine.

    Cold is the one-shot CLI profile: every call re-opens the store
    (manifest parse + index base/delta merge) with an empty segment cache
    and decodes from disk.  Warm is the server profile: one store handle,
    one byte-budgeted cache, pinned indexes -- the same query again is
    answered from memory.  Results are asserted identical to the
    in-memory graph on both paths.
    """
    origin, pages = pick_targets(cpg)

    def compound(engine: StoreQueryEngine):
        return (
            engine.backward_slice(origin),
            engine.lineage_of_pages(pages),
            frozenset(engine.propagate_taint(pages).tainted_nodes),
        )

    expected = (
        backward_slice(cpg, origin),
        lineage_of_pages(cpg, pages),
        frozenset(propagate_taint(cpg, pages).tainted_nodes),
    )

    def cold_path():
        store = ProvenanceStore.open(store_dir)  # fresh private cache
        return compound(StoreQueryEngine(store))

    cache = SegmentCache()
    pinner = IndexPinner()

    def warm_path():
        # Re-opening the same directory against the shared cache + pinner
        # is the server's snapshot/refresh profile: the manifest is
        # re-read, but the index merge comes from the pinner and every
        # segment from the cache.
        store = ProvenanceStore.open(store_dir, segment_cache=cache, index_pinner=pinner)
        return compound(StoreQueryEngine(store))

    assert cold_path() == expected, "cold query diverged from the in-memory result"
    assert warm_path() == expected, "warm query diverged from the in-memory result"

    cold_seconds = best_of(cold_path, repeats)
    warm_seconds = best_of(warm_path, repeats)
    return {
        "cold_ms": cold_seconds * 1e3,
        "warm_ms": warm_seconds * 1e3,
        "speedup": cold_seconds / warm_seconds if warm_seconds else float("inf"),
        "cache_hits": cache.stats.hits,
        "cache_misses": cache.stats.misses,
        "cache_bytes": cache.total_bytes,
        "cache_budget_bytes": cache.max_bytes,
        "index_pin_hits": pinner.stats.hits,
        "repeats": repeats,
    }


# ---------------------------------------------------------------------- #
# Scenario: parallel multi-segment scan (run-spanning taint sweep)
# ---------------------------------------------------------------------- #


def bench_parallel_scan(
    store_dir: str,
    cpg: ConcurrentProvenanceGraph,
    parallelisms=(1, 4),
    repeats: int = REPEATS,
) -> dict:
    """Time a run-spanning taint query at several scan widths.

    Taint seeded at the input pages floods, which sends the engine down
    the sequential-sweep fallback -- the access pattern that decodes every
    segment and therefore the one the pooled scan targets.  The cache is
    cleared before every timed call so each measurement pays the full
    decode; results are asserted identical across widths.

    A second table times the raw **cold sweep** -- every segment through
    ``segment_many`` from a cleared cache, no query logic on top -- at
    widths 1/2/4.  That is the decode-bound pattern the shared process
    pool exists for; the recorded ``cpus`` lets the CI gate scale its
    expectation to the machine (no GIL-free parallel decode win exists
    on one core).
    """
    input_node = cpg.input_node
    seed_pages = sorted(cpg.subcomputation(input_node).write_set) if input_node else [0]
    expected = frozenset(propagate_taint(cpg, seed_pages).tainted_nodes)
    store = ProvenanceStore.open(store_dir)
    rows = []
    for parallelism in parallelisms:
        engine = StoreQueryEngine(store, parallelism=parallelism)

        def run_cold():
            store.clear_cache()
            return frozenset(engine.propagate_taint(seed_pages).tainted_nodes)

        assert run_cold() == expected, f"parallelism={parallelism} diverged"
        seconds = best_of(run_cold, repeats)
        rows.append(
            {
                "parallelism": parallelism,
                "ms": seconds * 1e3,
                "mode": engine.last_taint_mode,
                "segments": store.manifest.segment_count,
            }
        )
    segment_ids = [info.segment_id for info in store.manifest.segments]
    sweep_rows = []
    for parallelism in (1, 2, 4):

        def run_sweep():
            store.clear_cache()
            return store.segment_many(segment_ids, parallelism=parallelism)

        assert set(run_sweep()) == set(segment_ids)
        seconds = best_of(run_sweep, repeats)
        sweep_rows.append(
            {
                "parallelism": parallelism,
                "ms": seconds * 1e3,
                "segments": len(segment_ids),
            }
        )
    store.close()
    widest = sweep_rows[-1]["ms"]
    cold_sweep = {
        "rows": sweep_rows,
        "cpus": os.cpu_count() or 1,
        "speedup_4_vs_1": sweep_rows[0]["ms"] / widest if widest else float("inf"),
    }
    return {"rows": rows, "cold_sweep": cold_sweep, "repeats": repeats}


# ---------------------------------------------------------------------- #
# Scenario: sharded scatter-gather vs one server (aggregate cache capacity)
# ---------------------------------------------------------------------- #


def _hot_page_run(store: ProvenanceStore, epochs: int, nodes_per_epoch: int, hot_page: int) -> int:
    """One synthetic run with exactly one ``hot_page`` writer per segment.

    Lineage of the hot page then touches *every* segment of the run (each
    holds one writer) while the answer stays small (one node per
    segment), so the scatter-gather query below is decode-bound -- the
    access pattern where per-server cache capacity decides throughput.
    """
    run_id = store.new_run(workload="synthetic-hot")
    for epoch in range(epochs):
        nodes, edge_lists = _synthetic_epoch(epoch, nodes_per_epoch)
        nodes[0].write_set.add(hot_page)
        store.append_segment(
            nodes, [edge for edges in edge_lists for edge in edges], run=run_id
        )
    store.flush()
    return run_id


def bench_cluster_scatter_gather(
    base_dir: str,
    n_runs: int = 4,
    epochs: int = 24,
    nodes_per_epoch: int = 16,
    threads: int = 4,
    queries_per_thread: int = 40,
) -> dict:
    """Aggregate QPS + p99 of one across-runs query: single server vs shards.

    Every server -- standalone or shard -- gets the *same* per-server
    cache budget, sized a bit over half the decoded working set.  That
    makes the scaling dimension honest: a cluster's win here is aggregate
    cache capacity, not magic.  One server (and the degenerate 1-shard
    cluster) cannot hold all runs decoded at once, so the round-robin
    access pattern evicts every segment before its next use; 2 and 4
    shards each hold only their partition and serve it warm.  Each config
    answers the identical ``lineage_across_runs`` query from ``threads``
    concurrent clients over real TCP, asserted equal to the single-store
    engine, merge order included.
    """
    import shutil
    import statistics
    import threading

    from repro.store import (
        ClusterManifest,
        Endpoint,
        ShardInfo,
        StoreClient,
        StoreCluster,
        StoreServer,
    )

    hot_page = 7
    whole_dir = os.path.join(base_dir, "cluster-whole")
    whole = ProvenanceStore.create(whole_dir)
    run_ids = [_hot_page_run(whole, epochs, nodes_per_epoch, hot_page) for _ in range(n_runs)]
    pages = [hot_page]

    # One uncapped pass measures the decoded working set and doubles as
    # the correctness reference every config is checked against.
    probe_cache = SegmentCache(max_bytes=1 << 30)
    engine = StoreQueryEngine(ProvenanceStore.open(whole_dir, segment_cache=probe_cache))
    expected = engine.lineage_across_runs(pages)
    working_set = probe_cache.total_bytes
    cache_bytes = max(int(working_set * 0.55), 4096)

    def split(n_shards: int):
        """Round-robin the runs onto ``n_shards`` copy+gc shard stores."""
        owned = [[] for _ in range(n_shards)]
        for index, run in enumerate(run_ids):
            owned[index % n_shards].append(run)
        paths = []
        for index, keep in enumerate(owned):
            path = os.path.join(base_dir, f"cluster-{n_shards}", f"shard-{index}")
            shutil.copytree(whole_dir, path)
            drop = sorted(set(run_ids) - set(keep))
            if drop:
                ProvenanceStore.open(path).gc(runs=drop)
            paths.append(path)
        return owned, paths

    def measure(query_of) -> dict:
        """Hammer ``query_of(worker_index)()`` from every worker at once."""
        barrier = threading.Barrier(threads)
        spans: List[Tuple[float, float]] = []
        latencies: List[float] = []
        lock = threading.Lock()

        def worker(index: int) -> None:
            query = query_of(index)
            answer = query()  # correctness first (and a fair warm-up for all)
            assert answer == expected and list(answer) == list(expected), (
                "scatter-gather answer diverged from the single-store engine"
            )
            local = []
            barrier.wait()
            begun = time.perf_counter()
            for _ in range(queries_per_thread):
                start = time.perf_counter()
                query()
                local.append((time.perf_counter() - start) * 1e3)
            with lock:
                spans.append((begun, time.perf_counter()))
                latencies.extend(local)

        crew = [threading.Thread(target=worker, args=(index,)) for index in range(threads)]
        for thread in crew:
            thread.start()
        for thread in crew:
            thread.join()
        wall = max(end for _, end in spans) - min(begun for begun, _ in spans)
        total = threads * queries_per_thread
        latencies.sort()
        return {
            "queries": total,
            "wall_s": wall,
            "qps": total / wall if wall else float("inf"),
            "mean_ms": statistics.fmean(latencies),
            "p99_ms": latencies[int(0.99 * (len(latencies) - 1))],
        }

    configs: Dict[str, dict] = {}
    server = StoreServer(whole_dir, cache_bytes=cache_bytes)
    host, port = server.start()
    try:
        clients = [StoreClient(host, port, timeout=30.0) for _ in range(threads)]
        row = measure(lambda index: lambda: clients[index].lineage_across_runs(pages))
        row["servers"] = 1
        row["cache_hits"] = server.cache.stats.hits
        row["cache_misses"] = server.cache.stats.misses
        configs["single"] = row
    finally:
        server.close()

    for n_shards in (1, 2, 4):
        owned, paths = split(n_shards)
        servers = [StoreServer(path, cache_bytes=cache_bytes) for path in paths]
        try:
            shards = []
            for index, shard_server in enumerate(servers):
                shard_host, shard_port = shard_server.start()
                shards.append(
                    ShardInfo(f"shard-{index}", Endpoint(address=f"{shard_host}:{shard_port}"))
                )
            manifest = ClusterManifest(shards=shards, policy="manual")
            for index, keep in enumerate(owned):
                for run in keep:
                    manifest.assign(run, f"shard-{index}")
            cluster = StoreCluster(manifest, parallelism=n_shards)
            row = measure(lambda index: lambda: cluster.lineage_across_runs(pages))
            row["servers"] = n_shards
            row["cache_hits"] = sum(s.cache.stats.hits for s in servers)
            row["cache_misses"] = sum(s.cache.stats.misses for s in servers)
            row["fanout"] = cluster.fanout_stats()
            configs[f"shards_{n_shards}"] = row
        finally:
            for shard_server in servers:
                shard_server.close()

    single_qps = configs["single"]["qps"]
    return {
        "runs": n_runs,
        "epochs": epochs,
        "nodes_per_epoch": nodes_per_epoch,
        "threads": threads,
        "queries_per_thread": queries_per_thread,
        "working_set_bytes": working_set,
        "per_server_cache_bytes": cache_bytes,
        "configs": configs,
        "speedup_4_shards_vs_single": (
            configs["shards_4"]["qps"] / single_qps if single_qps else float("inf")
        ),
        # On few-core machines four in-process servers oversubscribe the
        # CPU, so the aggregate-cache claim is gated on the best sharded
        # config (2 shards already splits the working set across two
        # warm caches).
        "speedup_best_vs_single": (
            max(configs["shards_2"]["qps"], configs["shards_4"]["qps"]) / single_qps
            if single_qps
            else float("inf")
        ),
    }


# ---------------------------------------------------------------------- #
# Scenario: scrub throughput next to warm readers
# ---------------------------------------------------------------------- #


def bench_scrub_throughput(
    store_dir: str, cpg: ConcurrentProvenanceGraph, repeats: int = REPEATS
) -> dict:
    """Verified MB/s of a deep scrub, and what it costs a warm reader.

    A scrub that evicted the working set (or raced readers) would make
    "run it next to live traffic" a lie, so the interesting number is
    not just the scan rate: the same warm repeated query is timed alone
    and again with an unthrottled scrub looping concurrently, and the
    decoded-segment cache's miss counter is read across the scrub.
    Scrub streams the files directly, so the misses must not move and
    the latency must stay within 1.5x.
    """
    origin, pages = pick_targets(cpg)
    cache = SegmentCache()
    pinner = IndexPinner()
    store = ProvenanceStore.open(store_dir, segment_cache=cache, index_pinner=pinner)
    try:
        engine = StoreQueryEngine(store)

        def query():
            return (engine.backward_slice(origin), engine.lineage_of_pages(pages))

        baseline = query()  # warms the cache
        warm_seconds = best_of(query, repeats)

        first = scrub(store)
        assert first["ok"], f"scrub found damage in a freshly-built store: {first}"
        misses_before = cache.stats.misses

        stop = threading.Event()
        passes = [1]

        def scrub_loop():
            while not stop.is_set():
                report = scrub(store)
                assert report["ok"]
                passes[0] += 1

        scrubber = threading.Thread(target=scrub_loop)
        scrubber.start()
        try:
            during_seconds = best_of(query, repeats)
        finally:
            stop.set()
            scrubber.join()
        assert query() == baseline, "a concurrent scrub changed a query answer"
        return {
            "mb_per_s": first["mb_per_s"],
            "bytes_verified": first["bytes_verified"],
            "files_scanned": first["files_scanned"],
            "segments_verified": first["segments"]["verified"],
            "warm_ms": warm_seconds * 1e3,
            "warm_during_scrub_ms": during_seconds * 1e3,
            "latency_ratio": (
                during_seconds / warm_seconds if warm_seconds else float("inf")
            ),
            "cache_misses_added_by_scrub": cache.stats.misses - misses_before,
            "scrub_passes": passes[0],
            "repeats": repeats,
        }
    finally:
        store.close()


def _p99(latencies: List[float]) -> float:
    ordered = sorted(latencies)
    return ordered[int(0.99 * (len(ordered) - 1))]


def bench_fleet_ingest_maintenance(
    base_dir: str, runs: int = 8, concurrency: int = 2, query_count: int = 60
) -> dict:
    """Fleet ingest throughput with the autopilot on vs off, and what the
    churn costs a warm reader.

    Two writable servers each take the same concurrent run-fleet; one
    also runs an in-process maintenance autopilot (aggressive thresholds,
    so compact/gc/scrub all fire).  The maintaining server additionally
    serves a warm repeated lineage query of a protected run, timed in
    three regimes: quiescent (before the fleet), during the fleet (both
    writers hammering -- informational, ingest contention dominates),
    and during a post-fleet churn window where ONLY the autopilot is
    working through its compact/gc backlog and scrub schedule.  That
    last window isolates what maintenance alone costs a warm reader; the
    acceptance bar is its p99 within 1.5x of quiescent, with every
    answer identical and zero reader errors.
    """
    from repro.inspector.api import run_with_provenance
    from repro.store import AutopilotPolicy, FleetSpec, run_fleet
    from repro.store.server import StoreClient, StoreServer

    spec = FleetSpec(
        workloads=("histogram",),
        runs=runs,
        concurrency=concurrency,
        size="small",
        threads=(2,),
        seeds=(42,),
    )

    def one_phase(tag: str, maintenance) -> dict:
        path = os.path.join(base_dir, f"fleet-{tag}")
        seeded = run_with_provenance(
            "histogram", num_threads=2, size="small", seed=1, store_path=path
        )
        probe_run = seeded.store_run_id
        with ProvenanceStore.open(path) as handle:
            pages = sorted(handle.indexes_for(probe_run).pages_touched())[:2]
        server = StoreServer(
            path, writable=True, maintenance=maintenance, maintenance_interval_s=0.1
        )
        try:
            host, port = server.start()
            url = f"{host}:{port}"
            client = StoreClient.from_url(url)

            def timed_query() -> Tuple[float, tuple]:
                start = time.perf_counter()
                nodes = client.lineage(pages, run=probe_run)
                return time.perf_counter() - start, tuple(sorted(nodes))

            if maintenance is not None:
                time.sleep(0.3)  # let the first cycle settle the seed run
            _, baseline = timed_query()
            quiescent = [timed_query()[0] for _ in range(query_count)]

            mismatches = [0]
            errors: List[str] = []
            during: List[float] = []
            stop = threading.Event()

            def reader_loop() -> None:
                reader = StoreClient.from_url(url)
                while not stop.is_set():
                    start = time.perf_counter()
                    try:
                        nodes = reader.lineage(pages, run=probe_run)
                    except Exception as exc:  # noqa: BLE001 - the metric
                        errors.append(f"{type(exc).__name__}: {exc}")
                        continue
                    during.append(time.perf_counter() - start)
                    if tuple(sorted(nodes)) != baseline:
                        mismatches[0] += 1

            def executed_decisions() -> list:
                if server.autopilot is None:
                    return []
                return [d.to_dict() for d in server.autopilot.decisions if d.executed]

            reader = threading.Thread(target=reader_loop)
            reader.start()
            started = time.monotonic()
            try:
                fleet = run_fleet(spec, store_url=url)
                elapsed = time.monotonic() - started
                fleet_samples = len(during)
                actions_before_window = len(executed_decisions())
                if maintenance is not None:
                    # The churn window: the fleet is done, but the
                    # autopilot is still digesting its compact/gc backlog
                    # and scrubbing on schedule.  The reader keeps
                    # hammering, so the samples collected from here on
                    # measure what maintenance ALONE costs a warm query.
                    time.sleep(1.2)
            finally:
                stop.set()
                reader.join()
            assert fleet.errors == [], [run.to_dict() for run in fleet.errors]
            executed = executed_decisions()
        finally:
            server.close()
        during_fleet = during[:fleet_samples]
        during_maint = during[fleet_samples:]
        return {
            "runs": len(fleet.run_ids),
            "runs_per_s": len(fleet.run_ids) / elapsed if elapsed else 0.0,
            "warm_p99_quiescent_ms": _p99(quiescent) * 1e3,
            "warm_p99_fleet_ms": _p99(during_fleet) * 1e3 if during_fleet else 0.0,
            "warm_p99_during_ms": _p99(during_maint) * 1e3 if during_maint else 0.0,
            "warm_queries_during": len(during_maint),
            "reader_errors": errors,
            "reader_mismatches": mismatches[0],
            "maintenance_actions": len(executed),
            "maintenance_actions_in_window": len(executed) - actions_before_window,
            "maintenance_failures": [d for d in executed if d.get("error")],
        }

    policy = AutopilotPolicy(
        compact_min_delta_files=1,
        gc_keep_last=max(3, runs // 2),
        scrub_interval_s=0.5,
        protect_runs=(1,),  # the probe run warm readers are timed on
    )
    plain = one_phase("off", None)
    maintained = one_phase("on", policy)
    quiescent_ms = maintained["warm_p99_quiescent_ms"]
    during_ms = maintained["warm_p99_during_ms"]
    return {
        "runs": runs,
        "concurrency": concurrency,
        "autopilot_off": plain,
        "autopilot_on": maintained,
        "ingest_slowdown": (
            plain["runs_per_s"] / maintained["runs_per_s"]
            if maintained["runs_per_s"]
            else float("inf")
        ),
        "p99_ratio": during_ms / quiescent_ms if quiescent_ms else float("inf"),
    }


# ---------------------------------------------------------------------- #
# pytest entry points
# ---------------------------------------------------------------------- #


def test_codec_decode_speed(benchmark):
    """Acceptance: binary decodes faster than JSON; binary-z keeps both wins."""
    from benchmarks.conftest import inspector_run

    cpg = inspector_run(WORKLOAD, THREADS).cpg
    results = benchmark.pedantic(lambda: bench_codec_decode(cpg), rounds=1, iterations=1)
    results["smoke"] = False
    path = update_bench_json("codec_decode", results)
    print(
        f"codec decode: json {results['json']['decode_ms']:.2f} ms, "
        f"binary {results['binary']['decode_ms']:.2f} ms "
        f"({results['decode_speedup']:.1f}x), "
        f"binary-z {results['binary-z']['decode_ms']:.2f} ms "
        f"({results['decode_speedup_z']:.1f}x, "
        f"{results['stored_ratio_z_vs_json']:.2f}x the json bytes) "
        f"[written to {path}]"
    )
    assert results["binary"]["decode_ms"] < results["json"]["decode_ms"]
    assert results["binary"]["encode_ms"] < results["json"]["encode_ms"]
    # The v6 default must not trade one regression for another: decode
    # still >= 2x faster than lz+JSON, disk within 2x of lz+JSON (the
    # uncompressed binary codec was ~4.9x).
    assert results["binary-z"]["decode_ms"] < results["json"]["decode_ms"] / 2, (
        "binary-z decode lost the >=2x advantage over lz+JSON"
    )
    assert results["binary-z"]["stored_bytes"] <= 2 * results["json"]["stored_bytes"], (
        "binary-z stored bytes regressed past 2x the lz+JSON footprint"
    )


def test_ingest_flush_cost_does_not_grow_with_run_length(benchmark, tmp_path):
    """Acceptance: v4 per-flush cost is O(epoch); the v3 path grows instead."""
    results = benchmark.pedantic(
        lambda: bench_ingest_flush(str(tmp_path), epochs=80, nodes_per_epoch=16),
        rounds=1,
        iterations=1,
    )
    results["smoke"] = False
    path = update_bench_json("ingest_flush", results)
    v3, v4 = results["v3_style"], results["v4"]
    print(
        f"ingest flush growth over {results['epochs']} epochs: "
        f"v3-style {v3['growth']:.2f}x, v4 {v4['growth']:.2f}x "
        f"(late flush {v3['late_flush_ms']:.2f} ms vs {v4['late_flush_ms']:.2f} ms) "
        f"[written to {path}]"
    )
    # Gate on the absolute late-flush comparison (locally ~10x apart):
    # after a long run, one delta flush must stay far below one
    # whole-index rewrite.  The growth ratios land in BENCH_store.json
    # for trajectory tracking but are too noisy (sub-ms denominators) to
    # gate CI on.
    assert v4["late_flush_ms"] < v3["late_flush_ms"] / 2


def test_flush_cost_does_not_grow_with_segment_count(benchmark, tmp_path):
    """Acceptance: the v5 log-append commit stays flat as segments pile up."""
    results = benchmark.pedantic(
        lambda: bench_flush_scaling(str(tmp_path), epochs=120, nodes_per_epoch=8),
        rounds=1,
        iterations=1,
    )
    results["smoke"] = False
    path = update_bench_json("flush_scaling", results)
    v4, v5 = results["v4_manifest_rewrite"], results["v5_log_append"]
    print(
        f"flush over {results['epochs']} epochs: "
        f"v4-rewrite {v4['early_flush_ms']:.2f} -> {v4['late_flush_ms']:.2f} ms "
        f"({v4['growth']:.2f}x), "
        f"v5-append {v5['early_flush_ms']:.2f} -> {v5['late_flush_ms']:.2f} ms "
        f"({v5['growth']:.2f}x) [written to {path}]"
    )
    # The log-append commit must not grow with segment count (small
    # absolute slack shrugs off sub-ms scheduler noise in the medians)...
    assert v5["late_flush_ms"] <= 2 * v5["early_flush_ms"] + 0.5, (
        f"v5 log-append flush grew with the store: "
        f"{v5['early_flush_ms']:.3f} -> {v5['late_flush_ms']:.3f} ms"
    )
    # ...and must beat the whole-manifest rewrite once the store is large.
    assert v5["late_flush_ms"] < v4["late_flush_ms"]


def test_remote_ingest_throughput(benchmark, tmp_path):
    """Remote ingest commits every epoch durably and reports its rate."""
    results = benchmark.pedantic(
        lambda: bench_remote_ingest(str(tmp_path), epochs=40, nodes_per_epoch=8),
        rounds=1,
        iterations=1,
    )
    results["smoke"] = False
    path = update_bench_json("remote_ingest", results)
    print(
        f"remote ingest: {results['epochs_per_s']:.0f} epochs/s "
        f"({results['nodes_per_s']:.0f} nodes/s, every epoch durable before its "
        f"reply) [written to {path}]"
    )
    assert results["run_status"] == "complete"
    assert results["server_epochs_ingested"] == results["epochs"]
    assert results["epochs_per_s"] > 0


def test_store_queries_report(benchmark, tmp_path):
    """Write the store-query comparison table and assert the indexed win."""
    from benchmarks.conftest import inspector_run, write_report

    cpg = inspector_run(WORKLOAD, THREADS).cpg

    def run() -> List[dict]:
        store_dir, json_path = prepare(str(tmp_path), cpg)
        return compare_queries(cpg, store_dir, json_path)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    path = write_report("store_queries.txt", report_lines(rows))
    update_bench_json("queries", {"workload": WORKLOAD, "threads": THREADS, "rows": rows})
    print("\n".join(report_lines(rows)))
    print(f"[written to {path}]")
    assert len(rows) == 3
    # The indexed path must beat reloading the whole graph on at least the
    # localized queries (slice + lineage).
    assert any(row["speedup"] > 1.0 for row in rows)


def test_query_warm_vs_cold(benchmark, tmp_path):
    """Acceptance: the warm cached engine beats cold open-per-query >= 3x."""
    from benchmarks.conftest import inspector_run

    cpg = inspector_run(WORKLOAD, THREADS).cpg
    store_dir, _ = prepare(str(tmp_path), cpg)
    results = benchmark.pedantic(
        lambda: bench_warm_vs_cold(store_dir, cpg), rounds=1, iterations=1
    )
    results["smoke"] = False
    path = update_bench_json("query_warm_vs_cold", results)
    print(
        f"warm vs cold: cold {results['cold_ms']:.2f} ms, warm {results['warm_ms']:.2f} ms "
        f"({results['speedup']:.1f}x), {results['cache_hits']} cache hit(s) "
        f"[written to {path}]"
    )
    assert results["cache_hits"] > 0, "warm path reported no cache hits"
    assert results["cache_bytes"] <= results["cache_budget_bytes"]
    assert results["speedup"] >= 3.0, (
        f"warm repeated-query speedup {results['speedup']:.2f}x is below the 3x acceptance bar"
    )


def _cold_sweep_floor(cpus: int) -> float:
    """Expected cold-sweep speedup at width 4, scaled to the machine.

    On >= 4 cores the process-pool decode must deliver the acceptance
    bar (2x); on 2-3 cores a real but smaller win; on one core there is
    no parallel decode win to have -- the gate only refuses a slowdown
    (0.8 shrugs off pool-overhead noise).
    """
    if cpus >= 4:
        return 2.0
    if cpus >= 2:
        return 1.2
    return 0.8


def test_parallel_scan_matches_sequential(benchmark, tmp_path):
    """The pooled scan never changes the answer, and width 4 beats width 1."""
    from benchmarks.conftest import inspector_run

    cpg = inspector_run(WORKLOAD, THREADS).cpg
    store_dir, _ = prepare(str(tmp_path), cpg)
    results = benchmark.pedantic(
        lambda: bench_parallel_scan(store_dir, cpg), rounds=1, iterations=1
    )
    results["smoke"] = False
    path = update_bench_json("parallel_scan", results)
    for row in results["rows"]:
        print(
            f"parallel scan x{row['parallelism']}: {row['ms']:.2f} ms "
            f"[{row['mode']}] over {row['segments']} segment(s)"
        )
    sweep = results["cold_sweep"]
    for row in sweep["rows"]:
        print(
            f"cold sweep x{row['parallelism']}: {row['ms']:.2f} ms "
            f"over {row['segments']} segment(s)"
        )
    print(
        f"cold sweep speedup x4 vs x1: {sweep['speedup_4_vs_1']:.2f}x "
        f"on {sweep['cpus']} core(s) [written to {path}]"
    )
    assert len(results["rows"]) >= 2  # equality across widths asserted inside
    floor = _cold_sweep_floor(sweep["cpus"])
    assert sweep["speedup_4_vs_1"] >= floor, (
        f"cold-sweep speedup {sweep['speedup_4_vs_1']:.2f}x is below the "
        f"{floor:.1f}x bar for {sweep['cpus']} core(s)"
    )


def test_cluster_scatter_gather_scales_with_aggregate_cache(benchmark, tmp_path):
    """Acceptance: 4 equal-budget shards at least double one server's QPS."""
    results = benchmark.pedantic(
        lambda: bench_cluster_scatter_gather(str(tmp_path)), rounds=1, iterations=1
    )
    results["smoke"] = False
    path = update_bench_json("cluster_scatter_gather", results)
    for name in ("single", "shards_1", "shards_2", "shards_4"):
        row = results["configs"][name]
        print(
            f"scatter-gather {name:8s}: {row['qps']:7.0f} q/s, p99 {row['p99_ms']:.2f} ms, "
            f"{row['cache_hits']} hit(s) / {row['cache_misses']} miss(es)"
        )
    print(
        f"4-shard speedup {results['speedup_4_shards_vs_single']:.1f}x, "
        f"best sharded {results['speedup_best_vs_single']:.1f}x "
        f"(per-server cache {results['per_server_cache_bytes']} B of a "
        f"{results['working_set_bytes']} B working set) [written to {path}]"
    )
    # Equality with the single-store engine is asserted inside; the gate
    # here is the scaling claim.  The per-server budget fits ~2 of the 4
    # runs, so the one-server configs miss on every access while 2/4
    # shards serve warm.  Gated on the best sharded config: single-flight
    # cache fills (v6) coalesce the single server's concurrent duplicate
    # decodes, so its baseline improved, and on few-core machines the
    # 4-shard config additionally oversubscribes the CPU -- 2 shards is
    # where the aggregate-cache win is cleanest (locally ~3-6x, gated at
    # 2x so CI scheduler noise cannot flake it).
    assert results["speedup_best_vs_single"] >= 2.0, (
        f"sharded cluster only reached {results['speedup_best_vs_single']:.2f}x "
        f"of the single server's QPS (acceptance bar: 2x)"
    )
    assert results["configs"]["shards_2"]["qps"] > results["configs"]["single"]["qps"]


def test_scrub_throughput_leaves_warm_readers_alone(benchmark, tmp_path):
    """Acceptance: a concurrent scrub costs warm queries < 1.5x latency."""
    from benchmarks.conftest import inspector_run

    cpg = inspector_run(WORKLOAD, THREADS).cpg
    store_dir, _ = prepare(str(tmp_path), cpg)
    results = benchmark.pedantic(
        lambda: bench_scrub_throughput(store_dir, cpg), rounds=1, iterations=1
    )
    results["smoke"] = False
    path = update_bench_json("scrub_throughput", results)
    print(
        f"scrub: {results['mb_per_s']:.1f} MB/s over {results['files_scanned']} file(s) "
        f"({results['bytes_verified']} bytes); warm query {results['warm_ms']:.2f} ms alone, "
        f"{results['warm_during_scrub_ms']:.2f} ms beside {results['scrub_passes']} "
        f"scrub pass(es) ({results['latency_ratio']:.2f}x) [written to {path}]"
    )
    assert results["cache_misses_added_by_scrub"] == 0, (
        "scrub went through the decoded-segment cache and disturbed the working set"
    )
    # Small absolute slack so a sub-ms baseline cannot flake the ratio.
    assert results["warm_during_scrub_ms"] <= 1.5 * results["warm_ms"] + 0.5, (
        f"warm query latency rose {results['latency_ratio']:.2f}x during a scrub "
        f"(acceptance bar: 1.5x)"
    )


def test_fleet_ingest_maintenance_leaves_warm_p99_alone(benchmark, tmp_path):
    """Acceptance: autopilot churn costs warm readers <= 1.5x p99."""
    results = benchmark.pedantic(
        lambda: bench_fleet_ingest_maintenance(
            str(tmp_path), runs=4, concurrency=2, query_count=30
        ),
        rounds=1,
        iterations=1,
    )
    results["smoke"] = False
    path = update_bench_json("fleet_ingest_maintenance", results)
    on, off = results["autopilot_on"], results["autopilot_off"]
    print(
        f"fleet ingest: {off['runs_per_s']:.2f} runs/s alone, "
        f"{on['runs_per_s']:.2f} runs/s with autopilot "
        f"({results['ingest_slowdown']:.2f}x); warm p99 "
        f"{on['warm_p99_quiescent_ms']:.2f} ms quiescent -> "
        f"{on['warm_p99_during_ms']:.2f} ms during maintenance "
        f"({results['p99_ratio']:.2f}x over {on['maintenance_actions']} action(s)) "
        f"[written to {path}]"
    )
    assert on["maintenance_actions"] > 0, "the autopilot never fired; nothing was measured"
    assert on["maintenance_actions_in_window"] > 0, (
        "no maintenance executed inside the measured churn window"
    )
    assert on["warm_queries_during"] > 0
    assert on["maintenance_failures"] == []
    assert on["reader_errors"] == [], on["reader_errors"][:3]
    assert on["reader_mismatches"] == 0, "maintenance changed a warm answer"
    # Small absolute slack so a sub-ms baseline cannot flake the ratio.
    assert (
        on["warm_p99_during_ms"] <= 1.5 * on["warm_p99_quiescent_ms"] + 1.0
    ), (
        f"warm p99 rose {results['p99_ratio']:.2f}x during autopilot maintenance "
        f"(acceptance bar: 1.5x)"
    )


def test_indexed_slice_touches_a_strict_segment_subset(benchmark, tmp_path):
    """Acceptance: a slice decodes fewer segments than the store holds."""
    from benchmarks.conftest import inspector_run

    cpg = inspector_run(WORKLOAD, THREADS).cpg
    store_dir, _ = prepare(str(tmp_path), cpg)
    origin, _ = pick_targets(cpg)

    def run():
        store = ProvenanceStore.open(store_dir)
        engine = StoreQueryEngine(store)
        result = engine.backward_slice(origin)
        return result, engine.segments_loaded, store.manifest.segment_count

    result, segments_read, total = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result == backward_slice(cpg, origin)
    assert 0 < segments_read < total


def test_queries_survive_compaction_with_identical_results(benchmark, tmp_path):
    """Compaction must shrink fragmentation, never change an answer.

    A sink-streamed store (short epochs + edge-only data-edge tails) is
    the fragmented case compaction exists for; every query must return
    exactly the in-memory result before and after.
    """
    from repro.inspector.api import run_with_provenance

    store_dir = str(tmp_path / "streamed-store")
    result = run_with_provenance(
        WORKLOAD, num_threads=THREADS, size="small", store_path=store_dir
    )
    cpg = result.cpg
    origin, pages = pick_targets(cpg)
    before = ProvenanceStore.open(store_dir).manifest.segment_count

    def run():
        store = ProvenanceStore.open(store_dir)
        stats = store.compact(segment_nodes=SEGMENT_NODES)
        engine = StoreQueryEngine(ProvenanceStore.open(store_dir))
        return stats, engine.backward_slice(origin), engine.lineage_of_pages(pages)

    stats, slice_after, lineage_after = benchmark.pedantic(run, rounds=1, iterations=1)
    assert stats.segments_after <= before
    assert slice_after == backward_slice(cpg, origin)
    assert lineage_after == lineage_of_pages(cpg, pages)


# ---------------------------------------------------------------------- #
# Standalone entry point
# ---------------------------------------------------------------------- #


def main(argv=None) -> None:
    import argparse
    import tempfile

    from repro.inspector.api import run_with_provenance

    parser = argparse.ArgumentParser(description="Run the store benchmarks standalone.")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes for CI: catches codec/flush regressions, not for numbers",
    )
    args = parser.parse_args(argv)
    epochs, nodes_per_epoch = (20, 8) if args.smoke else (80, 16)
    cpg = run_with_provenance(WORKLOAD, num_threads=THREADS, size="small").cpg
    with tempfile.TemporaryDirectory(prefix="inspector-bench-") as tmp:
        store_dir, json_path = prepare(tmp, cpg)
        rows = compare_queries(cpg, store_dir, json_path)
        update_bench_json("queries", {"workload": WORKLOAD, "threads": THREADS, "rows": rows})
        decode = bench_codec_decode(cpg, repeats=2 if args.smoke else REPEATS)
        decode["smoke"] = args.smoke
        update_bench_json("codec_decode", decode)
        flush = bench_ingest_flush(tmp, epochs=epochs, nodes_per_epoch=nodes_per_epoch)
        flush["smoke"] = args.smoke
        update_bench_json("ingest_flush", flush)
        scaling = bench_flush_scaling(tmp, epochs=30 if args.smoke else 120, nodes_per_epoch=8)
        scaling["smoke"] = args.smoke
        update_bench_json("flush_scaling", scaling)
        remote = bench_remote_ingest(tmp, epochs=15 if args.smoke else 40, nodes_per_epoch=8)
        remote["smoke"] = args.smoke
        update_bench_json("remote_ingest", remote)
        warm = bench_warm_vs_cold(store_dir, cpg, repeats=2 if args.smoke else REPEATS)
        warm["smoke"] = args.smoke
        update_bench_json("query_warm_vs_cold", warm)
        scan = bench_parallel_scan(store_dir, cpg, repeats=2 if args.smoke else REPEATS)
        scan["smoke"] = args.smoke
        update_bench_json("parallel_scan", scan)
        # Smoke trims the query count only: shrinking the store would
        # shrink the decode penalty the gate exists to measure.
        cluster = bench_cluster_scatter_gather(
            tmp, queries_per_thread=15 if args.smoke else 40
        )
        cluster["smoke"] = args.smoke
        update_bench_json("cluster_scatter_gather", cluster)
        scrubbed = bench_scrub_throughput(
            store_dir, cpg, repeats=2 if args.smoke else REPEATS
        )
        scrubbed["smoke"] = args.smoke
        path = update_bench_json("scrub_throughput", scrubbed)
        fleet = bench_fleet_ingest_maintenance(
            tmp,
            runs=3 if args.smoke else 8,
            concurrency=2,
            query_count=20 if args.smoke else 60,
        )
        fleet["smoke"] = args.smoke
        update_bench_json("fleet_ingest_maintenance", fleet)
    print("\n".join(report_lines(rows)))
    print(
        f"codec decode: json {decode['json']['decode_ms']:.2f} ms, "
        f"binary {decode['binary']['decode_ms']:.2f} ms ({decode['decode_speedup']:.1f}x), "
        f"binary-z {decode['binary-z']['decode_ms']:.2f} ms "
        f"({decode['decode_speedup_z']:.1f}x, "
        f"{decode['stored_ratio_z_vs_json']:.2f}x the json bytes)"
    )
    v3, v4 = flush["v3_style"], flush["v4"]
    print(
        f"ingest flush over {flush['epochs']} epochs: "
        f"v3-style {v3['early_flush_ms']:.2f} -> {v3['late_flush_ms']:.2f} ms "
        f"({v3['growth']:.2f}x growth); "
        f"v4 {v4['early_flush_ms']:.2f} -> {v4['late_flush_ms']:.2f} ms "
        f"({v4['growth']:.2f}x growth)"
    )
    rewrite, append = scaling["v4_manifest_rewrite"], scaling["v5_log_append"]
    print(
        f"commit over {scaling['epochs']} epochs: "
        f"v4-rewrite {rewrite['early_flush_ms']:.2f} -> {rewrite['late_flush_ms']:.2f} ms "
        f"({rewrite['growth']:.2f}x growth); "
        f"v5-append {append['early_flush_ms']:.2f} -> {append['late_flush_ms']:.2f} ms "
        f"({append['growth']:.2f}x growth)"
    )
    print(
        f"remote ingest: {remote['epochs_per_s']:.0f} epochs/s "
        f"({remote['nodes_per_s']:.0f} nodes/s, run {remote['run_status']})"
    )
    print(
        f"warm vs cold query: cold {warm['cold_ms']:.2f} ms, warm {warm['warm_ms']:.2f} ms "
        f"({warm['speedup']:.1f}x, {warm['cache_hits']} cache hit(s))"
    )
    for row in scan["rows"]:
        print(
            f"parallel scan x{row['parallelism']}: {row['ms']:.2f} ms [{row['mode']}]"
        )
    sweep = scan["cold_sweep"]
    for row in sweep["rows"]:
        print(f"cold sweep x{row['parallelism']}: {row['ms']:.2f} ms")
    print(
        f"cold sweep speedup x4 vs x1: {sweep['speedup_4_vs_1']:.2f}x "
        f"on {sweep['cpus']} core(s)"
    )
    for name in ("single", "shards_1", "shards_2", "shards_4"):
        row = cluster["configs"][name]
        print(
            f"scatter-gather {name:8s}: {row['qps']:7.0f} q/s, p99 {row['p99_ms']:.2f} ms "
            f"({row['cache_hits']} cache hit(s), {row['cache_misses']} miss(es))"
        )
    print(
        f"scatter-gather 4-shard speedup: {cluster['speedup_4_shards_vs_single']:.1f}x, "
        f"best sharded {cluster['speedup_best_vs_single']:.1f}x "
        f"over one server at equal per-server cache"
    )
    print(
        f"scrub: {scrubbed['mb_per_s']:.1f} MB/s; warm query "
        f"{scrubbed['warm_ms']:.2f} ms alone, "
        f"{scrubbed['warm_during_scrub_ms']:.2f} ms during a scrub "
        f"({scrubbed['latency_ratio']:.2f}x, "
        f"{scrubbed['cache_misses_added_by_scrub']} cache miss(es) added)"
    )
    fleet_on = fleet["autopilot_on"]
    print(
        f"fleet ingest: {fleet['autopilot_off']['runs_per_s']:.2f} runs/s alone, "
        f"{fleet_on['runs_per_s']:.2f} runs/s with autopilot "
        f"({fleet['ingest_slowdown']:.2f}x); warm p99 "
        f"{fleet_on['warm_p99_quiescent_ms']:.2f} -> "
        f"{fleet_on['warm_p99_during_ms']:.2f} ms during maintenance "
        f"({fleet['p99_ratio']:.2f}x, {fleet_on['maintenance_actions']} action(s))"
    )
    if args.smoke:
        # CI regression gates: absolute comparisons with wide margins
        # (locally ~4x, ~4x, and >10x), so scheduler noise cannot flake
        # them.
        assert decode["binary"]["decode_ms"] < decode["json"]["decode_ms"], (
            "binary codec lost its decode advantage"
        )
        assert decode["binary-z"]["decode_ms"] < decode["json"]["decode_ms"], (
            "binary-z codec lost its decode advantage over lz+JSON"
        )
        assert decode["binary-z"]["stored_bytes"] <= 2 * decode["json"]["stored_bytes"], (
            "binary-z stored bytes regressed past 2x the lz+JSON footprint"
        )
        if sweep["cpus"] >= 2:
            assert sweep["speedup_4_vs_1"] > 1.0, (
                f"cold-sweep width 4 was no faster than sequential "
                f"({sweep['speedup_4_vs_1']:.2f}x on {sweep['cpus']} cores)"
            )
        assert v4["late_flush_ms"] < v3["late_flush_ms"], (
            "v4 flush cost grew like a whole-index rewrite"
        )
        assert append["late_flush_ms"] <= 2 * append["early_flush_ms"] + 0.5, (
            "v5 log-append flush cost grew with segment count"
        )
        assert remote["server_epochs_ingested"] == remote["epochs"], (
            "remote ingest dropped epochs"
        )
        assert warm["cache_hits"] > 0, "warm engine reported no segment-cache hits"
        assert warm["warm_ms"] <= warm["cold_ms"], (
            "warm cached query was slower than a cold open-per-query"
        )
        assert cluster["speedup_best_vs_single"] >= 2.0, (
            "sharded scatter-gather lost its aggregate-cache advantage "
            f"({cluster['speedup_best_vs_single']:.2f}x, acceptance bar 2x)"
        )
        assert scrubbed["cache_misses_added_by_scrub"] == 0, (
            "scrub disturbed the warm decoded-segment cache"
        )
        assert scrubbed["warm_during_scrub_ms"] <= 1.5 * scrubbed["warm_ms"] + 0.5, (
            f"warm query latency rose {scrubbed['latency_ratio']:.2f}x during a "
            f"scrub (acceptance bar: 1.5x)"
        )
        assert fleet_on["maintenance_actions"] > 0, (
            "the autopilot never fired during the fleet; nothing was measured"
        )
        assert fleet_on["maintenance_actions_in_window"] > 0, (
            "no maintenance executed inside the measured churn window"
        )
        assert fleet_on["reader_errors"] == [], fleet_on["reader_errors"][:3]
        assert fleet_on["reader_mismatches"] == 0, (
            "autopilot maintenance changed a warm reader's answer"
        )
        assert (
            fleet_on["warm_p99_during_ms"]
            <= 1.5 * fleet_on["warm_p99_quiescent_ms"] + 1.0
        ), (
            f"warm p99 rose {fleet['p99_ratio']:.2f}x during autopilot "
            f"maintenance (acceptance bar: 1.5x)"
        )
    print(f"[written to {path}]")


if __name__ == "__main__":
    main()

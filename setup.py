"""Legacy setup shim.

The offline evaluation environment lacks the ``wheel`` package, so PEP 660
editable installs fail; this ``setup.py`` lets ``pip install -e .`` fall
back to the classic ``setup.py develop`` path.  All metadata lives in
``pyproject.toml``; this file only mirrors what the legacy path needs.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of INSPECTOR: Data Provenance Using Intel Processor Trace (ICDCS 2016)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
)

"""Consistent cuts over the Concurrent Provenance Graph.

The snapshot facility must hand the user a *consistent* view of the CPG
while the program is still running: for any synchronization pair, if the
acquire side is in the snapshot then the corresponding release must be too
(Chandy-Lamport applied to the acquire/release events).  Because every
sub-computation carries a vector clock, consistency is easy to obtain: a
cut defined by a frontier clock ``F`` -- "every completed sub-computation
whose clock is dominated by ``F``" -- is consistent, since an acquire's
clock always dominates the clock of the release it observed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set

from repro.core.cpg import ConcurrentProvenanceGraph, EdgeKind
from repro.core.thunk import NodeId
from repro.core.vector_clock import VectorClock, merge_all


@dataclass
class Cut:
    """A consistent cut of the CPG.

    Attributes:
        frontier: The vector clock defining the cut.
        nodes: The sub-computations included in the cut.
    """

    frontier: VectorClock
    nodes: Set[NodeId] = field(default_factory=set)

    def __len__(self) -> int:
        return len(self.nodes)


def frontier_of(cpg: ConcurrentProvenanceGraph) -> VectorClock:
    """Return the frontier clock covering everything currently in the CPG."""
    return merge_all(node.clock for node in cpg.subcomputations() if node.tid >= 0)


def cut_at(cpg: ConcurrentProvenanceGraph, frontier: VectorClock) -> Cut:
    """Return the cut of every completed sub-computation dominated by ``frontier``.

    The virtual input node (tid < 0) is always part of the cut because the
    input exists before any computation.
    """
    nodes: Set[NodeId] = set()
    for node in cpg.subcomputations():
        if node.tid < 0:
            nodes.add(node.node_id)
        elif node.clock.dominated_by(frontier):
            nodes.add(node.node_id)
    return Cut(frontier=frontier.copy(), nodes=nodes)


def latest_cut(cpg: ConcurrentProvenanceGraph) -> Cut:
    """Return the cut defined by the current frontier of the CPG."""
    return cut_at(cpg, frontier_of(cpg))


def is_consistent(cpg: ConcurrentProvenanceGraph, nodes: Set[NodeId]) -> bool:
    """Check the Chandy-Lamport condition on a candidate cut.

    For every synchronization edge (release -> acquire) and every control
    edge (program order) whose target is in the cut, the source must be in
    the cut as well.
    """
    for kind in (EdgeKind.SYNC, EdgeKind.CONTROL):
        for source, target, _ in cpg.edges(kind):
            if target in nodes and source not in nodes:
                return False
    return True


def violations(cpg: ConcurrentProvenanceGraph, nodes: Set[NodeId]) -> List[tuple]:
    """Return every (source, target, kind) edge that breaks cut consistency."""
    broken = []
    for kind in (EdgeKind.SYNC, EdgeKind.CONTROL):
        for source, target, attrs in cpg.edges(kind):
            if target in nodes and source not in nodes:
                broken.append((source, target, attrs.get("kind")))
    return broken

"""The live snapshot driver.

The perf tool starts a snapshot when it receives SIGUSR2; INSPECTOR hooks
that signal and triggers it at synchronization events, because those are
the points where a consistent cut of the CPG is cheap to define (every
thread's latest acquire/release is already recorded).  The snapshotter
below is that mechanism: it is invoked at every synchronization boundary,
takes a consistent cut every ``interval`` boundaries, serializes the cut,
and stores it into the slot ring buffer so the user can analyse provenance
while the program keeps running.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.algorithm import ProvenanceTracker
from repro.core.serialization import cpg_to_dict
from repro.snapshot.consistent_cut import Cut, cut_at, frontier_of, is_consistent
from repro.snapshot.ring_buffer import SlotRingBuffer


@dataclass
class SnapshotRecord:
    """Metadata about one snapshot that was taken.

    Attributes:
        sequence: Snapshot sequence number.
        nodes: Number of sub-computations included.
        serialized_bytes: Size of the serialized payload.
        stored: Whether the payload fit into a ring slot.
        consistent: Whether the cut passed the consistency check.
    """

    sequence: int
    nodes: int
    serialized_bytes: int
    stored: bool
    consistent: bool


@dataclass
class SnapshotterStats:
    """Aggregate snapshot counters."""

    triggers: int = 0
    snapshots_taken: int = 0
    total_serialized_bytes: int = 0
    records: List[SnapshotRecord] = field(default_factory=list)


class Snapshotter:
    """Takes periodic consistent snapshots of a tracker's CPG.

    Args:
        tracker: The provenance tracker being snapshotted.
        ring: The slot ring buffer snapshots are stored into.
        interval: Number of synchronization boundaries between snapshots.
    """

    def __init__(
        self,
        tracker: ProvenanceTracker,
        ring: Optional[SlotRingBuffer] = None,
        interval: int = 64,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"snapshot interval must be positive, got {interval}")
        self.tracker = tracker
        self.ring = ring if ring is not None else SlotRingBuffer()
        self.interval = interval
        self.stats = SnapshotterStats()
        self._since_last = 0

    def on_sync_boundary(self) -> Optional[SnapshotRecord]:
        """Notify the snapshotter of one synchronization boundary.

        Returns:
            The snapshot record if a snapshot was taken at this boundary.
        """
        self.stats.triggers += 1
        self._since_last += 1
        if self._since_last < self.interval:
            return None
        self._since_last = 0
        return self.take_snapshot()

    def take_snapshot(self) -> SnapshotRecord:
        """Take a snapshot right now (the SIGUSR2 path)."""
        cpg = self.tracker.cpg
        frontier = frontier_of(cpg)
        cut = cut_at(cpg, frontier)
        payload = self._serialize(cut)
        slot = self.ring.store(payload)
        record = SnapshotRecord(
            sequence=self.stats.snapshots_taken,
            nodes=len(cut),
            serialized_bytes=len(payload),
            stored=slot is not None,
            consistent=is_consistent(cpg, cut.nodes),
        )
        self.stats.snapshots_taken += 1
        self.stats.total_serialized_bytes += len(payload)
        self.stats.records.append(record)
        return record

    def _serialize(self, cut: Cut) -> bytes:
        """Serialize the cut (nodes plus the edges internal to it)."""
        payload = cpg_to_dict(self.tracker.cpg, nodes=cut.nodes)
        payload["frontier"] = {str(tid): value for tid, value in cut.frontier.as_dict().items()}
        return json.dumps(payload, sort_keys=True).encode("utf-8")

"""The live-snapshot facility: consistent cuts stored in a bounded slot ring."""

from repro.snapshot.consistent_cut import (
    Cut,
    cut_at,
    frontier_of,
    is_consistent,
    latest_cut,
    violations,
)
from repro.snapshot.ring_buffer import (
    DEFAULT_SLOT_COUNT,
    DEFAULT_SLOT_SIZE,
    Slot,
    SlotRingBuffer,
)
from repro.snapshot.snapshotter import SnapshotRecord, Snapshotter, SnapshotterStats

__all__ = [
    "Cut",
    "cut_at",
    "frontier_of",
    "is_consistent",
    "latest_cut",
    "violations",
    "DEFAULT_SLOT_COUNT",
    "DEFAULT_SLOT_SIZE",
    "Slot",
    "SlotRingBuffer",
    "SnapshotRecord",
    "Snapshotter",
    "SnapshotterStats",
]

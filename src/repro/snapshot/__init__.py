"""The live-snapshot facility: consistent cuts stored in a bounded slot ring.

Where this package sits in the whole reproduction: ``docs/architecture.md``.
"""

from repro.snapshot.consistent_cut import (
    Cut,
    cut_at,
    frontier_of,
    is_consistent,
    latest_cut,
    violations,
)
from repro.snapshot.ring_buffer import (
    DEFAULT_SLOT_COUNT,
    DEFAULT_SLOT_SIZE,
    Slot,
    SlotRingBuffer,
)
from repro.snapshot.snapshotter import SnapshotRecord, Snapshotter, SnapshotterStats

__all__ = [
    "Cut",
    "cut_at",
    "frontier_of",
    "is_consistent",
    "latest_cut",
    "violations",
    "DEFAULT_SLOT_COUNT",
    "DEFAULT_SLOT_SIZE",
    "Slot",
    "SlotRingBuffer",
    "SnapshotRecord",
    "Snapshotter",
    "SnapshotterStats",
]

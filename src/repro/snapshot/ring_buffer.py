"""The bounded slot ring buffer backing the live-snapshot facility.

INSPECTOR bounds the space used by snapshots with a ring of fixed-size
slots (4 MB each by default): when every slot is full, storing a new
snapshot evicts the oldest one.  As the user finishes analysing a snapshot
they release its slot for reuse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import SnapshotError

#: Default slot size in bytes (the paper sets each slot to 4 MB).
DEFAULT_SLOT_SIZE = 4 * 1024 * 1024

#: Default number of slots in the ring.
DEFAULT_SLOT_COUNT = 8


@dataclass
class Slot:
    """One snapshot slot.

    Attributes:
        index: Slot position in the ring.
        payload: The serialized snapshot stored in the slot.
        sequence: Monotonic sequence number of the stored snapshot.
    """

    index: int
    payload: bytes = b""
    sequence: int = -1

    @property
    def occupied(self) -> bool:
        """Whether the slot currently holds a snapshot."""
        return self.sequence >= 0


class SlotRingBuffer:
    """A fixed-capacity ring of snapshot slots.

    Args:
        slot_size: Maximum payload size per slot in bytes.
        slot_count: Number of slots.
    """

    def __init__(self, slot_size: int = DEFAULT_SLOT_SIZE, slot_count: int = DEFAULT_SLOT_COUNT) -> None:
        if slot_size <= 0 or slot_count <= 0:
            raise SnapshotError("slot size and slot count must both be positive")
        self.slot_size = slot_size
        self.slots: List[Slot] = [Slot(index) for index in range(slot_count)]
        self._next_sequence = 0
        self._cursor = 0
        self.evictions = 0
        self.stored = 0
        self.oversized_rejections = 0

    def store(self, payload: bytes) -> Optional[Slot]:
        """Store ``payload`` in the next slot, evicting its previous content.

        Returns:
            The slot used, or ``None`` when the payload exceeds the slot
            size (the snapshot is rejected and accounted, mirroring a trace
            too large for the configured ring).
        """
        if len(payload) > self.slot_size:
            self.oversized_rejections += 1
            return None
        slot = self.slots[self._cursor]
        if slot.occupied:
            self.evictions += 1
        slot.payload = bytes(payload)
        slot.sequence = self._next_sequence
        self._next_sequence += 1
        self._cursor = (self._cursor + 1) % len(self.slots)
        self.stored += 1
        return slot

    def release(self, slot: Slot) -> None:
        """Mark ``slot`` as analysed so its space can be reused silently."""
        slot.payload = b""
        slot.sequence = -1

    def occupied_slots(self) -> List[Slot]:
        """Slots currently holding snapshots, oldest first."""
        return sorted((slot for slot in self.slots if slot.occupied), key=lambda s: s.sequence)

    def latest(self) -> Optional[Slot]:
        """The most recently stored snapshot, if any."""
        occupied = self.occupied_slots()
        return occupied[-1] if occupied else None

    @property
    def used_bytes(self) -> int:
        """Total payload bytes currently held by the ring."""
        return sum(len(slot.payload) for slot in self.slots)

    @property
    def capacity_bytes(self) -> int:
        """Total capacity of the ring in bytes."""
        return self.slot_size * len(self.slots)

"""Out-of-core provenance queries over a persistent store.

:class:`StoreQueryEngine` answers the same questions as
:mod:`repro.core.queries` -- backward/forward slices, page lineage, taint
propagation -- but against a :class:`~repro.store.store.ProvenanceStore`,
loading only the segments the secondary indexes select instead of
materializing the whole graph.  On a store built from a finalized CPG
(:meth:`ProvenanceStore.ingest`) every query returns exactly what the
in-memory functions return on that CPG.  Slices and lineage are
set-valued and exact for every ingest path; taint replay on a
sink-streamed store uses the runtime arrival order, which agrees with
the in-memory result on race-free executions but may resolve a data
race differently (see ``docs/store.md``).

Slices walk the edge-segment index (node -> segments holding its in-/out-
edges), so a slice confined to one corner of the graph touches only the
segments of that corner.  Taint propagation first computes, from the page
and thread indexes alone (no segment I/O), a closed superset of the nodes
the taint frontier can ever reach, then replays the in-memory policy over
just those nodes in stored topological rank order -- nodes outside the
closure can neither become tainted nor taint a page, so restricting the
replay preserves the result bit for bit.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.core.cpg import EdgeKind
from repro.core.queries import TaintResult, replay_taint
from repro.core.thunk import NodeId, SubComputation

from repro.store.segment import EdgeTuple
from repro.store.store import ProvenanceStore


class StoreQueryEngine:
    """Indexed queries over one provenance store."""

    def __init__(self, store: ProvenanceStore) -> None:
        self.store = store

    @property
    def segments_loaded(self) -> int:
        """Segments decoded from disk so far (the out-of-core metric)."""
        return self.store.read_stats.segments_read

    # ------------------------------------------------------------------ #
    # Node access
    # ------------------------------------------------------------------ #

    def subcomputation(self, node_id: NodeId) -> SubComputation:
        """Load the sub-computation stored at ``node_id``."""
        payload = self.store.segment(self.store.indexes.segment_of(node_id))
        return payload.nodes[node_id]

    def _edges_at(self, node_id: NodeId, forward: bool) -> List[EdgeTuple]:
        indexes = self.store.indexes
        segments = indexes.out_segments(node_id) if forward else indexes.in_segments(node_id)
        edges: List[EdgeTuple] = []
        for segment_id in segments:
            payload = self.store.segment(segment_id)
            grouped = payload.edges_by_source if forward else payload.edges_by_target
            edges.extend(grouped.get(node_id, ()))
        return edges

    def _closure(
        self, node_id: NodeId, kinds: Optional[Sequence[EdgeKind]], forward: bool
    ) -> Set[NodeId]:
        # Mirrors ConcurrentProvenanceGraph._closure, but expands through
        # the edge-segment index instead of an in-memory adjacency list.
        self.store.indexes.segment_of(node_id)  # raises for unknown nodes
        allowed = set(kinds) if kinds is not None else None
        seen: Set[NodeId] = set()
        frontier = [node_id]
        while frontier:
            current = frontier.pop()
            for source, target, kind, _ in self._edges_at(current, forward):
                if allowed is not None and kind not in allowed:
                    continue
                nxt = target if forward else source
                if nxt not in seen and nxt != node_id:
                    seen.add(nxt)
                    frontier.append(nxt)
        return seen

    # ------------------------------------------------------------------ #
    # Slices
    # ------------------------------------------------------------------ #

    def backward_slice(
        self,
        node_id: NodeId,
        kinds: Sequence[EdgeKind] = (EdgeKind.DATA,),
        include_start: bool = True,
    ) -> Set[NodeId]:
        """Every stored sub-computation ``node_id`` transitively depends on."""
        result = self._closure(node_id, kinds, forward=False)
        if include_start:
            result.add(node_id)
        return result

    def forward_slice(
        self,
        node_id: NodeId,
        kinds: Sequence[EdgeKind] = (EdgeKind.DATA,),
        include_start: bool = True,
    ) -> Set[NodeId]:
        """Every stored sub-computation transitively influenced by ``node_id``."""
        result = self._closure(node_id, kinds, forward=True)
        if include_start:
            result.add(node_id)
        return result

    def lineage_of_pages(self, pages: Iterable[int]) -> Set[NodeId]:
        """Writers of ``pages`` plus everything they depend on through data edges."""
        result: Set[NodeId] = set()
        writers: Set[NodeId] = set()
        for page in pages:
            writers.update(self.store.indexes.writers_of_page(page))
        for writer in writers:
            result |= self.backward_slice(writer, kinds=(EdgeKind.DATA,))
        return result

    # ------------------------------------------------------------------ #
    # Taint propagation
    # ------------------------------------------------------------------ #

    def propagate_taint(
        self, source_pages: Iterable[int], through_thread_state: bool = False
    ) -> TaintResult:
        """Page-granularity taint propagation, replayed out of core.

        Matches :func:`repro.core.queries.propagate_taint` on the stored
        graph (see the module docstring for why restricting the replay to
        the index-computed closure is exact).
        """
        candidates = self._taint_candidates(set(source_pages), through_thread_state)
        order = sorted(candidates, key=self.store.indexes.topo_of)
        ordered = ((node_id, self.subcomputation(node_id)) for node_id in order)
        return replay_taint(ordered, source_pages, through_thread_state=through_thread_state)

    def _taint_candidates(
        self, source_pages: Set[int], through_thread_state: bool
    ) -> Set[NodeId]:
        """Closed superset of the nodes taint can reach, from indexes alone.

        Worklist fixpoint: every page and node is expanded exactly once, so
        the closure is linear in its output rather than quadratic.
        """
        indexes = self.store.indexes
        written_by: Dict[NodeId, Set[int]] = indexes.pages_written_by()
        pages = set(source_pages)
        candidates: Set[NodeId] = set()
        page_frontier = list(pages)
        node_frontier: List[NodeId] = []

        def add_node(node_id: NodeId) -> None:
            if node_id not in candidates:
                candidates.add(node_id)
                node_frontier.append(node_id)

        while page_frontier or node_frontier:
            while page_frontier:
                page = page_frontier.pop()
                for reader in indexes.readers_of_page(page):
                    add_node(reader)
            while node_frontier:
                node_id = node_frontier.pop()
                for page in written_by.get(node_id, ()):
                    if page not in pages:
                        pages.add(page)
                        page_frontier.append(page)
                if through_thread_state:
                    for later in indexes.thread_nodes_from(node_id[0], node_id[1]):
                        add_node(later)
        return candidates

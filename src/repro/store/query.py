"""Out-of-core provenance queries over a persistent store.

:class:`StoreQueryEngine` answers the same questions as
:mod:`repro.core.queries` -- backward/forward slices, page lineage, taint
propagation -- but against a :class:`~repro.store.store.ProvenanceStore`,
loading only the segments the secondary indexes select instead of
materializing the whole graph.

Every query is answered **within one run** (node ids are only unique per
run); the ``run`` argument defaults to the store's only run and must be
given explicitly on multi-run stores.  Cross-run questions have their own
entry points: the ``*_across_runs`` methods fan one query out over every
run, and :meth:`StoreQueryEngine.compare_lineage` diffs the lineage of a
page between two runs -- the longitudinal "what changed between yesterday's
run and today's" query the multi-run store exists for.

On a store built from a finalized CPG (:meth:`ProvenanceStore.ingest`)
every query returns exactly what the in-memory functions return on that
CPG.  Slices and lineage are set-valued and exact for every ingest path;
taint replay on a sink-streamed store uses the runtime arrival order,
which agrees with the in-memory result on race-free executions but may
resolve a data race differently (see ``docs/store.md``).

Slices walk the edge-segment index (node -> segments holding its in-/out-
edges), so a slice confined to one corner of the graph touches only the
segments of that corner.  Taint propagation first computes, from the page
and thread indexes alone (no segment I/O), a closed superset of the nodes
the taint frontier can ever reach, then replays the in-memory policy over
just those nodes in stored topological rank order -- nodes outside the
closure can neither become tainted nor taint a page, so restricting the
replay preserves the result bit for bit.  When the closure floods (the
frontier touches a majority of the run's *read* pages -- write-only pages
never spread taint further) the engine stops
expanding it and falls back to one sequential sweep of the run's segments
in topological order: each segment is processed exactly once, which is
the optimal access pattern for a query whose answer genuinely spans the
run.

Every segment read goes through the store's byte-budgeted decoded-segment
cache (:mod:`repro.store.cache`), so repeated queries on a warm engine --
the profile :class:`~repro.store.server.StoreServer` serves -- cost no
decode at all, and the ``parallelism=`` knob fans multi-segment scans
(taint prefetch, flood sweep, ``*_across_runs``) out over the store's
shared decode pools -- threads for warm-ish chunks, processes for cold
multi-segment sweeps -- with a sequential fallback at ``parallelism=1``.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.cpg import EdgeKind
from repro.core.queries import TaintResult, replay_taint
from repro.core.thunk import NodeId, SubComputation
from repro.errors import CorruptSegmentError

from repro.store.cache import ReadScope
from repro.store.segment import EdgeTuple
from repro.store.store import ProvenanceStore

#: Fraction of a run's read pages the taint frontier may reach before the
#: engine abandons the index closure for one sequential segment sweep.
TAINT_FLOOD_FRACTION = 0.5


# ---------------------------------------------------------------------- #
# Merge helpers
#
# The pieces of the cross-run query semantics that are pure set/ordering
# logic live here as free functions so the sharded cluster router
# (:mod:`repro.store.cluster`) merges scattered per-shard answers through
# the *same* code the single-store engine uses -- the two cannot drift.
# ---------------------------------------------------------------------- #


def normalize_pages(pages) -> Tuple[int, ...]:
    """The ``pages`` argument of ``compare_lineage``: one page or many."""
    return (pages,) if isinstance(pages, int) else tuple(pages)


def untouched_taint(source_pages: Iterable[int]) -> "TaintResult":
    """The exact taint result of a run that never saw any source page.

    Taint only spreads through reads of tainted pages, so a run the
    cross-run page summary proves untouched reports the sources and
    nothing else -- without opening its indexes or segments.
    """
    sources = set(source_pages)
    return TaintResult(source_pages=sources, tainted_pages=set(sources))


def order_across_runs(answered: Dict[int, object], run_ids: Iterable[int], default) -> Dict[int, object]:
    """Assemble one ``*_across_runs`` result dict in run-id order.

    Every run in ``run_ids`` gets an entry -- the answered value, or
    ``default(run_id)`` for runs that were skipped (proven untouched) --
    and the dict enumerates runs in exactly the order given, which is the
    store's mint order.  Merge order is part of the documented result
    shape (the server serializes it as-is), so the cluster router feeds
    this the same mint-ordered id list a single store would.
    """
    return {
        run_id: answered[run_id] if run_id in answered else default(run_id)
        for run_id in run_ids
    }


def diff_lineage(
    run_a: int,
    run_b: int,
    pages: Tuple[int, ...],
    lineage_a: Set[NodeId],
    lineage_b: Set[NodeId],
) -> LineageDiff:
    """Partition two runs' lineages into the :class:`LineageDiff` shape."""
    return LineageDiff(
        run_a=run_a,
        run_b=run_b,
        pages=pages,
        only_a=lineage_a - lineage_b,
        only_b=lineage_b - lineage_a,
        common=lineage_a & lineage_b,
    )


@dataclass
class LineageDiff:
    """Result of :meth:`StoreQueryEngine.compare_lineage`.

    Node ids are comparable across runs because both runs execute the same
    program shape: ``(tid, index)`` names "the index-th sub-computation of
    thread tid", so the diff shows where the two executions' histories for
    the same pages diverge.

    Attributes:
        run_a: First run id.
        run_b: Second run id.
        pages: The pages whose lineage was compared.
        only_a: Lineage nodes present in run A but not run B.
        only_b: Lineage nodes present in run B but not run A.
        common: Lineage nodes present in both runs.
    """

    run_a: int
    run_b: int
    pages: Tuple[int, ...]
    only_a: Set[NodeId] = field(default_factory=set)
    only_b: Set[NodeId] = field(default_factory=set)
    common: Set[NodeId] = field(default_factory=set)

    @property
    def identical(self) -> bool:
        """Whether both runs produced the pages the same way."""
        return not self.only_a and not self.only_b


class StoreQueryEngine:
    """Indexed queries over one provenance store (any number of runs).

    Args:
        store: The store to query (may share a warm
            :class:`~repro.store.cache.SegmentCache` with other handles).
        parallelism: Worker threads for multi-segment scans (the taint
            candidate prefetch, the sequential sweep, and the
            ``*_across_runs`` fan-out).  ``1`` (the default) keeps every
            path sequential.
        scope: Optional :class:`~repro.store.cache.ReadScope` collecting
            this engine's per-query read accounting (the server attaches
            one per request).
    """

    def __init__(
        self,
        store: ProvenanceStore,
        parallelism: int = 1,
        scope: Optional[ReadScope] = None,
    ) -> None:
        if parallelism < 1:
            raise ValueError(f"parallelism must be >= 1, got {parallelism}")
        self.store = store
        self.parallelism = parallelism
        self.scope = scope
        #: How the last ``propagate_taint`` ran: ``"indexed"`` (closure
        #: from the indexes) or ``"sweep"`` (segment-scan flood
        #: fallback).  Meaningful after a single-run query; after a
        #: parallel ``taint_across_runs`` fan-out it reflects whichever
        #: run finished last and is effectively unspecified.
        self.last_taint_mode: Optional[str] = None

    @property
    def segments_loaded(self) -> int:
        """Segments decoded from disk so far (the out-of-core metric)."""
        return self.store.read_stats.segments_read

    # ------------------------------------------------------------------ #
    # Node access
    # ------------------------------------------------------------------ #

    def _segment(self, segment_id: int):
        return self.store.segment(segment_id, scope=self.scope)

    def _note_quarantined(self, segment_ids: Iterable[int]) -> None:
        if self.scope is not None:
            self.scope.record_quarantined(segment_ids)

    def _segment_or_none(self, segment_id: int):
        """One segment's payload, or ``None`` when it is quarantined/corrupt.

        Set-valued queries (slices, lineage, taint) degrade instead of
        aborting: a damaged segment is skipped, the skip is recorded in
        the engine's scope (``degraded`` / ``quarantined_segments``), and
        the rest of the answer comes from the healthy segments -- the
        single-store analogue of the cluster's partial fan-out with its
        ``missing_shards``.  Point lookups (:meth:`subcomputation`) still
        raise the typed :class:`~repro.errors.CorruptSegmentError`: there
        is no partial answer to a question about one specific node.
        """
        if self.store.is_quarantined(segment_id):
            self._note_quarantined((segment_id,))
            return None
        try:
            return self._segment(segment_id)
        except CorruptSegmentError as exc:
            self._note_quarantined(
                (segment_id if exc.segment_id is None else exc.segment_id,)
            )
            return None

    def _iter_payloads(self, segment_ids: Sequence[int]):
        """Yield ``(segment_id, payload)`` decoding bounded chunks at a time.

        With ``parallelism > 1`` each chunk's cache misses decode
        concurrently; only one chunk of payloads is referenced from this
        frame at any moment, so a scan's resident set stays bounded by
        the chunk width (plus whatever the byte-budgeted cache retains)
        even when the scanned segments exceed the cache budget -- and
        every segment is decoded at most once per scan either way.
        """
        ids = list(dict.fromkeys(segment_ids))
        live: List[int] = []
        for segment_id in ids:
            if self.store.is_quarantined(segment_id):
                self._note_quarantined((segment_id,))
            else:
                live.append(segment_id)
        if self.parallelism <= 1 or len(live) <= 1:
            for segment_id in live:
                payload = self._segment_or_none(segment_id)
                if payload is not None:
                    yield segment_id, payload
            return
        width = self.parallelism * 2
        # The store's shared decode pools do the concurrency (chunking
        # bounds residency, not thread churn); a cold chunk wide enough
        # may decode on the process pool, off the GIL entirely.
        for start in range(0, len(live), width):
            chunk = live[start : start + width]
            try:
                payloads = self.store.segment_many(
                    chunk, parallelism=self.parallelism, scope=self.scope
                )
            except CorruptSegmentError:
                # A segment of this chunk went bad mid-scan (the store has
                # quarantined it in memory); retry the chunk one segment
                # at a time so only the damaged ones are skipped.
                for segment_id in chunk:
                    payload = self._segment_or_none(segment_id)
                    if payload is not None:
                        yield segment_id, payload
                continue
            for segment_id in chunk:
                yield segment_id, payloads[segment_id]

    def subcomputation(self, node_id: NodeId, run: Optional[int] = None) -> SubComputation:
        """Load the sub-computation stored at ``node_id`` of ``run``."""
        payload = self._segment(self.store.indexes_for(run).segment_of(node_id))
        return payload.nodes[node_id]

    def _edges_at(self, node_id: NodeId, forward: bool, run: int) -> List[EdgeTuple]:
        indexes = self.store.indexes_for(run)
        segments = indexes.out_segments(node_id) if forward else indexes.in_segments(node_id)
        edges: List[EdgeTuple] = []
        for segment_id in segments:
            payload = self._segment_or_none(segment_id)
            if payload is None:
                continue
            grouped = payload.edges_by_source if forward else payload.edges_by_target
            edges.extend(grouped.get(node_id, ()))
        return edges

    def _closure(
        self,
        node_id: NodeId,
        kinds: Optional[Sequence[EdgeKind]],
        forward: bool,
        run: int,
    ) -> Set[NodeId]:
        # Mirrors ConcurrentProvenanceGraph._closure, but expands through
        # the edge-segment index instead of an in-memory adjacency list.
        self.store.indexes_for(run).segment_of(node_id)  # raises for unknown nodes
        allowed = set(kinds) if kinds is not None else None
        seen: Set[NodeId] = set()
        frontier = [node_id]
        while frontier:
            current = frontier.pop()
            for source, target, kind, _ in self._edges_at(current, forward, run):
                if allowed is not None and kind not in allowed:
                    continue
                nxt = target if forward else source
                if nxt not in seen and nxt != node_id:
                    seen.add(nxt)
                    frontier.append(nxt)
        return seen

    # ------------------------------------------------------------------ #
    # Slices
    # ------------------------------------------------------------------ #

    def backward_slice(
        self,
        node_id: NodeId,
        kinds: Sequence[EdgeKind] = (EdgeKind.DATA,),
        include_start: bool = True,
        run: Optional[int] = None,
    ) -> Set[NodeId]:
        """Every sub-computation ``node_id`` transitively depends on (in ``run``)."""
        run_id = self.store.resolve_run(run)
        result = self._closure(node_id, kinds, forward=False, run=run_id)
        if include_start:
            result.add(node_id)
        return result

    def forward_slice(
        self,
        node_id: NodeId,
        kinds: Sequence[EdgeKind] = (EdgeKind.DATA,),
        include_start: bool = True,
        run: Optional[int] = None,
    ) -> Set[NodeId]:
        """Every sub-computation transitively influenced by ``node_id`` (in ``run``)."""
        run_id = self.store.resolve_run(run)
        result = self._closure(node_id, kinds, forward=True, run=run_id)
        if include_start:
            result.add(node_id)
        return result

    def lineage_of_pages(self, pages: Iterable[int], run: Optional[int] = None) -> Set[NodeId]:
        """Writers of ``pages`` plus everything they depend on through data edges."""
        run_id = self.store.resolve_run(run)
        indexes = self.store.indexes_for(run_id)
        result: Set[NodeId] = set()
        writers: Set[NodeId] = set()
        for page in pages:
            writers.update(indexes.writers_of_page(page))
        if self.parallelism > 1:
            # Warm the first expansion hop of every writer concurrently;
            # the closure walk below then finds those segments cached
            # (when the first hop exceeds the cache budget the tail of the
            # prefetch evicts its head and those segments decode twice --
            # a bounded heuristic, never a correctness issue).  Payloads
            # are dropped as each chunk is consumed -- only the cache
            # retains them.
            first_hop = [
                segment_id for writer in writers for segment_id in indexes.in_segments(writer)
            ]
            for _ in self._iter_payloads(first_hop):
                pass
        for writer in writers:
            result |= self.backward_slice(writer, kinds=(EdgeKind.DATA,), run=run_id)
        return result

    # ------------------------------------------------------------------ #
    # Cross-run queries
    # ------------------------------------------------------------------ #

    def run_progress(self, run: Optional[int] = None) -> dict:
        """How far one run has grown, from the manifest alone (no I/O).

        The ``watch`` op polls this between lineage observations: a
        follow-mode engine's numbers advance as a live writer's flushes
        land, and ``status`` flipping to complete is the end-of-stream
        signal.
        """
        run_id = self.store.resolve_run(run)
        info = self.store.manifest.run_info(run_id)
        return {
            "run": run_id,
            "status": info.status,
            "nodes": info.nodes,
            "edges": info.edges,
            "segments": len(self.store.manifest.segments_of_run(run_id)),
        }

    def runs_containing(self, node_id: NodeId) -> List[int]:
        """Every run that recorded a sub-computation named ``node_id``."""
        return [
            run_id
            for run_id in self.store.run_ids()
            if self.store.indexes_for(run_id).has_node(node_id)
        ]

    def backward_slice_across_runs(
        self,
        node_id: NodeId,
        kinds: Sequence[EdgeKind] = (EdgeKind.DATA,),
        include_start: bool = True,
    ) -> Dict[int, Set[NodeId]]:
        """:meth:`backward_slice` in every run that holds ``node_id``."""
        return {
            run_id: self.backward_slice(node_id, kinds=kinds, include_start=include_start, run=run_id)
            for run_id in self.runs_containing(node_id)
        }

    def _fan_out_runs(self, run_ids: Sequence[int], query) -> Dict[int, object]:
        """Run one per-run query over ``run_ids``, pooled when parallel.

        The per-run queries are independent (each touches only its run's
        indexes and segments), so an across-runs question parallelises at
        run granularity on top of whatever the shared segment cache
        already holds.  This pool is deliberately *not* the store's
        shared decode pool: each per-run task ends up calling
        ``segment_many``, which submits to the shared pool -- nesting
        both levels on one pool could deadlock with every worker waiting
        for a decode task that cannot be scheduled.
        """
        if self.parallelism > 1 and len(run_ids) > 1:
            with ThreadPoolExecutor(
                max_workers=min(self.parallelism, len(run_ids))
            ) as pool:
                return dict(zip(run_ids, pool.map(query, run_ids)))
        return {run_id: query(run_id) for run_id in run_ids}

    def lineage_across_runs(self, pages: Iterable[int]) -> Dict[int, Set[NodeId]]:
        """:meth:`lineage_of_pages` in every run of the store.

        Runs the cross-run page summary (``index/pages_runs.json``) proves
        never touched any of ``pages`` are answered with an empty lineage
        without opening their per-run indexes.  Touched runs are queried
        concurrently when the engine's ``parallelism`` allows.
        """
        wanted = list(pages)
        touched = sorted(self.store.runs_touching_pages(wanted))
        answered = self._fan_out_runs(
            touched, lambda run_id: self.lineage_of_pages(wanted, run=run_id)
        )
        return order_across_runs(answered, self.store.run_ids(), lambda _: set())

    def taint_across_runs(
        self, source_pages: Iterable[int], through_thread_state: bool = False
    ) -> Dict[int, TaintResult]:
        """:meth:`propagate_taint` in every run of the store.

        A run that never read or wrote any source page cannot taint a
        node or another page (taint only spreads through reads of tainted
        pages), so the cross-run page summary lets those runs be answered
        -- exactly -- without opening their indexes or segments.  Touched
        runs are queried concurrently when ``parallelism`` allows.
        """
        sources = list(source_pages)
        touched = sorted(self.store.runs_touching_pages(sources))
        answered = self._fan_out_runs(
            touched,
            lambda run_id: self.propagate_taint(
                sources, through_thread_state=through_thread_state, run=run_id
            ),
        )
        return order_across_runs(
            answered, self.store.run_ids(), lambda _: untouched_taint(sources)
        )

    def compare_lineage(self, run_a: int, run_b: int, pages) -> LineageDiff:
        """Diff the lineage of ``pages`` between two runs.

        ``pages`` may be a single page or an iterable of pages.  The result
        partitions the union of both lineages into nodes exclusive to each
        run and nodes common to both -- empty exclusives mean the two
        executions produced those pages through the same history.
        """
        wanted = normalize_pages(pages)
        lineage_a = self.lineage_of_pages(wanted, run=run_a)
        lineage_b = self.lineage_of_pages(wanted, run=run_b)
        return diff_lineage(run_a, run_b, wanted, lineage_a, lineage_b)

    # ------------------------------------------------------------------ #
    # Taint propagation
    # ------------------------------------------------------------------ #

    def propagate_taint(
        self,
        source_pages: Iterable[int],
        through_thread_state: bool = False,
        run: Optional[int] = None,
    ) -> TaintResult:
        """Page-granularity taint propagation, replayed out of core.

        Matches :func:`repro.core.queries.propagate_taint` on the stored
        graph (see the module docstring for why restricting the replay to
        the index-computed closure is exact).  When the closure floods --
        taint reaches a majority of the run's read pages -- the engine
        early-exits to one sequential sweep of the run's segments instead
        of finishing the fixpoint and re-reading segments node by node;
        the replay policy is identical either way, so only the access
        pattern (not the result) changes.
        """
        run_id = self.store.resolve_run(run)
        sources = set(source_pages)
        candidates = self._taint_candidates(sources, through_thread_state, run_id)
        if candidates is None:
            self.last_taint_mode = "sweep"
            return self._sweep_taint(sources, through_thread_state, run_id)
        self.last_taint_mode = "indexed"
        indexes = self.store.indexes_for(run_id)
        order = sorted(candidates, key=indexes.topo_of)
        # The segments the replay needs are known up front from the node
        # index; scan them once in chunks (concurrently when parallel)
        # and keep only the candidate *node records* -- the replay needs
        # them all anyway, while the payloads' edge maps are dropped with
        # each chunk, so each segment is decoded at most once per query
        # even when the closure outgrows the cache budget.
        wanted: Dict[int, List[NodeId]] = {}
        for node_id in order:
            wanted.setdefault(indexes.segment_of(node_id), []).append(node_id)
        records: Dict[NodeId, SubComputation] = {}
        for segment_id, payload in self._iter_payloads(list(wanted)):
            for node_id in wanted[segment_id]:
                records[node_id] = payload.nodes[node_id]
        # A quarantined segment drops its nodes from the replay (the scope
        # reports the answer as degraded); every healthy node still plays
        # in stored topological order.
        ordered = ((node_id, records[node_id]) for node_id in order if node_id in records)
        return replay_taint(ordered, sources, through_thread_state=through_thread_state)

    def _taint_candidates(
        self, source_pages: Set[int], through_thread_state: bool, run: int
    ) -> Optional[Set[NodeId]]:
        """Closed superset of the nodes taint can reach, from indexes alone.

        Worklist fixpoint: every page and node is expanded exactly once, so
        the closure is linear in its output rather than quadratic.  Returns
        ``None`` when the page frontier floods past
        :data:`TAINT_FLOOD_FRACTION` of the run's read pages -- the signal
        to stop paying for the closure and sweep sequentially.
        """
        indexes = self.store.indexes_for(run)
        written_by: Dict[NodeId, Set[int]] = indexes.pages_written_by()
        # Only pages somebody *reads* spread taint further, so the flood
        # metric counts read-pages: write-only pages (e.g. final outputs)
        # grow the result but never the frontier.
        readable = set(indexes.page_readers)
        flood_at = len(readable) * TAINT_FLOOD_FRACTION
        pages = set(source_pages)
        reached = len(pages & readable)
        if readable and reached > flood_at:
            return None
        candidates: Set[NodeId] = set()
        page_frontier = list(pages)
        node_frontier: List[NodeId] = []

        def add_node(node_id: NodeId) -> None:
            if node_id not in candidates:
                candidates.add(node_id)
                node_frontier.append(node_id)

        while page_frontier or node_frontier:
            while page_frontier:
                page = page_frontier.pop()
                for reader in indexes.readers_of_page(page):
                    add_node(reader)
            while node_frontier:
                node_id = node_frontier.pop()
                for page in written_by.get(node_id, ()):
                    if page not in pages:
                        pages.add(page)
                        page_frontier.append(page)
                        if page in readable:
                            reached += 1
                            if reached > flood_at:
                                return None
                if through_thread_state:
                    for later in indexes.thread_nodes_from(node_id[0], node_id[1]):
                        add_node(later)
        return candidates

    def _sweep_taint(
        self, source_pages: Set[int], through_thread_state: bool, run: int
    ) -> TaintResult:
        """Replay the taint policy over one scan of the run's segments.

        Segments of a run are appended in topological order and compaction
        preserves that order, but nodes are still sorted by their stored
        rank (an index lookup, no extra I/O) so the replay is a guaranteed
        linear extension of happens-before.  The scan goes through the
        decoded-segment cache -- on a warm engine the flood fallback costs
        no decode at all -- and cache misses decode in parallel when the
        engine's ``parallelism`` allows; each segment is processed exactly
        once either way.
        """
        indexes = self.store.indexes_for(run)
        segment_ids = [info.segment_id for info in self.store.manifest.segments_of_run(run)]
        entries: List[Tuple[int, NodeId, SubComputation]] = []
        for _, payload in self._iter_payloads(segment_ids):
            for node_id, node in payload.nodes.items():
                entries.append((indexes.topo_of(node_id), node_id, node))
        entries.sort(key=lambda entry: entry[0])
        ordered = ((node_id, node) for _, node_id, node in entries)
        return replay_taint(ordered, source_pages, through_thread_state=through_thread_state)

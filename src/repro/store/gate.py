"""Baseline gating: provenance regression checks against a blessed run.

The INSPECTOR paper motivates provenance as a longitudinal debugging
oracle -- "did this run's lineage diverge, and why?".  This module turns
that question into a CI-style gate:

* :func:`bless_baseline` snapshots a known-good run's provenance
  fingerprints -- the lineage and taint closure of every page set, plus
  the run's racy pairs -- into a :class:`ProvenanceBaseline`;
* :meth:`ProvenanceBaseline.save` persists the snapshot as JSON under
  ``<store>/index/baselines/<name>.json`` (a name the orphan sweep and
  fsck deliberately ignore: baselines are operator state, not run state);
* :func:`check_against_baseline` replays the same queries against a
  candidate run and reduces the comparison to a :class:`GateReport`
  whose page-level diffs are built on the store's own
  :func:`~repro.store.query.diff_lineage` and the in-memory
  :func:`~repro.core.queries.find_racy_pairs`.

``python -m repro.store check <store> --baseline <run-or-name>`` drives
the report from the command line and exits non-zero on drift, which is
what lets a CI lane fail a build whose provenance silently changed.

Everything here is deterministic and order-independent: page sets are
normalized and sorted, node ids are serialized through
:func:`~repro.core.serialization.node_key` in sorted order, and racy
pairs are canonicalized -- the same run set produces byte-identical
reports no matter the order pages were supplied or runs were ingested
(``tests/property/test_gate_determinism.py`` holds this line).
"""

from __future__ import annotations

import json
import os
import re
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple, Union

from repro.core.queries import find_racy_pairs
from repro.core.serialization import node_key, parse_node_key
from repro.errors import StoreError

from repro.store.format import INDEX_DIR
from repro.store.query import StoreQueryEngine, diff_lineage, normalize_pages
from repro.store.store import ProvenanceStore

#: Subdirectory of ``index/`` holding persisted baselines.  The name does
#: not match the run-directory pattern, so ``_sweep_orphans`` and fsck
#: leave it alone by construction.
BASELINES_DIR = "baselines"

#: Baseline document format version (bumped on incompatible changes).
BASELINE_VERSION = 1

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


def _pages_key(pages: Tuple[int, ...]) -> str:
    """The canonical dict key of one page set (``"3,7,12"``)."""
    return ",".join(str(page) for page in pages)


def _canonical_page_sets(page_sets: Iterable) -> List[Tuple[int, ...]]:
    """Normalize, sort within, dedupe, and sort across the page sets."""
    canonical = {tuple(sorted(set(normalize_pages(ps)))) for ps in page_sets}
    canonical.discard(())
    return sorted(canonical)


def _canonical_racy_pairs(pairs: Iterable[tuple]) -> List[List]:
    """Serialize racy pairs order-independently.

    Each pair becomes ``[key_a, key_b, [pages...]]`` with the two node
    keys sorted within the pair and the pair list sorted overall, so the
    same set of races always serializes identically regardless of the
    discovery order.
    """
    canonical = set()
    for a, b, pages in pairs:
        first, second = sorted((node_key(a), node_key(b)))
        canonical.add((first, second, tuple(sorted(pages))))
    return [[a, b, list(pages)] for a, b, pages in sorted(canonical)]


def baselines_dir(store: ProvenanceStore) -> str:
    """The store's baseline directory (``<store>/index/baselines``)."""
    return os.path.join(store.path, INDEX_DIR, BASELINES_DIR)


@dataclass
class ProvenanceBaseline:
    """A blessed run's provenance fingerprints, one page set at a time.

    Attributes:
        name: Baseline name (also the ``<name>.json`` file name).
        run_id: The blessed run.
        workload: The blessed run's recorded workload name.
        page_sets: The page sets fingerprinted, canonically sorted.
        fingerprints: Page-set key -> ``{"lineage": [node keys],
            "taint_pages": [pages], "taint_nodes": [node keys]}``, every
            list sorted.
        racy_pairs: Canonicalized ``[key_a, key_b, [pages]]`` races of
            the blessed run, or ``None`` when racy-pair fingerprinting
            was skipped at bless time.
        created_at: Wall-clock ISO 8601 bless timestamp (metadata only;
            never part of a comparison).
        meta: Free-form operator metadata.
    """

    name: str
    run_id: int
    workload: str = ""
    page_sets: List[Tuple[int, ...]] = field(default_factory=list)
    fingerprints: Dict[str, dict] = field(default_factory=dict)
    racy_pairs: Optional[List[List]] = None
    created_at: str = ""
    meta: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "version": BASELINE_VERSION,
            "name": self.name,
            "run_id": self.run_id,
            "workload": self.workload,
            "page_sets": [list(pages) for pages in self.page_sets],
            "fingerprints": self.fingerprints,
            "racy_pairs": self.racy_pairs,
            "created_at": self.created_at,
            "meta": self.meta,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ProvenanceBaseline":
        version = int(data.get("version", 0))
        if version > BASELINE_VERSION:
            raise StoreError(
                f"baseline format {version} is newer than this build understands "
                f"({BASELINE_VERSION})"
            )
        return cls(
            name=str(data["name"]),
            run_id=int(data["run_id"]),
            workload=str(data.get("workload", "")),
            page_sets=_canonical_page_sets(data.get("page_sets", [])),
            fingerprints=dict(data.get("fingerprints", {})),
            racy_pairs=(
                None
                if data.get("racy_pairs") is None
                else _canonical_racy_pairs(
                    (pair[0], pair[1], pair[2]) for pair in data["racy_pairs"]
                )
            ),
            created_at=str(data.get("created_at", "")),
            meta=dict(data.get("meta", {})),
        )

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #

    def path_in(self, store: ProvenanceStore) -> str:
        return os.path.join(baselines_dir(store), f"{self.name}.json")

    def save(self, store: ProvenanceStore) -> str:
        """Persist under ``index/baselines/<name>.json`` (atomic rename)."""
        directory = baselines_dir(store)
        os.makedirs(directory, exist_ok=True)
        target = self.path_in(store)
        scratch = target + ".tmp"
        with open(scratch, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, sort_keys=True, indent=2)
            handle.write("\n")
        os.replace(scratch, target)
        return target

    @classmethod
    def load(cls, store: ProvenanceStore, name: str) -> "ProvenanceBaseline":
        path = os.path.join(baselines_dir(store), f"{name}.json")
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except OSError as exc:
            raise StoreError(f"no baseline named {name!r} in {store.path}: {exc}") from exc
        except ValueError as exc:
            raise StoreError(f"baseline {name!r} is not valid JSON: {exc}") from exc
        return cls.from_dict(data)

    @property
    def racy_pair_count(self) -> int:
        return len(self.racy_pairs or ())


def list_baselines(store: ProvenanceStore) -> List[str]:
    """Names of every persisted baseline, sorted."""
    directory = baselines_dir(store)
    if not os.path.isdir(directory):
        return []
    return sorted(
        name[: -len(".json")]
        for name in os.listdir(directory)
        if name.endswith(".json") and not name.endswith(".tmp")
    )


def baseline_runs(store: ProvenanceStore) -> Set[int]:
    """Run ids some persisted baseline blesses (autopilot protects these)."""
    runs: Set[int] = set()
    for name in list_baselines(store):
        try:
            runs.add(ProvenanceBaseline.load(store, name).run_id)
        except StoreError:
            continue  # an unreadable baseline must not break maintenance
    return runs


def bless_baseline(
    store: ProvenanceStore,
    run: Optional[int] = None,
    pages: Optional[Iterable] = None,
    name: Optional[str] = None,
    include_racy: bool = True,
    meta: Optional[dict] = None,
) -> ProvenanceBaseline:
    """Fingerprint one run's provenance into a :class:`ProvenanceBaseline`.

    Args:
        store: The store holding the blessed run.
        run: The run to bless (optional for single-run stores).
        pages: Page sets to fingerprint -- an iterable of pages or page
            iterables.  Defaults to one singleton set per page the run
            touched, which covers the whole run at page granularity.
        name: Baseline name; defaults to ``run-<id>``.
        include_racy: Also record the run's racy pairs (materializes the
            full graph once, like the debugging report does).
        meta: Free-form metadata stored with the baseline.

    The baseline is *not* persisted; call
    :meth:`ProvenanceBaseline.save` for that.
    """
    run_id = store.resolve_run(run)
    if pages is None:
        page_sets = _canonical_page_sets(
            (page,) for page in store.indexes_for(run_id).pages_touched()
        )
    else:
        page_sets = _canonical_page_sets(pages)
    resolved_name = name if name is not None else f"run-{run_id}"
    if not _NAME_RE.match(resolved_name):
        raise StoreError(
            f"baseline name {resolved_name!r} must be alphanumeric with ._- only"
        )
    engine = StoreQueryEngine(store)
    fingerprints: Dict[str, dict] = {}
    for page_set in page_sets:
        lineage = engine.lineage_of_pages(page_set, run=run_id)
        taint = engine.propagate_taint(page_set, run=run_id)
        fingerprints[_pages_key(page_set)] = {
            "lineage": sorted(node_key(node) for node in lineage),
            "taint_pages": sorted(taint.tainted_pages),
            "taint_nodes": sorted(node_key(node) for node in taint.tainted_nodes),
        }
    racy = (
        _canonical_racy_pairs(find_racy_pairs(store.load_cpg(run_id)))
        if include_racy
        else None
    )
    run_info = store.manifest.run_info(run_id)
    return ProvenanceBaseline(
        name=resolved_name,
        run_id=run_id,
        workload=run_info.workload,
        page_sets=page_sets,
        fingerprints=fingerprints,
        racy_pairs=racy,
        created_at=time.strftime("%Y-%m-%dT%H:%M:%S"),
        meta=dict(meta or {}),
    )


def resolve_baseline(
    store: ProvenanceStore, baseline: Union[str, int, ProvenanceBaseline]
) -> ProvenanceBaseline:
    """Turn ``--baseline <run-or-name>`` into a loaded/computed baseline.

    A :class:`ProvenanceBaseline` passes through.  A name loads the
    persisted snapshot.  A run id (or digit string) first looks for a
    persisted baseline blessing that run, then falls back to blessing the
    run ephemerally -- which is what makes ``check --baseline <run>``
    work with no prior ``bless``.
    """
    if isinstance(baseline, ProvenanceBaseline):
        return baseline
    text = str(baseline)
    if not text.isdigit():
        return ProvenanceBaseline.load(store, text)
    run_id = int(text)
    for name in list_baselines(store):
        try:
            loaded = ProvenanceBaseline.load(store, name)
        except StoreError:
            continue
        if loaded.run_id == run_id:
            return loaded
    return bless_baseline(store, run=run_id)


# ---------------------------------------------------------------------- #
# Checking
# ---------------------------------------------------------------------- #


@dataclass
class PageSetDrift:
    """How one page set's provenance moved against the baseline."""

    pages: Tuple[int, ...]
    only_baseline: List[str] = field(default_factory=list)
    only_candidate: List[str] = field(default_factory=list)
    common: int = 0
    taint_pages_added: List[int] = field(default_factory=list)
    taint_pages_removed: List[int] = field(default_factory=list)
    taint_nodes_added: List[str] = field(default_factory=list)
    taint_nodes_removed: List[str] = field(default_factory=list)

    @property
    def drifted(self) -> bool:
        return bool(
            self.only_baseline
            or self.only_candidate
            or self.taint_pages_added
            or self.taint_pages_removed
            or self.taint_nodes_added
            or self.taint_nodes_removed
        )

    def to_dict(self) -> dict:
        return {
            "pages": list(self.pages),
            "drifted": self.drifted,
            "only_baseline": self.only_baseline,
            "only_candidate": self.only_candidate,
            "common": self.common,
            "taint_pages_added": self.taint_pages_added,
            "taint_pages_removed": self.taint_pages_removed,
            "taint_nodes_added": self.taint_nodes_added,
            "taint_nodes_removed": self.taint_nodes_removed,
        }


@dataclass
class GateReport:
    """The explainable verdict of one ``check_against_baseline`` call."""

    baseline_name: str
    baseline_run: int
    candidate_run: int
    entries: List[PageSetDrift] = field(default_factory=list)
    racy_added: List[List] = field(default_factory=list)
    racy_removed: List[List] = field(default_factory=list)
    racy_checked: bool = False

    @property
    def ok(self) -> bool:
        """Whether the candidate's provenance matches the baseline."""
        return not self.drifted_entries and not self.racy_added and not self.racy_removed

    @property
    def drifted_entries(self) -> List[PageSetDrift]:
        return [entry for entry in self.entries if entry.drifted]

    @property
    def drifted_pages(self) -> List[int]:
        """Every page belonging to a drifted page set, sorted."""
        pages: Set[int] = set()
        for entry in self.drifted_entries:
            pages.update(entry.pages)
        return sorted(pages)

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "baseline": self.baseline_name,
            "baseline_run": self.baseline_run,
            "candidate_run": self.candidate_run,
            "page_sets_checked": len(self.entries),
            "drifted_pages": self.drifted_pages,
            "entries": [entry.to_dict() for entry in self.entries if entry.drifted],
            "racy_checked": self.racy_checked,
            "racy_added": self.racy_added,
            "racy_removed": self.racy_removed,
        }

    def explain(self) -> List[str]:
        """Human-readable drift explanation, one line per finding."""
        lines = [
            f"run {self.candidate_run} vs baseline {self.baseline_name!r} "
            f"(run {self.baseline_run}): "
            + ("provenance matches" if self.ok else "provenance DRIFTED")
        ]
        for entry in self.drifted_entries:
            pages = ",".join(str(page) for page in entry.pages)
            lines.append(f"  pages {pages}:")
            if entry.only_baseline:
                lines.append(
                    f"    lineage lost {len(entry.only_baseline)} sub-computation(s): "
                    + ", ".join(entry.only_baseline)
                )
            if entry.only_candidate:
                lines.append(
                    f"    lineage gained {len(entry.only_candidate)} sub-computation(s): "
                    + ", ".join(entry.only_candidate)
                )
            if entry.taint_pages_added or entry.taint_pages_removed:
                lines.append(
                    f"    taint closure now reaches {entry.taint_pages_added} "
                    f"and no longer reaches {entry.taint_pages_removed}"
                )
            if entry.taint_nodes_added or entry.taint_nodes_removed:
                lines.append(
                    f"    tainted sub-computations: +{len(entry.taint_nodes_added)} "
                    f"-{len(entry.taint_nodes_removed)}"
                )
        for pair in self.racy_added:
            lines.append(
                f"  NEW racy pair {pair[0]} <-> {pair[1]} on pages {pair[2]}"
            )
        for pair in self.racy_removed:
            lines.append(
                f"  racy pair gone: {pair[0]} <-> {pair[1]} on pages {pair[2]}"
            )
        return lines


def check_against_baseline(
    store: ProvenanceStore,
    baseline: Union[str, int, ProvenanceBaseline],
    run: Optional[int] = None,
    include_racy: Optional[bool] = None,
) -> GateReport:
    """Gate a candidate run's provenance against a blessed baseline.

    Args:
        store: The store holding the candidate run.
        baseline: A :class:`ProvenanceBaseline`, a persisted baseline
            name, or a blessed run id (see :func:`resolve_baseline`).
        run: Candidate run (default: the store's most recent run).
        include_racy: Compare racy pairs too.  ``None`` (the default)
            compares them exactly when the baseline recorded them.

    Returns a :class:`GateReport`; drift is any page set whose lineage
    or taint closure moved, or any racy pair appearing/disappearing.
    """
    resolved = resolve_baseline(store, baseline)
    run_ids = store.run_ids()
    candidate = store.resolve_run(run if run is not None else (run_ids[-1] if run_ids else None))
    engine = StoreQueryEngine(store)
    report = GateReport(
        baseline_name=resolved.name,
        baseline_run=resolved.run_id,
        candidate_run=candidate,
    )
    for page_set in resolved.page_sets:
        recorded = resolved.fingerprints.get(_pages_key(page_set))
        if recorded is None:
            raise StoreError(
                f"baseline {resolved.name!r} has no fingerprint for pages "
                f"{_pages_key(page_set)}"
            )
        blessed_lineage = {parse_node_key(key) for key in recorded["lineage"]}
        candidate_lineage = engine.lineage_of_pages(page_set, run=candidate)
        diff = diff_lineage(
            resolved.run_id, candidate, page_set, blessed_lineage, candidate_lineage
        )
        taint = engine.propagate_taint(page_set, run=candidate)
        blessed_taint_pages = set(recorded["taint_pages"])
        blessed_taint_nodes = set(recorded["taint_nodes"])
        candidate_taint_nodes = {node_key(node) for node in taint.tainted_nodes}
        report.entries.append(
            PageSetDrift(
                pages=page_set,
                only_baseline=sorted(node_key(node) for node in diff.only_a),
                only_candidate=sorted(node_key(node) for node in diff.only_b),
                common=len(diff.common),
                taint_pages_added=sorted(taint.tainted_pages - blessed_taint_pages),
                taint_pages_removed=sorted(blessed_taint_pages - taint.tainted_pages),
                taint_nodes_added=sorted(candidate_taint_nodes - blessed_taint_nodes),
                taint_nodes_removed=sorted(blessed_taint_nodes - candidate_taint_nodes),
            )
        )
    compare_racy = (
        resolved.racy_pairs is not None if include_racy is None else include_racy
    )
    if compare_racy:
        if resolved.racy_pairs is None:
            raise StoreError(
                f"baseline {resolved.name!r} recorded no racy pairs; "
                f"re-bless it without --no-racy to gate on races"
            )
        candidate_racy = _canonical_racy_pairs(find_racy_pairs(store.load_cpg(candidate)))
        blessed = {tuple(pair[:2]) + (tuple(pair[2]),) for pair in resolved.racy_pairs}
        observed = {tuple(pair[:2]) + (tuple(pair[2]),) for pair in candidate_racy}
        report.racy_checked = True
        report.racy_added = [
            [a, b, list(pages)] for a, b, pages in sorted(observed - blessed)
        ]
        report.racy_removed = [
            [a, b, list(pages)] for a, b, pages in sorted(blessed - observed)
        ]
    return report

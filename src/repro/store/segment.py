"""Segment framing: how an encoded payload becomes a segment file.

A segment is the unit of disk I/O of the store: a batch of sub-computations
plus the edges co-located with them (an edge lives in the segment of its
*target* node whenever possible, so a backward expansion of a node finds
its incoming edges in the segment it just loaded).  The bytes inside the
frame are produced by a pluggable :class:`~repro.store.codecs.SegmentCodec`
(store format 4); the frame itself is common to every codec::

    +--------+------------+----------------------+------------------+
    | "ISEG" | frame byte | raw length (8B LE)   | codec payload    |
    +--------+------------+----------------------+------------------+

The frame byte identifies the codec (``0x02`` = lz-compressed JSON, the
v2/v3 encoding; ``0x03`` = columnar binary, the v4 default; ``0x04`` =
zlib-compressed columnar binary, the v6 default), so a mixed store
decodes every segment correctly even before consulting the manifest's
per-segment codec column.  ``raw length`` is the size of the
*uncompressed* payload and feeds the manifest's compression accounting;
whether (and how) the body is compressed is the codec's business, via
:meth:`~repro.store.codecs.SegmentCodec.compress_frame` /
:meth:`~repro.store.codecs.SegmentCodec.decompress_frame`.

Frames written since the integrity layer set the high bit of the frame
byte (:data:`~repro.store.codecs.CRC_FRAME_FLAG`) and insert a CRC32 of
the codec body between the raw-length field and the body::

    +--------+-----------------+--------------+-------------+-----------+
    | "ISEG" | frame byte|0x80 | raw len (8B) | CRC32 (4B)  | body      |
    +--------+-----------------+--------------+-------------+-----------+

:func:`decode_segment` verifies the checksum before touching the body, so
a bit flip anywhere in the payload surfaces as a typed error instead of a
garbled graph.  Older frames (no flag) stay readable and are reported as
``unverified`` by :func:`verify_frame` -- the fsck/scrub vocabulary.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.thunk import NodeId, SubComputation
from repro.errors import StoreError

from repro.store.codecs import (
    CRC_FRAME_FLAG,
    DEFAULT_CODEC,
    EdgeTuple,
    SegmentCodec,
    codec_by_frame_byte,
    codec_by_name,
)
from repro.store.format import SEGMENT_MAGIC_PREFIX

_HEADER_SIZE = len(SEGMENT_MAGIC_PREFIX) + 1 + 8
_CRC_SIZE = 4

#: Checksum states :func:`verify_frame` can report.
FRAME_VERIFIED = "verified"
FRAME_UNVERIFIED = "unverified"


@dataclass
class SegmentPayload:
    """One decoded segment, indexed for adjacency scans.

    Attributes:
        nodes: Sub-computations stored in the segment, by node id.
        edges: Every edge stored in the segment.
        edges_by_target: Edges grouped by target node id.
        edges_by_source: Edges grouped by source node id.
    """

    nodes: Dict[NodeId, SubComputation] = field(default_factory=dict)
    edges: List[EdgeTuple] = field(default_factory=list)
    edges_by_target: Dict[NodeId, List[EdgeTuple]] = field(default_factory=dict)
    edges_by_source: Dict[NodeId, List[EdgeTuple]] = field(default_factory=dict)

    @classmethod
    def build(cls, nodes: Iterable[SubComputation], edges: Iterable[EdgeTuple]) -> "SegmentPayload":
        payload = cls(nodes={node.node_id: node for node in nodes}, edges=list(edges))
        for edge in payload.edges:
            payload.edges_by_source.setdefault(edge[0], []).append(edge)
            payload.edges_by_target.setdefault(edge[1], []).append(edge)
        return payload


def encode_segment(
    nodes: Iterable[SubComputation],
    edges: Iterable[EdgeTuple],
    codec: Optional[str] = None,
) -> Tuple[bytes, int]:
    """Serialize one segment with ``codec`` (default: the v4 binary codec).

    Returns:
        ``(framed bytes, raw payload size)`` -- the raw size feeds the
        manifest's compression accounting.
    """
    chosen: SegmentCodec = codec_by_name(codec if codec is not None else DEFAULT_CODEC)
    raw = chosen.encode_payload(list(nodes), list(edges))
    body = chosen.compress_frame(raw)
    framed = (
        SEGMENT_MAGIC_PREFIX
        + bytes((chosen.frame_byte | CRC_FRAME_FLAG,))
        + len(raw).to_bytes(8, "little")
        + (zlib.crc32(body) & 0xFFFFFFFF).to_bytes(4, "little")
        + body
    )
    return framed, len(raw)


def segment_codec_name(data: bytes) -> str:
    """Name of the codec that encoded the framed segment ``data``."""
    if len(data) < _HEADER_SIZE or not data.startswith(SEGMENT_MAGIC_PREFIX):
        raise StoreError("not a provenance-store segment (bad magic)")
    return codec_by_frame_byte(data[len(SEGMENT_MAGIC_PREFIX)]).name


def _split_frame(data: bytes):
    """(codec, raw length, stored crc or None, codec body) of a frame."""
    if len(data) < _HEADER_SIZE or not data.startswith(SEGMENT_MAGIC_PREFIX):
        raise StoreError("not a provenance-store segment (bad magic)")
    frame_byte = data[len(SEGMENT_MAGIC_PREFIX)]
    chosen = codec_by_frame_byte(frame_byte)
    raw_length = int.from_bytes(data[len(SEGMENT_MAGIC_PREFIX) + 1 : _HEADER_SIZE], "little")
    if not frame_byte & CRC_FRAME_FLAG:
        return chosen, raw_length, None, data[_HEADER_SIZE:]
    if len(data) < _HEADER_SIZE + _CRC_SIZE:
        raise StoreError("segment frame truncated inside its checksum field")
    stored_crc = int.from_bytes(data[_HEADER_SIZE : _HEADER_SIZE + _CRC_SIZE], "little")
    return chosen, raw_length, stored_crc, data[_HEADER_SIZE + _CRC_SIZE :]


def verify_frame(data: bytes) -> str:
    """Check the frame checksum of ``data`` without decoding the payload.

    Returns:
        :data:`FRAME_VERIFIED` when the frame carries a CRC32 and it
        matches, :data:`FRAME_UNVERIFIED` for a pre-integrity frame that
        carries none (still decodable, just unprotected).

    Raises:
        StoreError: Bad magic, unknown frame byte, or a checksum mismatch.
    """
    _, _, stored_crc, body = _split_frame(data)
    if stored_crc is None:
        return FRAME_UNVERIFIED
    actual = zlib.crc32(body) & 0xFFFFFFFF
    if actual != stored_crc:
        raise StoreError(
            f"segment frame checksum mismatch: stored 0x{stored_crc:08x}, "
            f"computed 0x{actual:08x}"
        )
    return FRAME_VERIFIED


def decode_segment(data: bytes) -> SegmentPayload:
    """Invert :func:`encode_segment` (any codec; dispatch on the frame byte).

    Frames carrying a CRC32 (the :data:`~repro.store.codecs.CRC_FRAME_FLAG`
    bit) are verified before the body is decompressed; legacy frames
    decode unverified, exactly as they always did.

    Raises:
        StoreError: If the framing, checksum, compression, or payload is
            corrupt.
    """
    chosen, raw_length, stored_crc, body = _split_frame(data)
    if stored_crc is not None:
        actual = zlib.crc32(body) & 0xFFFFFFFF
        if actual != stored_crc:
            raise StoreError(
                f"segment frame checksum mismatch: stored 0x{stored_crc:08x}, "
                f"computed 0x{actual:08x}"
            )
    raw = chosen.decompress_frame(body)
    if len(raw) != raw_length:
        raise StoreError(
            f"segment length mismatch: header says {raw_length} bytes, got {len(raw)}"
        )
    nodes, edges = chosen.decode_payload(raw)
    return SegmentPayload.build(nodes, edges)

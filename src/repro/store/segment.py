"""Segment encoding and decoding.

A segment is the unit of disk I/O of the store: a batch of sub-computations
plus the edges co-located with them (an edge lives in the segment of its
*target* node whenever possible, so a backward expansion of a node finds
its incoming edges in the segment it just loaded).  The payload is the v2
CPG serialization compressed with :mod:`repro.compression.lz` behind a
small framed header::

    +---------+----------------------+---------------------+
    | "ISEG"2 | raw length (8B LE)   | lz-compressed JSON  |
    +---------+----------------------+---------------------+
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from repro.compression.lz import compress, decompress
from repro.core.cpg import EdgeKind
from repro.core.serialization import (
    FORMAT_VERSION_V2,
    edge_from_dict,
    edge_to_dict,
    subcomputation_from_dict,
    subcomputation_to_dict,
)
from repro.core.thunk import NodeId, SubComputation
from repro.errors import StoreError

from repro.store.format import SEGMENT_MAGIC

#: An edge as the store passes it around: ``(source, target, kind, attrs)``.
EdgeTuple = Tuple[NodeId, NodeId, EdgeKind, dict]

_HEADER_SIZE = len(SEGMENT_MAGIC) + 8


@dataclass
class SegmentPayload:
    """One decoded segment, indexed for adjacency scans.

    Attributes:
        nodes: Sub-computations stored in the segment, by node id.
        edges: Every edge stored in the segment.
        edges_by_target: Edges grouped by target node id.
        edges_by_source: Edges grouped by source node id.
    """

    nodes: Dict[NodeId, SubComputation] = field(default_factory=dict)
    edges: List[EdgeTuple] = field(default_factory=list)
    edges_by_target: Dict[NodeId, List[EdgeTuple]] = field(default_factory=dict)
    edges_by_source: Dict[NodeId, List[EdgeTuple]] = field(default_factory=dict)

    @classmethod
    def build(cls, nodes: Iterable[SubComputation], edges: Iterable[EdgeTuple]) -> "SegmentPayload":
        payload = cls(nodes={node.node_id: node for node in nodes}, edges=list(edges))
        for edge in payload.edges:
            payload.edges_by_source.setdefault(edge[0], []).append(edge)
            payload.edges_by_target.setdefault(edge[1], []).append(edge)
        return payload


def encode_segment(
    nodes: Iterable[SubComputation], edges: Iterable[EdgeTuple]
) -> Tuple[bytes, int]:
    """Serialize one segment.

    Returns:
        ``(framed bytes, raw payload size)`` -- the raw size feeds the
        manifest's compression accounting.
    """
    document = {
        "format_version": FORMAT_VERSION_V2,
        "kind": "cpg-segment",
        "nodes": [subcomputation_to_dict(node) for node in nodes],
        "edges": [
            edge_to_dict(source, target, {"kind": kind, **attrs}, version=FORMAT_VERSION_V2)
            for source, target, kind, attrs in edges
        ],
    }
    raw = json.dumps(document, sort_keys=True).encode("utf-8")
    framed = SEGMENT_MAGIC + len(raw).to_bytes(8, "little") + compress(raw)
    return framed, len(raw)


def decode_segment(data: bytes) -> SegmentPayload:
    """Invert :func:`encode_segment`.

    Raises:
        StoreError: If the framing, compression, or payload is corrupt.
    """
    if len(data) < _HEADER_SIZE or not data.startswith(SEGMENT_MAGIC):
        raise StoreError("not a provenance-store segment (bad magic)")
    raw_length = int.from_bytes(data[len(SEGMENT_MAGIC) : _HEADER_SIZE], "little")
    try:
        raw = decompress(data[_HEADER_SIZE:])
    except ValueError as exc:
        raise StoreError(f"corrupt segment payload: {exc}") from exc
    if len(raw) != raw_length:
        raise StoreError(
            f"segment length mismatch: header says {raw_length} bytes, got {len(raw)}"
        )
    try:
        document = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise StoreError(f"segment payload is not valid JSON: {exc}") from exc
    if document.get("format_version") != FORMAT_VERSION_V2:
        raise StoreError(
            f"unsupported segment format version {document.get('format_version')!r}"
        )
    nodes = [subcomputation_from_dict(entry) for entry in document.get("nodes", ())]
    edges = [edge_from_dict(entry) for entry in document.get("edges", ())]
    return SegmentPayload.build(nodes, edges)

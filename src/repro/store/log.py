"""The append-only segment log (store format 5).

Up to format 4 every flush rewrote ``MANIFEST.json`` wholesale -- the one
write-path cost that still grew with segment count.  Format 5 replaces the
per-flush rewrite with one framed record appended to ``segments.log``;
the manifest is demoted to a periodic *checkpoint* and opening the store
replays the committed log tail on top of it.

**Record framing.**  Each record is::

    +--------+----------------+---------------+------------------+
    | "ILOG" | length (4B LE) | crc32 (4B LE) | JSON payload     |
    +--------+----------------+---------------+------------------+

The payload is one UTF-8 JSON object carrying a monotonically increasing
``seq`` plus the flush's manifest delta (the segment entries sealed since
the last durable point, the full -- small -- run table, and the store
counters).  The CRC and length make a torn tail *detectable*: replay
stops at the first frame that is short, mis-tagged, corrupt, or fails to
parse, and the next append truncates the file back to the last valid
offset before writing.  That is the whole crash-recovery story of an
append: either the record is complete (the flush committed) or it is a
tear (the flush never happened; the segment files it would have named are
orphans, swept by the next maintenance operation).

**Checkpointing.**  A checkpoint folds every applied record into a fresh
manifest (recording its ``log_seq``) and then resets the log.  The
manifest rename is the commit point; a crash between it and the reset is
harmless because replay skips records whose ``seq`` the checkpoint
already covers.  Sequence numbers are minted from a monotonic counter and
never reused -- the same recovery argument as segment ids.
"""

from __future__ import annotations

import json
import os
import zlib
from typing import Iterator, List, Optional

from repro.errors import StoreError

#: Frame magic of one segment-log record.
LOG_RECORD_MAGIC = b"ILOG"

_LENGTH_BYTES = 4
_CRC_BYTES = 4
_HEADER_SIZE = len(LOG_RECORD_MAGIC) + _LENGTH_BYTES + _CRC_BYTES

#: Refuse to trust absurd frame lengths (a corrupt header would otherwise
#: make replay try to skip gigabytes); no sane flush record approaches it.
_MAX_RECORD_BYTES = 256 * 1024 * 1024


def encode_log_record(payload: dict) -> bytes:
    """Frame one record payload (JSON object) for appending."""
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    return (
        LOG_RECORD_MAGIC
        + len(body).to_bytes(_LENGTH_BYTES, "little")
        + (zlib.crc32(body) & 0xFFFFFFFF).to_bytes(_CRC_BYTES, "little")
        + body
    )


class SegmentLog:
    """One store's ``segments.log``: framed, append-only commit records.

    The class is deliberately dumb about *content* -- it frames, appends,
    scans, and truncates; what a record means is the store's business
    (:meth:`ProvenanceStore.flush` writes them,
    ``ProvenanceStore.open`` replays them).

    Attributes:
        path: Absolute path of the log file (may not exist yet).
    """

    def __init__(self, path: str) -> None:
        self.path = path
        #: Byte offset of the end of the last valid record, established by
        #: :meth:`replay`; ``None`` until the file has been scanned.
        self._valid_bytes: Optional[int] = None
        #: Records seen by the last :meth:`replay` plus appends since.
        self._records = 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def exists(self) -> bool:
        return os.path.exists(self.path)

    @property
    def record_count(self) -> int:
        """Valid records currently in the file (scan + appends since)."""
        if self._valid_bytes is None:
            self.scan()
        return self._records

    @property
    def valid_bytes(self) -> int:
        """Bytes of the file covered by valid records (the commit horizon)."""
        if self._valid_bytes is None:
            self.scan()
        return self._valid_bytes or 0

    def size_bytes(self) -> int:
        """Raw on-disk size (including any torn tail)."""
        try:
            return os.path.getsize(self.path)
        except OSError:
            return 0

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #

    def scan(self) -> List[dict]:
        """Parse every valid record, stopping at the first torn frame.

        A missing file is an empty log.  Establishes the valid-byte
        horizon the next :meth:`append` truncates to, so a torn tail can
        never be followed by live records.
        """
        records: List[dict] = []
        try:
            with open(self.path, "rb") as handle:
                data = handle.read()
        except OSError:
            self._valid_bytes = 0
            self._records = 0
            return records
        offset = 0
        while True:
            record, end = self._parse_one(data, offset)
            if record is None:
                break
            records.append(record)
            offset = end
        self._valid_bytes = offset
        self._records = len(records)
        return records

    @staticmethod
    def _parse_one(data: bytes, offset: int) -> "tuple[Optional[dict], int]":
        """Parse the record at ``offset``; ``(None, offset)`` on a tear."""
        header_end = offset + _HEADER_SIZE
        if header_end > len(data):
            return None, offset
        if data[offset : offset + len(LOG_RECORD_MAGIC)] != LOG_RECORD_MAGIC:
            return None, offset
        length = int.from_bytes(
            data[offset + len(LOG_RECORD_MAGIC) : offset + len(LOG_RECORD_MAGIC) + _LENGTH_BYTES],
            "little",
        )
        if length > _MAX_RECORD_BYTES:
            return None, offset
        crc = int.from_bytes(data[header_end - _CRC_BYTES : header_end], "little")
        body_end = header_end + length
        if body_end > len(data):
            return None, offset
        body = data[header_end:body_end]
        if (zlib.crc32(body) & 0xFFFFFFFF) != crc:
            return None, offset
        try:
            record = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            return None, offset
        if not isinstance(record, dict):
            return None, offset
        return record, body_end

    def replay(self) -> Iterator[dict]:
        """Yield every valid record in append order (a fresh scan)."""
        return iter(self.scan())

    def verify(self) -> dict:
        """Re-scan the file and report its framing integrity (fsck's view).

        Returns ``{"records", "valid_bytes", "torn_bytes"}``.
        ``torn_bytes`` counts file bytes past the last valid record: a
        tail torn by a crashed append (or trailing corruption).  Replay
        already ignores those bytes and the next append truncates them,
        so a torn tail is a warning, not damage.
        """
        records = len(self.scan())
        valid = self._valid_bytes or 0
        return {
            "records": records,
            "valid_bytes": valid,
            "torn_bytes": max(0, self.size_bytes() - valid),
        }

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #

    def append(self, payload: dict) -> int:
        """Append one framed record; returns its end offset.

        The first append after opening (or after a crash) truncates any
        torn tail back to the last valid record, so the new record lands
        on the commit horizon.  The frame is written with a single
        ``write`` call and fsynced before returning -- the record is
        either wholly in the file or wholly absent, and it survives a
        power loss once this method returns (the durability barrier the
        remote-ingest reply is documented to be).
        """
        if self._valid_bytes is None:
            self.scan()
        frame = encode_log_record(payload)
        valid = self._valid_bytes or 0
        size = self.size_bytes()
        if size > valid:
            # A torn tail (or stale garbage) past the commit horizon: cut
            # it before appending over it.
            os.truncate(self.path, valid)
        elif size < valid:
            raise StoreError(
                f"segment log {self.path} shrank below its commit horizon "
                f"({size} < {valid} bytes); refusing to append"
            )
        with open(self.path, "ab") as handle:
            handle.write(frame)
            handle.flush()
            os.fsync(handle.fileno())
        self._valid_bytes = valid + len(frame)
        self._records += 1
        return self._valid_bytes

    def reset(self) -> None:
        """Truncate the log to empty (after a checkpoint committed).

        Written as a fresh empty file through an atomic rename; a crash
        before it leaves stale records behind, which replay skips by
        sequence number -- the reset only reclaims space.
        """
        scratch = self.path + ".tmp"
        with open(scratch, "wb"):
            pass
        os.replace(scratch, self.path)
        self._valid_bytes = 0
        self._records = 0

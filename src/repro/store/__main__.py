"""Command-line surface of the persistent provenance store.

Usage::

    python -m repro.store ingest <store> <cpg.json> [--segment-nodes N] \\
        [--workload NAME] [--codec binary-z|binary|json] [--compress-level 1-9]
    python -m repro.store info <store> [--stats] [--json]
    python -m repro.store runs <store> [--json]
    python -m repro.store slice <store> (--node TID:IDX | --pages 1,2) \\
        [--run R] [--forward] [--kinds data,control,sync] [--parallelism N] [--json]
    python -m repro.store lineage <store> --pages 1,2 [--run R] \\
        [--parallelism N] [--json]
    python -m repro.store taint <store> --pages 1,2 \\
        [--run R] [--through-thread-state] [--parallelism N] [--json]
    python -m repro.store compact <store> [--run R] [--segment-nodes N] \\
        [--codec binary-z|binary|json] [--compress-level 1-9] [--json]
    python -m repro.store gc <store> (--keep-last N | --runs 1,2) [--json]
    python -m repro.store bless <store> [--run R] [--pages 1,2]... \\
        [--name NAME] [--no-racy] [--json]
    python -m repro.store check <store> --baseline <run-or-name> \\
        [--run R] [--no-racy] [--json]
    python -m repro.store autopilot <store> [--once] [--dry-run] \\
        [--interval S] [--keep-last N] [--max-store-bytes N] \\
        [--scrub-interval S] [--protect-runs 1,2] [--log FILE] [--json]
    python -m repro.store fsck <store> [--repair] [--json]
    python -m repro.store scrub <store> [--throttle-mb N] \\
        [--no-quarantine] [--json]
    python -m repro.store serve <store> [--host H] [--port P] \\
        [--cache-bytes N] [--parallelism N] [--writable] \\
        [--maintenance [policy.json]] [--maintenance-interval S]
    python -m repro.store watch <host:port> --pages 1,2 [--run R] \\
        [--interval S] [--timeout S] [--json]
    python -m repro.store cluster serve <cluster.json> [--cache-bytes N] \\
        [--parallelism N] [--writable]
    python -m repro.store cluster status <cluster.json> [--json]
    python -m repro.store cluster query <cluster.json> --pages 1,2 \\
        [--run R | --across-runs | --compare A B] [--taint] \\
        [--partial] [--parallelism N] [--json]
    python -m repro.store cluster repair <cluster.json> [--shard ID] [--json]

``slice --node`` answers "what does this sub-computation depend on" (or,
with ``--forward``, "what did it influence"); ``lineage --pages`` (and its
older spelling ``slice --pages``) answers the debugging case study's "why
is this page in that state" as the lineage of the pages.  A store holds
many runs: ``runs`` lists them, ``--run`` scopes a query to one (optional
while the store holds exactly one run), ``compact`` merges a run's small
segments (transcoding them to ``--codec``, by default the store's
compressed columnar default), and ``gc`` drops superseded runs and
reclaims their disk space.  ``fsck`` is the structural integrity check
(manifest/log/files agreement plus orphan detection; ``--repair`` removes
the orphans) and ``scrub`` re-reads and re-checksums every store file,
quarantining damaged segments (:mod:`repro.store.integrity`); both print
machine-readable reports with ``--json`` and exit non-zero on damage.
``bless`` snapshots a run's lineage/taint/racy-pair fingerprints as a
named baseline under ``index/baselines/`` and ``check`` gates a later
run against it, exiting non-zero with a page-level diff on provenance
drift (:mod:`repro.store.gate`) -- the CI shape.  ``autopilot`` runs the
declarative maintenance daemon (:mod:`repro.store.autopilot`): it plans
and executes ``compact``/``gc``/``scrub`` from size, age, fragmentation,
and quarantine thresholds, ``--once``/``--dry-run`` for auditing; the
same policy rides along inside a server via ``serve --maintenance``.  ``--compress-level`` tunes the zlib level of
the ``binary-z`` codec; ``info`` breaks the stored-vs-raw bytes down per
codec.  Every query prints how many segments it read out of how many the
store holds, making the out-of-core behaviour visible; ``--parallelism``
fans multi-segment scans out over the store's shared decode pools.
``serve`` keeps one warm
decoded-segment cache + pinned indexes resident and answers the same
queries over newline-delimited JSON on TCP
(:mod:`repro.store.server`); with ``--writable`` it additionally accepts
remote ingest (``begin_run``/``append_epoch``/``commit_run`` -- what
:class:`~repro.store.sink.RemoteStoreSink` speaks).  ``watch`` tails a
page set's lineage against a running server, printing an update whenever
the watched run grows.  The ``cluster`` family operates on a sharded
deployment described by a ``cluster.json`` manifest
(:mod:`repro.store.shard`): ``cluster serve`` hosts every shard (and
replica) that has a local store path, ``cluster status`` probes shard
liveness and run placement, and ``cluster query`` scatter-gathers
lineage/taint/compare queries through a
:class:`~repro.store.cluster.StoreCluster` router (``--partial`` opts
into degraded reads that skip dead shards and report them).  ``cluster
repair`` runs anti-entropy: each shard's local replicas are diffed
against the primary's per-file checksum table and exactly the missing or
damaged files are streamed over and installed atomically.  ``info --stats`` reports the read-path cache
configuration, and plain ``info`` includes the v5 segment-log state (log
records and bytes, last checkpoint sequence, uncheckpointed records).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List, Optional, Sequence

from repro.core.cpg import EdgeKind
from repro.core.serialization import node_key, parse_node_key
from repro.errors import InspectorError

from repro.store.autopilot import Autopilot, AutopilotDaemon, AutopilotPolicy
from repro.store.cache import DEFAULT_CACHE_BYTES
from repro.store.cluster import ClusterService, StoreCluster
from repro.store.codecs import CODECS, DEFAULT_CODEC
from repro.store.gate import bless_baseline, check_against_baseline
from repro.store.integrity import scrub, verify_store
from repro.store.query import StoreQueryEngine
from repro.store.server import StoreClient, StoreServer
from repro.store.store import DEFAULT_CACHE_SEGMENTS, ProvenanceStore


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"not an integer: {text!r}") from exc
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _add_parallelism(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--parallelism",
        type=_positive_int,
        default=1,
        help="worker threads for multi-segment scans (default: 1, sequential)",
    )


def _compress_level(text: str) -> int:
    try:
        value = int(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}") from exc
    if not 1 <= value <= 9:
        raise argparse.ArgumentTypeError(f"compress level must be 1-9, got {value}")
    return value


def _add_compress_level(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--compress-level",
        type=_compress_level,
        default=None,
        help="zlib level for the binary-z codec (1-9; default: 6)",
    )


def _apply_compress_level(level: Optional[int]) -> None:
    """Point the compressing codec at ``level`` for this process."""
    if level is None:
        return
    codec = CODECS["binary-z"]
    codec.compress_level = level


def _parse_pages(text: str) -> List[int]:
    try:
        return [int(piece) for piece in text.split(",") if piece.strip() != ""]
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"malformed page list {text!r}: {exc}") from exc


def _parse_runs(text: str) -> List[int]:
    try:
        return [int(piece) for piece in text.split(",") if piece.strip() != ""]
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"malformed run list {text!r}: {exc}") from exc


def _parse_kinds(text: str) -> List[EdgeKind]:
    kinds = []
    for piece in text.split(","):
        piece = piece.strip()
        if not piece:
            continue
        try:
            kinds.append(EdgeKind(piece))
        except ValueError as exc:
            known = ", ".join(sorted(member.value for member in EdgeKind))
            raise argparse.ArgumentTypeError(
                f"unknown edge kind {piece!r} (known kinds: {known})"
            ) from exc
    if not kinds:
        raise argparse.ArgumentTypeError("at least one edge kind is required")
    return kinds


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro.store`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.store",
        description="Query and maintain persistent provenance stores.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    ingest = commands.add_parser("ingest", help="ingest a CPG JSON file (v1 or v2) as a new run")
    ingest.add_argument("store", help="store directory (created when missing)")
    ingest.add_argument("cpg", help="CPG JSON file written with write_cpg()")
    ingest.add_argument(
        "--segment-nodes", type=int, default=None, help="sub-computations per segment"
    )
    ingest.add_argument("--workload", default="", help="workload name recorded for the run")
    ingest.add_argument(
        "--codec",
        choices=sorted(CODECS),
        default=None,
        help=f"segment payload codec (default: {DEFAULT_CODEC})",
    )
    _add_compress_level(ingest)

    info = commands.add_parser("info", help="print the store summary")
    info.add_argument("store", help="store directory")
    info.add_argument(
        "--stats",
        action="store_true",
        help="also report read-path cache configuration and counters",
    )
    info.add_argument("--json", action="store_true", help="machine-readable output")

    runs = commands.add_parser("runs", help="list the store's runs")
    runs.add_argument("store", help="store directory")
    runs.add_argument("--json", action="store_true", help="machine-readable output")

    slice_cmd = commands.add_parser("slice", help="backward/forward slice or page lineage")
    slice_cmd.add_argument("store", help="store directory")
    slice_cmd.add_argument("--node", help="slice origin as TID:INDEX")
    slice_cmd.add_argument("--pages", type=_parse_pages, help="lineage of these pages (comma-separated)")
    slice_cmd.add_argument(
        "--run", type=int, default=None, help="run to query (optional for single-run stores)"
    )
    slice_cmd.add_argument("--forward", action="store_true", help="forward slice instead of backward")
    slice_cmd.add_argument(
        "--kinds",
        type=_parse_kinds,
        default=[EdgeKind.DATA],
        help="edge kinds to follow (default: data)",
    )
    _add_parallelism(slice_cmd)
    slice_cmd.add_argument("--json", action="store_true", help="machine-readable output")

    lineage = commands.add_parser("lineage", help="lineage of pages (alias of slice --pages)")
    lineage.add_argument("store", help="store directory")
    lineage.add_argument(
        "--pages", type=_parse_pages, required=True, help="comma-separated page list"
    )
    lineage.add_argument(
        "--run", type=int, default=None, help="run to query (optional for single-run stores)"
    )
    _add_parallelism(lineage)
    lineage.add_argument("--json", action="store_true", help="machine-readable output")

    taint = commands.add_parser("taint", help="propagate page-granularity taint")
    taint.add_argument("store", help="store directory")
    taint.add_argument("--pages", type=_parse_pages, required=True, help="source pages")
    taint.add_argument(
        "--run", type=int, default=None, help="run to query (optional for single-run stores)"
    )
    taint.add_argument(
        "--through-thread-state",
        action="store_true",
        help="conservative mode: a tainted thread stays tainted",
    )
    _add_parallelism(taint)
    taint.add_argument("--json", action="store_true", help="machine-readable output")

    compact = commands.add_parser("compact", help="merge a run's small segments")
    compact.add_argument("store", help="store directory")
    compact.add_argument(
        "--run", type=int, default=None, help="run to compact (default: every run)"
    )
    compact.add_argument(
        "--segment-nodes", type=int, default=None, help="sub-computations per rewritten segment"
    )
    compact.add_argument(
        "--codec",
        choices=sorted(CODECS),
        default=None,
        help=f"transcode rewritten segments to this codec (default: {DEFAULT_CODEC})",
    )
    _add_compress_level(compact)
    compact.add_argument("--json", action="store_true", help="machine-readable output")

    gc = commands.add_parser("gc", help="drop superseded runs and reclaim disk space")
    gc.add_argument("store", help="store directory")
    gc.add_argument("--keep-last", type=int, default=None, help="keep the N most recent runs")
    gc.add_argument("--runs", type=_parse_runs, default=None, help="drop exactly these run ids")
    gc.add_argument("--json", action="store_true", help="machine-readable output")

    bless = commands.add_parser(
        "bless", help="snapshot a run's provenance fingerprints as a named baseline"
    )
    bless.add_argument("store", help="store directory")
    bless.add_argument(
        "--run", type=int, default=None, help="run to bless (optional for single-run stores)"
    )
    bless.add_argument(
        "--pages",
        type=_parse_pages,
        action="append",
        default=None,
        metavar="1,2",
        help="fingerprint this page set (repeatable; default: every touched page)",
    )
    bless.add_argument("--name", default=None, help="baseline name (default: run-<id>)")
    bless.add_argument(
        "--no-racy", action="store_true", help="skip recording the run's racy pairs"
    )
    bless.add_argument("--json", action="store_true", help="machine-readable output")

    check = commands.add_parser(
        "check", help="gate a run against a blessed baseline (exits non-zero on drift)"
    )
    check.add_argument("store", help="store directory")
    check.add_argument(
        "--baseline",
        required=True,
        help="baseline name, or a blessed run id (persisted or computed on the fly)",
    )
    check.add_argument(
        "--run", type=int, default=None, help="candidate run (default: the most recent)"
    )
    check.add_argument(
        "--no-racy", action="store_true", help="skip the racy-pair comparison"
    )
    check.add_argument("--json", action="store_true", help="machine-readable output")

    autopilot = commands.add_parser(
        "autopilot", help="policy-driven maintenance daemon (compact/gc/scrub)"
    )
    autopilot.add_argument("store", help="store directory")
    autopilot.add_argument(
        "--once", action="store_true", help="run one maintenance cycle and exit"
    )
    autopilot.add_argument(
        "--dry-run", action="store_true", help="plan and report, execute nothing"
    )
    autopilot.add_argument(
        "--interval", type=float, default=5.0, help="seconds between cycles (default: 5)"
    )
    autopilot.add_argument(
        "--keep-last", type=int, default=None, help="gc down to the N most recent live runs"
    )
    autopilot.add_argument(
        "--max-store-bytes",
        type=int,
        default=None,
        help="gc oldest runs while segments exceed this byte budget",
    )
    autopilot.add_argument(
        "--scrub-interval",
        type=float,
        default=None,
        help="scrub at least this often in seconds (quarantine always triggers one)",
    )
    autopilot.add_argument(
        "--compact-min-delta-files",
        type=int,
        default=None,
        help="compact a run once this many index delta files pend",
    )
    autopilot.add_argument(
        "--protect-runs",
        type=_parse_runs,
        default=None,
        help="never gc these run ids (baseline-blessed runs are protected by default)",
    )
    autopilot.add_argument(
        "--log", default=None, help="append structured decisions to this JSONL file"
    )
    autopilot.add_argument("--json", action="store_true", help="machine-readable output")

    fsck = commands.add_parser(
        "fsck", help="structural integrity check (manifest/log/files agreement, orphans)"
    )
    fsck.add_argument("store", help="store directory")
    fsck.add_argument(
        "--repair",
        action="store_true",
        help="remove orphan files left behind by a crashed compact/gc",
    )
    fsck.add_argument("--json", action="store_true", help="machine-readable output")

    scrub_cmd = commands.add_parser(
        "scrub", help="re-read and re-checksum every store file; quarantine damage"
    )
    scrub_cmd.add_argument("store", help="store directory")
    scrub_cmd.add_argument(
        "--throttle-mb",
        type=float,
        default=None,
        help="cap scrub read bandwidth at this many MB/s (default: unthrottled)",
    )
    scrub_cmd.add_argument(
        "--no-quarantine",
        action="store_true",
        help="report damage without marking segments quarantined",
    )
    scrub_cmd.add_argument("--json", action="store_true", help="machine-readable output")

    serve = commands.add_parser(
        "serve", help="serve read-only queries from one warm cache (JSON lines over TCP)"
    )
    serve.add_argument("store", help="store directory")
    serve.add_argument("--host", default="127.0.0.1", help="interface to bind (default: loopback)")
    serve.add_argument("--port", type=int, default=0, help="TCP port (default: pick a free one)")
    serve.add_argument(
        "--cache-bytes",
        type=_positive_int,
        default=DEFAULT_CACHE_BYTES,
        help=f"decoded-segment cache byte budget (default: {DEFAULT_CACHE_BYTES})",
    )
    serve.add_argument(
        "--writable",
        action="store_true",
        help="accept remote ingest ops (begin_run/append_epoch/commit_run)",
    )
    serve.add_argument(
        "--maintenance",
        nargs="?",
        const="",
        default=None,
        metavar="POLICY_JSON",
        help="run a maintenance autopilot in-process "
        "(optionally configured from a policy JSON file; default policy otherwise)",
    )
    serve.add_argument(
        "--maintenance-interval",
        type=float,
        default=5.0,
        help="seconds between autopilot cycles (default: 5)",
    )
    _add_parallelism(serve)

    watch = commands.add_parser(
        "watch", help="tail a page set's lineage against a running store server"
    )
    watch.add_argument("server", help="server address as host:port (or store://host:port)")
    watch.add_argument(
        "--pages", type=_parse_pages, required=True, help="comma-separated page list"
    )
    watch.add_argument(
        "--run", type=int, default=None, help="run to watch (optional for single-run stores)"
    )
    watch.add_argument(
        "--interval", type=float, default=0.2, help="seconds between observations (default: 0.2)"
    )
    watch.add_argument(
        "--timeout", type=float, default=60.0, help="give up after this many seconds (default: 60)"
    )
    watch.add_argument("--json", action="store_true", help="machine-readable output (JSON lines)")

    cluster = commands.add_parser(
        "cluster", help="operate a sharded store cluster (see cluster.json manifests)"
    )
    cluster_cmds = cluster.add_subparsers(dest="cluster_command", required=True)

    cserve = cluster_cmds.add_parser(
        "serve", help="host every shard/replica with a local store path in one process"
    )
    cserve.add_argument("cluster", help="cluster.json manifest (or its directory)")
    cserve.add_argument(
        "--cache-bytes",
        type=_positive_int,
        default=DEFAULT_CACHE_BYTES,
        help=f"per-shard decoded-segment cache budget (default: {DEFAULT_CACHE_BYTES})",
    )
    cserve.add_argument(
        "--writable",
        action="store_true",
        help="shard primaries accept remote ingest (replicas stay read-only)",
    )
    _add_parallelism(cserve)

    cstatus = cluster_cmds.add_parser(
        "status", help="probe shard liveness, replicas, and run placement"
    )
    cstatus.add_argument("cluster", help="cluster.json manifest (or its directory)")
    cstatus.add_argument("--json", action="store_true", help="machine-readable output")

    cquery = cluster_cmds.add_parser(
        "query", help="scatter-gather a lineage/taint/compare query over the shards"
    )
    cquery.add_argument("cluster", help="cluster.json manifest (or its directory)")
    cquery.add_argument(
        "--pages", type=_parse_pages, required=True, help="comma-separated page list"
    )
    cquery.add_argument(
        "--run", type=int, default=None, help="query one run (optional for single-run clusters)"
    )
    cquery.add_argument(
        "--across-runs",
        action="store_true",
        help="fan the query out over every run of every shard",
    )
    cquery.add_argument(
        "--compare",
        nargs=2,
        type=int,
        metavar=("RUN_A", "RUN_B"),
        help="diff the pages' lineage between two runs (possibly on different shards)",
    )
    cquery.add_argument(
        "--taint", action="store_true", help="propagate taint instead of lineage"
    )
    cquery.add_argument(
        "--partial",
        action="store_true",
        help="degraded reads: cross-run queries skip dead shards and report them",
    )
    _add_parallelism(cquery)
    cquery.add_argument("--json", action="store_true", help="machine-readable output")

    crepair = cluster_cmds.add_parser(
        "repair",
        help="anti-entropy: heal local replicas from their shard primaries",
    )
    crepair.add_argument("cluster", help="cluster.json manifest (or its directory)")
    crepair.add_argument(
        "--shard", default=None, help="repair one shard (default: every shard)"
    )
    crepair.add_argument("--json", action="store_true", help="machine-readable output")
    return parser


def _print_read_footer(engine: StoreQueryEngine) -> None:
    total = engine.store.manifest.segment_count
    print(f"[segments read: {engine.segments_loaded} / {total}]")


def _cmd_ingest(args: argparse.Namespace) -> int:
    _apply_compress_level(args.compress_level)
    store = ProvenanceStore.open_or_create(args.store)
    kwargs = {}
    if args.segment_nodes is not None:
        kwargs["segment_nodes"] = args.segment_nodes
    if args.codec is not None:
        kwargs["codec"] = args.codec
    segments = store.ingest_json_file(args.cpg, workload=args.workload, **kwargs)
    run_id = store.manifest.runs[-1].run_id
    print(
        f"ingested {args.cpg} into {args.store} as run {run_id}: "
        f"{segments} new segment(s), {store.manifest.node_count} node(s) total"
    )
    return 0


def _print_cache_stats(store: ProvenanceStore) -> None:
    cache_info = store.cache_info()
    cache = cache_info["segment_cache"]
    print("  read-path cache:")
    print(
        f"    segment cache:  {cache['max_bytes']} byte budget "
        f"(default {DEFAULT_CACHE_BYTES}), "
        f"{cache['max_entries'] if cache['max_entries'] is not None else 'unbounded'} "
        f"entry cap (default {DEFAULT_CACHE_SEGMENTS})"
    )
    print(
        f"    resident:       {cache['entries']} segment(s), {cache['total_bytes']} byte(s) "
        f"(peak {cache['peak_bytes']})"
    )
    print(
        f"    traffic:        {cache['hits']} hit(s), {cache['misses']} miss(es), "
        f"{cache['evictions']} eviction(s)"
    )
    pinner = cache_info["index_pinner"]
    if pinner is None:
        print("    index pinner:   none attached (one-shot CLI queries merge per open)")
    else:
        print(
            f"    index pinner:   {pinner['pinned_runs']} run(s) pinned, "
            f"{pinner['hits']} hit(s), {pinner['misses']} miss(es)"
        )


def _cmd_info(args: argparse.Namespace) -> int:
    store = ProvenanceStore.open(args.store)
    summary = store.info()
    if args.stats:
        summary["cache"] = store.cache_info()
    if args.json:
        print(json.dumps(summary, sort_keys=True, indent=2))
        return 0
    print(f"provenance store at {summary['path']}")
    print(f"  format version:   {summary['format_version']}")
    print(f"  runs:             {len(summary['runs'])}")
    print(f"  segments:         {summary['segments']}")
    print(f"  sub-computations: {summary['nodes']}")
    print(f"  edges:            {summary['edges']}")
    print(f"  threads:          {summary['threads']}")
    print(f"  pages indexed:    {summary['pages_indexed']}")
    print(f"  sync objects:     {summary['sync_objects']}")
    print(
        f"  segment bytes:    {summary['stored_bytes']} on disk "
        f"({summary['raw_bytes']} raw, {summary['compression_ratio']}x)"
    )
    codecs = " ".join(f"{name}={count}" for name, count in sorted(summary["codecs"].items()))
    print(f"  segment codecs:   {codecs or 'none'}")
    for name, per in sorted(summary["codec_bytes"].items()):
        ratio = per["raw_bytes"] / per["stored_bytes"] if per["stored_bytes"] else 1.0
        print(
            f"    {name}: {per['segments']} segment(s), "
            f"{per['stored_bytes']} stored / {per['raw_bytes']} raw ({ratio:.2f}x)"
        )
    print(
        f"  index deltas:     {summary['index_delta_files']} pending file(s), "
        f"{summary['index_delta_bytes']} byte(s)"
    )
    log = summary["segment_log"]
    print(
        f"  segment log:      {log['records']} record(s), {log['bytes']} byte(s) "
        f"(checkpoint seq {log['checkpoint_seq']}, last seq {log['last_seq']}, "
        f"{log['uncheckpointed_records']} uncheckpointed)"
    )
    for run in summary["runs"]:
        run_codecs = " ".join(
            f"{name}={count}" for name, count in sorted(run["codecs"].items())
        )
        print(
            f"  run {run['id']:4d}:         {run['workload'] or '?'} "
            f"[{run['status']}] {run['nodes']} node(s), {run['segments']} segment(s) "
            f"({run_codecs or 'no segments'}; index base gen {run['index_base_gen']}, "
            f"{run['index_delta_files']} delta(s), {run['index_delta_bytes']} byte(s) pending)"
        )
    if args.stats:
        _print_cache_stats(store)
    return 0


def _cmd_runs(args: argparse.Namespace) -> int:
    store = ProvenanceStore.open(args.store)
    summaries = [store.run_summary(run_id) for run_id in store.run_ids()]
    if args.json:
        print(json.dumps(summaries, sort_keys=True, indent=2))
        return 0
    if not summaries:
        print(f"store at {args.store} holds no runs")
        return 0
    print(f"{'run':>4s} {'workload':20s} {'status':9s} {'nodes':>7s} {'segments':>9s} {'bytes':>10s} created")
    for run in summaries:
        print(
            f"{run['id']:4d} {(run['workload'] or '?'):20s} {run['status']:9s} "
            f"{run['nodes']:7d} {run['segments']:9d} {run['stored_bytes']:10d} {run['created_at']}"
        )
    return 0


def _cmd_slice(args: argparse.Namespace) -> int:
    if (args.node is None) == (args.pages is None):
        print("slice needs exactly one of --node or --pages", file=sys.stderr)
        return 2
    if args.pages is not None and (args.forward or args.kinds != [EdgeKind.DATA]):
        # Lineage is defined as the backward data-slice of the pages'
        # writers; silently ignoring the flags would answer a different
        # question than the one asked.
        print("--forward/--kinds apply to --node slices, not --pages lineage", file=sys.stderr)
        return 2
    store = ProvenanceStore.open(args.store)
    run_id = store.resolve_run(args.run)
    engine = StoreQueryEngine(store, parallelism=args.parallelism)
    if args.node is not None:
        origin = parse_node_key(args.node)
        if args.forward:
            nodes = engine.forward_slice(origin, kinds=tuple(args.kinds), run=run_id)
        else:
            nodes = engine.backward_slice(origin, kinds=tuple(args.kinds), run=run_id)
        label = ("forward" if args.forward else "backward") + f" slice of {args.node}"
    else:
        nodes = engine.lineage_of_pages(args.pages, run=run_id)
        label = f"lineage of pages {args.pages}"
    label += f" (run {run_id})"
    ordered = sorted(nodes)
    if args.json:
        print(
            json.dumps(
                {"query": label, "run": run_id, "nodes": [node_key(node) for node in ordered]}
            )
        )
        return 0
    print(f"{label}: {len(ordered)} sub-computation(s)")
    for node in ordered:
        print(f"  {node_key(node)}")
    _print_read_footer(engine)
    return 0


def _cmd_lineage(args: argparse.Namespace) -> int:
    # `lineage` is the first-class spelling of `slice --pages`; delegate so
    # the two subcommands cannot drift apart.
    args.node = None
    args.forward = False
    args.kinds = [EdgeKind.DATA]
    return _cmd_slice(args)


def _cmd_taint(args: argparse.Namespace) -> int:
    store = ProvenanceStore.open(args.store)
    run_id = store.resolve_run(args.run)
    engine = StoreQueryEngine(store, parallelism=args.parallelism)
    result = engine.propagate_taint(
        args.pages, through_thread_state=args.through_thread_state, run=run_id
    )
    if args.json:
        print(
            json.dumps(
                {
                    "run": run_id,
                    "source_pages": sorted(result.source_pages),
                    "tainted_pages": sorted(result.tainted_pages),
                    "tainted_nodes": [node_key(node) for node in sorted(result.tainted_nodes)],
                }
            )
        )
        return 0
    print(f"taint from pages {sorted(result.source_pages)} (run {run_id}):")
    print(f"  tainted pages: {sorted(result.tainted_pages)}")
    print(f"  tainted sub-computations: {len(result.tainted_nodes)}")
    for node in sorted(result.tainted_nodes):
        print(f"    {node_key(node)}")
    _print_read_footer(engine)
    return 0


def _cmd_compact(args: argparse.Namespace) -> int:
    _apply_compress_level(args.compress_level)
    store = ProvenanceStore.open(args.store)
    kwargs = {}
    if args.segment_nodes is not None:
        kwargs["segment_nodes"] = args.segment_nodes
    if args.codec is not None:
        store.default_codec = args.codec  # compaction re-encodes with this
    stats = store.compact(run=args.run, **kwargs)
    if args.json:
        print(json.dumps(stats.to_dict(), sort_keys=True))
        return 0
    scope = f"run {args.run}" if args.run is not None else "every run"
    print(
        f"compacted {scope}: {stats.segments_before} -> {stats.segments_after} segment(s), "
        f"{stats.bytes_reclaimed} byte(s) reclaimed, "
        f"{stats.index_delta_files_reclaimed} index delta file(s) folded"
    )
    return 0


def _cmd_gc(args: argparse.Namespace) -> int:
    if (args.keep_last is None) == (args.runs is None):
        print("gc needs exactly one of --keep-last or --runs", file=sys.stderr)
        return 2
    store = ProvenanceStore.open(args.store)
    stats = store.gc(keep_last=args.keep_last, runs=args.runs)
    if args.json:
        print(json.dumps(stats.to_dict(), sort_keys=True))
        return 0
    dropped = ", ".join(str(run) for run in stats.runs_dropped) or "nothing"
    print(
        f"gc dropped {dropped}: {stats.segments_before} -> {stats.segments_after} segment(s), "
        f"{stats.bytes_reclaimed} byte(s) reclaimed"
    )
    return 0


def _cmd_bless(args: argparse.Namespace) -> int:
    with ProvenanceStore.open(args.store) as store:
        baseline = bless_baseline(
            store,
            run=args.run,
            pages=args.pages,
            name=args.name,
            include_racy=not args.no_racy,
        )
        path = baseline.save(store)
    if args.json:
        print(json.dumps(baseline.to_dict(), sort_keys=True, indent=2))
        return 0
    racy = (
        f", {baseline.racy_pair_count} racy pair(s)"
        if baseline.racy_pairs is not None
        else ""
    )
    print(
        f"blessed run {baseline.run_id} as baseline {baseline.name!r}: "
        f"{len(baseline.page_sets)} page set(s){racy} -> {path}"
    )
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    with ProvenanceStore.open(args.store) as store:
        report = check_against_baseline(
            store,
            args.baseline,
            run=args.run,
            include_racy=False if args.no_racy else None,
        )
    if args.json:
        print(json.dumps(report.to_dict(), sort_keys=True, indent=2))
    else:
        for line in report.explain():
            print(line)
    return 0 if report.ok else 1


def _print_decision(decision) -> None:
    if decision.dry_run:
        status = "planned"
    elif decision.error is not None:
        status = "FAILED"
    else:
        status = "done"
    line = f"  [{status}] {decision.action}"
    if decision.run is not None:
        line += f" run {decision.run}"
    line += f": {decision.reason}"
    if decision.error:
        line += f" ({decision.error})"
    print(line)


def _cmd_autopilot(args: argparse.Namespace) -> int:
    policy_kwargs = {"dry_run": args.dry_run}
    if args.keep_last is not None:
        policy_kwargs["gc_keep_last"] = args.keep_last
    if args.max_store_bytes is not None:
        policy_kwargs["gc_max_store_bytes"] = args.max_store_bytes
    if args.scrub_interval is not None:
        policy_kwargs["scrub_interval_s"] = args.scrub_interval
    if args.compact_min_delta_files is not None:
        policy_kwargs["compact_min_delta_files"] = args.compact_min_delta_files
    if args.protect_runs is not None:
        policy_kwargs["protect_runs"] = tuple(args.protect_runs)
    policy = AutopilotPolicy(**policy_kwargs)
    with ProvenanceStore.open(args.store) as store:
        pilot = Autopilot(store, policy, log_path=args.log)
        if args.once:
            decisions = pilot.run_once()
            if args.json:
                print(
                    json.dumps(
                        [decision.to_dict() for decision in decisions],
                        sort_keys=True,
                        indent=2,
                    )
                )
            else:
                if not decisions:
                    print(f"autopilot on {args.store}: nothing to do")
                else:
                    print(f"autopilot on {args.store}: {len(decisions)} decision(s)")
                    for decision in decisions:
                        _print_decision(decision)
            return 1 if any(d.error for d in decisions) else 0
        mode = "dry-run" if args.dry_run else "active"
        print(
            f"autopilot on {args.store} ({mode}; every {args.interval}s); Ctrl-C to stop"
        )
        with AutopilotDaemon(pilot, interval_s=args.interval):
            try:
                while True:
                    time.sleep(3600)
            except KeyboardInterrupt:
                print("stopped")
    return 0


def _cmd_fsck(args: argparse.Namespace) -> int:
    report = verify_store(args.store, repair=args.repair)
    if args.json:
        print(json.dumps(report, sort_keys=True, indent=2))
        return 0 if report["ok"] else 1
    checked = report["checked"]
    print(
        f"fsck {report['path']}: checked {checked['segments']} segment(s), "
        f"{checked['index_files']} index file(s)"
    )
    log = report["segment_log"]
    if log["torn_bytes"]:
        print(f"  segment log: {log['records']} record(s), {log['torn_bytes']} torn byte(s)")
    for warning in report["warnings"]:
        print(f"  warning [{warning['kind']}] {warning['path']}: {warning['detail']}")
    for rel in report["repaired"]:
        print(f"  repaired: removed orphan {rel}")
    for problem in report["problems"]:
        print(f"  PROBLEM [{problem['kind']}] {problem['path']}: {problem['detail']}")
    print("store is clean" if report["ok"] else f"{len(report['problems'])} problem(s) found")
    return 0 if report["ok"] else 1


def _cmd_scrub(args: argparse.Namespace) -> int:
    with ProvenanceStore.open(args.store) as store:
        report = scrub(
            store,
            throttle_mb_per_s=args.throttle_mb,
            quarantine=not args.no_quarantine,
        )
    if args.json:
        print(json.dumps(report, sort_keys=True, indent=2))
        return 0 if report["ok"] else 1
    segments = report["segments"]
    index_files = report["index_files"]
    print(
        f"scrub {report['path']}: {report['files_scanned']} file(s), "
        f"{report['bytes_verified']} byte(s) in {report['elapsed_s']}s "
        f"({report['mb_per_s']} MB/s)"
    )
    print(
        f"  segments:    {segments['verified']} verified, "
        f"{segments['unverified']} unverified, {segments['damaged']} damaged"
    )
    print(
        f"  index files: {index_files['verified']} verified, "
        f"{index_files['unverified']} unverified, {index_files['damaged']} damaged"
    )
    for problem in report["damage"]:
        print(f"  DAMAGE [{problem['kind']}] {problem['path']}: {problem['detail']}")
    if report["quarantined"]:
        marked = ", ".join(str(s) for s in report["quarantined"])
        print(f"  quarantined segment(s): {marked}")
    if report["unquarantined"]:
        lifted = ", ".join(str(s) for s in report["unquarantined"])
        print(f"  quarantine lifted (verified clean): {lifted}")
    print("store is clean" if report["ok"] else f"{len(report['damage'])} damaged file(s)")
    return 0 if report["ok"] else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    maintenance = None
    if args.maintenance is not None:
        if args.maintenance:
            with open(args.maintenance, "r", encoding="utf-8") as handle:
                maintenance = AutopilotPolicy.from_dict(json.load(handle))
        else:
            maintenance = AutopilotPolicy()
    server = StoreServer(
        args.store,
        host=args.host,
        port=args.port,
        cache_bytes=args.cache_bytes,
        parallelism=args.parallelism,
        writable=args.writable,
        maintenance=maintenance,
        maintenance_interval_s=args.maintenance_interval,
    )
    host, port = server.address
    mode = "read-write" if args.writable else "read-only"
    upkeep = (
        f", autopilot every {args.maintenance_interval}s" if maintenance is not None else ""
    )
    print(
        f"serving {args.store} on {host}:{port} ({mode}; "
        f"cache budget {args.cache_bytes} bytes, parallelism {args.parallelism}"
        f"{upkeep}); Ctrl-C to stop"
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        server.close()
        print("stopped")
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    client = StoreClient.from_url(args.server, refresh_mode="follow")
    for update in client.watch(
        args.pages, run=args.run, interval=args.interval, timeout=args.timeout
    ):
        if args.json:
            printable = dict(update)
            printable["nodes"] = [node_key(node) for node in update["nodes"]]
            print(json.dumps(printable, sort_keys=True), flush=True)
        else:
            progress = update["progress"]
            tail = " [complete]" if update.get("done") and not update.get("timed_out") else ""
            tail = " [timed out]" if update.get("timed_out") else tail
            print(
                f"run {update['run']} [{progress['status']}]: "
                f"{progress['nodes']} node(s), {progress['edges']} edge(s), "
                f"{progress['segments']} segment(s); lineage of {args.pages}: "
                f"{len(update['nodes'])} sub-computation(s){tail}",
                flush=True,
            )
    return 0


def _cmd_cluster_serve(args: argparse.Namespace) -> int:
    service = ClusterService(
        args.cluster,
        cache_bytes=args.cache_bytes,
        parallelism=args.parallelism,
        writable=args.writable,
    )
    manifest = service.start()
    if not service.servers:
        print(
            "error: no shard in the manifest has a local store path to serve",
            file=sys.stderr,
        )
        return 1
    mode = "read-write primaries" if args.writable else "read-only"
    print(f"serving {len(service.servers)} endpoint(s) ({mode}); Ctrl-C to stop")
    for shard in manifest.shards:
        endpoints = shard.endpoints()
        served = ", ".join(
            f"{e.address}{' (replica)' if i else ''}"
            for i, e in enumerate(endpoints)
            if (shard.shard_id, i) in service.servers
        )
        print(f"  shard {shard.shard_id}: {served or 'served elsewhere'}")
    if manifest.path:
        print(f"bound addresses written back to {manifest.path}")
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        service.close()
        print("stopped")
    return 0


def _cmd_cluster_status(args: argparse.Namespace) -> int:
    cluster = StoreCluster(args.cluster)
    status = cluster.status()
    if args.json:
        print(json.dumps(status, sort_keys=True, indent=2))
        return 0
    print(f"cluster policy: {status['policy']} (degraded reads: {status['on_shard_down']})")
    for entry in status["shards"]:
        if entry["alive"]:
            runs = ", ".join(str(r) for r in entry.get("runs", [])) or "none"
            line = f"  shard {entry['shard']}: up via {entry['served_by']} (runs: {runs})"
            if entry.get("assigned_runs") is not None:
                assigned = ", ".join(str(r) for r in entry["assigned_runs"]) or "none"
                line += f" (assigned: {assigned})"
        else:
            line = f"  shard {entry['shard']}: DOWN ({entry['error']})"
        if entry["replicas"]:
            line += f" [replicas: {', '.join(str(r) for r in entry['replicas'])}]"
        print(line)
    runs = ", ".join(str(r) for r in status["runs"]) or "none"
    print(f"cluster runs: {runs}")
    return any(not entry["alive"] for entry in status["shards"])


def _cmd_cluster_query(args: argparse.Namespace) -> int:
    modes = sum(1 for flag in (args.across_runs, args.compare is not None) if flag)
    if modes > 1 or (args.run is not None and modes):
        print(
            "cluster query takes at most one of --run, --across-runs, --compare",
            file=sys.stderr,
        )
        return 2
    if args.compare is not None and args.taint:
        print("--compare diffs lineage; it does not combine with --taint", file=sys.stderr)
        return 2
    cluster = StoreCluster(
        args.cluster,
        parallelism=args.parallelism,
        on_shard_down="partial" if args.partial else "fail",
    )
    if args.compare is not None:
        diff = cluster.compare_lineage(args.compare[0], args.compare[1], args.pages)
        payload = {
            "run_a": diff.run_a,
            "run_b": diff.run_b,
            "pages": list(diff.pages),
            "only_a": [node_key(n) for n in sorted(diff.only_a)],
            "only_b": [node_key(n) for n in sorted(diff.only_b)],
            "common": [node_key(n) for n in sorted(diff.common)],
            "identical": diff.identical,
        }
        if not args.json:
            print(
                f"lineage of pages {args.pages}: run {diff.run_a} vs run {diff.run_b} "
                f"({'identical' if diff.identical else 'diverged'})"
            )
            print(f"  only run {diff.run_a}: {len(diff.only_a)} sub-computation(s)")
            print(f"  only run {diff.run_b}: {len(diff.only_b)} sub-computation(s)")
            print(f"  common:       {len(diff.common)} sub-computation(s)")
    elif args.across_runs:
        if args.taint:
            by_run = cluster.taint_across_runs(args.pages)
            payload = {
                str(run): {
                    "source_pages": sorted(result.source_pages),
                    "tainted_pages": sorted(result.tainted_pages),
                    "tainted_nodes": [node_key(n) for n in sorted(result.tainted_nodes)],
                }
                for run, result in by_run.items()
            }
            if not args.json:
                print(f"taint from pages {args.pages} across {len(by_run)} run(s):")
                for run, result in by_run.items():
                    print(
                        f"  run {run}: {sorted(result.tainted_pages)} tainted, "
                        f"{len(result.tainted_nodes)} sub-computation(s)"
                    )
        else:
            by_run = cluster.lineage_across_runs(args.pages)
            payload = {
                str(run): [node_key(n) for n in sorted(nodes)]
                for run, nodes in by_run.items()
            }
            if not args.json:
                print(f"lineage of pages {args.pages} across {len(by_run)} run(s):")
                for run, nodes in by_run.items():
                    print(f"  run {run}: {len(nodes)} sub-computation(s)")
    elif args.taint:
        result = cluster.taint(args.pages, run=args.run)
        payload = {
            "source_pages": sorted(result.source_pages),
            "tainted_pages": sorted(result.tainted_pages),
            "tainted_nodes": [node_key(n) for n in sorted(result.tainted_nodes)],
        }
        if not args.json:
            print(f"taint from pages {args.pages}:")
            print(f"  tainted pages: {sorted(result.tainted_pages)}")
            print(f"  tainted sub-computations: {len(result.tainted_nodes)}")
    else:
        nodes = cluster.lineage(args.pages, run=args.run)
        payload = {"nodes": [node_key(n) for n in sorted(nodes)]}
        if not args.json:
            print(f"lineage of pages {args.pages}: {len(nodes)} sub-computation(s)")
            for node in sorted(nodes):
                print(f"  {node_key(node)}")
    fanout = cluster.last_fanout or {}
    if args.json:
        payload = {"result": payload, "fanout": fanout}
        print(json.dumps(payload, sort_keys=True, indent=2))
        return 0
    shards = fanout.get("shards", [])
    answered = ", ".join(
        f"{entry['shard']}@{entry['address']} ({entry['stats'].get('elapsed_ms', '?')}ms)"
        for entry in shards
        if entry["ok"]
    )
    print(f"[fan-out: {answered or 'no shards asked'}]")
    missing = fanout.get("missing_shards", [])
    if missing:
        for entry in missing:
            runs = entry.get("runs")
            detail = f" (runs {', '.join(str(r) for r in runs)})" if runs else ""
            print(f"[missing shard: {entry['shard']}{detail}]")
    return 0


def _cmd_cluster_repair(args: argparse.Namespace) -> int:
    cluster = StoreCluster(args.cluster)
    report = cluster.repair(args.shard)
    if args.json:
        print(json.dumps(report, sort_keys=True, indent=2))
        return 0
    for entry in report["shards"]:
        print(f"shard {entry['shard']} (source {entry['source']}):")
        for replica in entry["replicas"]:
            if replica.get("skipped"):
                print(f"  replica {replica['address']}: skipped ({replica['skipped']})")
                continue
            fetched = len(replica["fetched"])
            print(
                f"  replica {replica['path']}: {fetched} file(s) fetched "
                f"({replica['bytes_fetched']} bytes), "
                f"{replica['files_matched']} already matched"
                + (", server refreshed" if replica["refreshed"] else "")
            )
    print(
        f"repair complete: {report['files_fetched']} file(s), "
        f"{report['bytes_fetched']} bytes fetched"
    )
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    return {
        "serve": _cmd_cluster_serve,
        "status": _cmd_cluster_status,
        "query": _cmd_cluster_query,
        "repair": _cmd_cluster_repair,
    }[args.cluster_command](args)


_COMMANDS = {
    "ingest": _cmd_ingest,
    "info": _cmd_info,
    "runs": _cmd_runs,
    "slice": _cmd_slice,
    "lineage": _cmd_lineage,
    "taint": _cmd_taint,
    "compact": _cmd_compact,
    "gc": _cmd_gc,
    "bless": _cmd_bless,
    "check": _cmd_check,
    "autopilot": _cmd_autopilot,
    "fsck": _cmd_fsck,
    "scrub": _cmd_scrub,
    "serve": _cmd_serve,
    "watch": _cmd_watch,
    "cluster": _cmd_cluster,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of ``python -m repro.store``."""
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except InspectorError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Output was piped into something like `head` that closed early;
        # suppress the noisy traceback the interpreter would print while
        # flushing stdout at exit.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())

"""The hot read path: decoded-segment cache and pinned index generations.

Every store query pays the same two costs before it can answer: decoding
segment files into :class:`~repro.store.segment.SegmentPayload` objects,
and merging a run's index base + delta generations into a
:class:`~repro.store.indexes.StoreIndexes`.  The write path (format 4)
made both cheap to *produce*; this module makes them cheap to *reuse*, the
same way LSM stores reuse work through block caches and pinned
filter/index blocks:

* :class:`SegmentCache` -- a byte-budgeted, thread-safe LRU of decoded
  segments.  Entries are charged an estimated resident size (not the
  on-disk size: a decoded binary segment is several times larger than its
  file), the total never exceeds the budget, and hit/miss/eviction
  counters make the cache observable.  One cache can back any number of
  store handles -- the warm server shares one across snapshot reopens.
  Cold misses are **single-flight** (:meth:`SegmentCache.begin_fill`): N
  concurrent queries missing the same segment collapse to one decode, the
  rest blocking on the owner's result instead of thundering the disk.
* :class:`IndexPinner` -- keeps merged per-run index generations resident
  across store opens, keyed by the exact ``(base, deltas)`` generations
  the manifest names, so repeated queries (or a server re-opening its
  snapshot) stop re-merging delta files that have not changed.

**Invalidation.**  Cache keys carry the owning store's path and its
in-memory *manifest generation*, which :meth:`ProvenanceStore.compact` and
:meth:`~repro.store.store.ProvenanceStore.gc` bump (dropping the store's
entries wholesale).  Segment ids and index generations are minted from
monotonic counters and **never reused** -- the store's recovery
invariant -- so a key can never silently name different bytes; the
generation bump is what promptly releases the memory of superseded
entries and guards against any future id reuse serving stale data.

Sharing a cache or pinner between store handles is for **read-only**
serving (the query engine, the server): ingesting into a run whose
indexes are pinned would mutate state other snapshots see.  That is the
same single-writer stance the store already takes for maintenance.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import StoreError
from repro.store.indexes import StoreIndexes
from repro.store.segment import SegmentPayload

#: Default byte budget of a store's decoded-segment cache.  Sized so the
#: benchmark workloads stay fully resident while a runaway store cannot
#: hold gigabytes of decoded payloads hostage.
DEFAULT_CACHE_BYTES = 48 * 1024 * 1024

# Per-record constants of the resident-size estimate.  Deliberately a
# model, not sys.getsizeof spelunking: the estimate must be deterministic
# across interpreters so the "never exceeds its budget" invariant is
# testable, and only relative accuracy matters for eviction order.
_PAYLOAD_BASE_COST = 256
_NODE_COST = 200
_PAGE_COST = 32
_EDGE_COST = 160
_ATTR_COST = 24


def estimate_payload_cost(payload: SegmentPayload) -> int:
    """Estimated resident bytes of one decoded segment payload.

    Counts what actually dominates: sub-computation records with their
    read/write page sets, and edge tuples (each indexed twice, by source
    and by target).
    """
    cost = _PAYLOAD_BASE_COST
    for node in payload.nodes.values():
        cost += _NODE_COST + _PAGE_COST * (len(node.read_set) + len(node.write_set))
    for edge in payload.edges:
        cost += _EDGE_COST + _ATTR_COST * len(edge[3])
    return cost


@dataclass
class CacheStats:
    """Observable counters of one :class:`SegmentCache`.

    Attributes:
        hits: Lookups served from memory.
        misses: Lookups that fell through to disk + decode.
        evictions: Entries dropped to stay within the budget.
        inserts: Entries admitted into the cache.
        oversize: Payloads never admitted because their estimated cost
            alone exceeds the byte budget.
        invalidations: Entries dropped by explicit invalidation
            (``compact``/``gc``/``clear_cache``), not by pressure.
        coalesced: Lookups that joined another caller's in-flight decode
            of the same segment instead of decoding it again
            (single-flight; also counted in ``hits``).
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    inserts: int = 0
    oversize: int = 0
    invalidations: int = 0
    coalesced: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from memory (0.0 when never used)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
            "evictions": self.evictions,
            "inserts": self.inserts,
            "oversize": self.oversize,
            "invalidations": self.invalidations,
            "coalesced": self.coalesced,
        }


#: Cache key: (store namespace, manifest generation, segment id).
_CacheKey = Tuple[str, int, int]


class _InFlightFill:
    """Shared state of one in-progress cold-segment decode."""

    __slots__ = ("event", "payload", "error", "cancelled")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.payload: Optional[SegmentPayload] = None
        self.error: Optional[BaseException] = None
        #: Set by :meth:`SegmentCache.invalidate` while the fill is in
        #: flight: the result is still delivered to waiters (segment ids
        #: are never reused, so the bytes are not stale), but it is not
        #: admitted into the cache the invalidation just cleared.
        self.cancelled = False


class FillHandle:
    """One caller's ticket into a single-flight segment fill.

    Returned by :meth:`SegmentCache.begin_fill`; ``status`` says which of
    three roles the caller drew:

    * ``"hit"`` -- the payload was cached; it is in :attr:`payload`.
    * ``"owner"`` -- nobody is decoding this segment: the caller must
      decode it and call :meth:`complete` (or :meth:`fail` on error --
      **always** one of the two, or waiters block forever).
    * ``"waiter"`` -- another thread is already decoding: call
      :meth:`wait` for its result.
    """

    __slots__ = ("status", "payload", "_cache", "_key", "_fill")

    def __init__(
        self,
        cache: "SegmentCache",
        key: _CacheKey,
        status: str,
        payload: Optional[SegmentPayload] = None,
        fill: Optional[_InFlightFill] = None,
    ) -> None:
        self._cache = cache
        self._key = key
        self.status = status
        self.payload = payload
        self._fill = fill

    def complete(self, payload: SegmentPayload) -> None:
        """Owner only: publish the decoded payload and wake every waiter."""
        self._cache._finish_fill(self._key, self._fill, payload=payload)
        self.payload = payload

    def fail(self, error: BaseException) -> None:
        """Owner only: propagate the decode error to every waiter."""
        self._cache._finish_fill(self._key, self._fill, error=error)

    def wait(self, timeout: Optional[float] = None) -> SegmentPayload:
        """Waiter only: block for the owner's result (re-raising its error)."""
        if not self._fill.event.wait(timeout):
            raise StoreError(
                f"timed out waiting for in-flight decode of segment {self._key[2]}"
            )
        if self._fill.error is not None:
            raise self._fill.error
        return self._fill.payload


class SegmentCache:
    """Byte-budgeted, thread-safe LRU over decoded segment payloads.

    Args:
        max_bytes: Budget over the *estimated resident size* of the cached
            payloads (:func:`estimate_payload_cost`).  The invariant is
            hard: the total charged cost never exceeds the budget, and a
            payload whose cost alone is above it is simply not admitted
            (counted in ``stats.oversize``) -- callers always get their
            payload back either way.
        max_entries: Optional additional entry-count bound (the pre-cache
            store behaviour of "at most N decoded segments"); ``None``
            leaves the byte budget as the only limit.
    """

    def __init__(
        self, max_bytes: int = DEFAULT_CACHE_BYTES, max_entries: Optional[int] = None
    ) -> None:
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self._max_bytes = max_bytes
        self._max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: "OrderedDict[_CacheKey, Tuple[SegmentPayload, int]]" = OrderedDict()
        self._fills: Dict[_CacheKey, _InFlightFill] = {}
        self._total_bytes = 0
        self._peak_bytes = 0
        self.stats = CacheStats()

    # ------------------------------------------------------------------ #
    # Configuration / introspection
    # ------------------------------------------------------------------ #

    @property
    def max_bytes(self) -> int:
        """The byte budget (shrinking it evicts immediately)."""
        return self._max_bytes

    @max_bytes.setter
    def max_bytes(self, value: int) -> None:
        if value <= 0:
            raise ValueError(f"max_bytes must be positive, got {value}")
        with self._lock:
            self._max_bytes = value
            self._evict_locked()

    @property
    def max_entries(self) -> Optional[int]:
        """The optional entry-count bound (shrinking it evicts immediately)."""
        return self._max_entries

    @max_entries.setter
    def max_entries(self, value: Optional[int]) -> None:
        if value is not None and value < 0:
            raise ValueError(f"max_entries must be non-negative or None, got {value}")
        with self._lock:
            self._max_entries = value
            self._evict_locked()

    @property
    def total_bytes(self) -> int:
        """Estimated resident bytes currently charged to the cache."""
        return self._total_bytes

    @property
    def peak_bytes(self) -> int:
        """Largest ``total_bytes`` ever observed (the budget-invariant probe)."""
        return self._peak_bytes

    def __len__(self) -> int:
        return len(self._entries)

    def to_dict(self) -> dict:
        """Configuration + counters, for ``info --stats`` and the server."""
        return {
            "max_bytes": self._max_bytes,
            "max_entries": self._max_entries,
            "entries": len(self._entries),
            "total_bytes": self._total_bytes,
            "peak_bytes": self._peak_bytes,
            **self.stats.to_dict(),
        }

    # ------------------------------------------------------------------ #
    # Lookup / admission
    # ------------------------------------------------------------------ #

    def get(self, namespace: str, generation: int, segment_id: int) -> Optional[SegmentPayload]:
        """Return the cached payload (refreshing recency) or ``None``."""
        key = (namespace, generation, segment_id)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry[0]

    def peek(self, namespace: str, generation: int, segment_id: int) -> Optional[SegmentPayload]:
        """Like :meth:`get` but touching neither recency nor the counters.

        The streaming-compaction read path uses this: it must not evict
        the cache's working set, and its one-shot reads should not skew
        the hit rate the server reports.
        """
        with self._lock:
            entry = self._entries.get((namespace, generation, segment_id))
            return entry[0] if entry is not None else None

    def put(
        self, namespace: str, generation: int, segment_id: int, payload: SegmentPayload
    ) -> None:
        """Admit one decoded payload (evicting LRU entries to fit)."""
        with self._lock:
            self._admit_locked((namespace, generation, segment_id), payload)

    def _admit_locked(self, key: _CacheKey, payload: SegmentPayload) -> None:
        cost = estimate_payload_cost(payload)
        if cost > self._max_bytes:
            self.stats.oversize += 1
            return
        previous = self._entries.pop(key, None)
        if previous is not None:
            self._total_bytes -= previous[1]
        self._entries[key] = (payload, cost)
        self._total_bytes += cost
        self.stats.inserts += 1
        self._evict_locked()
        self._peak_bytes = max(self._peak_bytes, self._total_bytes)

    # ------------------------------------------------------------------ #
    # Single-flight fills
    # ------------------------------------------------------------------ #

    def begin_fill(self, namespace: str, generation: int, segment_id: int) -> FillHandle:
        """Claim (or join) the decode of one possibly-cold segment.

        The single-flight miss protocol: a cached payload comes back as a
        ``"hit"`` handle; the first caller to miss becomes the ``"owner"``
        (counted as a miss) and must decode + :meth:`FillHandle.complete`;
        every concurrent caller missing the same key becomes a
        ``"waiter"`` (counted as a hit, plus ``stats.coalesced``) and
        blocks in :meth:`FillHandle.wait` instead of decoding the same
        bytes again.
        """
        key = (namespace, generation, segment_id)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return FillHandle(self, key, "hit", payload=entry[0])
            fill = self._fills.get(key)
            if fill is not None:
                self.stats.hits += 1
                self.stats.coalesced += 1
                return FillHandle(self, key, "waiter", fill=fill)
            fill = _InFlightFill()
            self._fills[key] = fill
            self.stats.misses += 1
            return FillHandle(self, key, "owner", fill=fill)

    def _finish_fill(
        self,
        key: _CacheKey,
        fill: _InFlightFill,
        payload: Optional[SegmentPayload] = None,
        error: Optional[BaseException] = None,
    ) -> None:
        with self._lock:
            if self._fills.get(key) is fill:
                del self._fills[key]
            if payload is not None and not fill.cancelled:
                self._admit_locked(key, payload)
            fill.payload = payload
            fill.error = error
        fill.event.set()

    def _evict_locked(self) -> None:
        while self._entries and (
            self._total_bytes > self._max_bytes
            or (self._max_entries is not None and len(self._entries) > self._max_entries)
        ):
            _, (_, cost) = self._entries.popitem(last=False)
            self._total_bytes -= cost
            self.stats.evictions += 1

    # ------------------------------------------------------------------ #
    # Invalidation
    # ------------------------------------------------------------------ #

    def invalidate(self, namespace: str) -> int:
        """Drop one store's entries (all generations); returns entries dropped.

        Called by the generation bump of ``compact``/``gc``, by
        ``clear_cache``, and by a server refresh that detected a
        recreated store directory.
        """
        dropped = 0
        with self._lock:
            for key in [k for k in self._entries if k[0] == namespace]:
                _, cost = self._entries.pop(key)
                self._total_bytes -= cost
                dropped += 1
            self.stats.invalidations += dropped
            # In-flight fills keep serving their waiters (segment ids are
            # never reused, so the decoded bytes are not stale), but their
            # results must not be admitted into the cache this
            # invalidation just cleared.
            for key, fill in self._fills.items():
                if key[0] == namespace:
                    fill.cancelled = True
        return dropped

    def cached_segments(self, namespace: str, generation: int) -> Dict[int, SegmentPayload]:
        """Snapshot of one store generation's cached payloads, by segment id."""
        with self._lock:
            return {
                key[2]: payload
                for key, (payload, _) in self._entries.items()
                if key[0] == namespace and key[1] == generation
            }


# ---------------------------------------------------------------------- #
# Pinned index generations
# ---------------------------------------------------------------------- #


@dataclass
class PinnerStats:
    """Observable counters of one :class:`IndexPinner`.

    Attributes:
        hits: Run-index loads served from a pinned generation (each one a
            base+delta merge, or a rebuild, that did not happen).
        misses: Loads that had to merge from disk.
        pins: Index generations admitted.
        evictions: Pins dropped for the entry bound.
        invalidations: Pins dropped explicitly (maintenance).
    """

    hits: int = 0
    misses: int = 0
    pins: int = 0
    evictions: int = 0
    invalidations: int = 0

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "pins": self.pins,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }


#: Pin key: (namespace, run id, base generation, delta generations, nodes).
_PinKey = Tuple[str, int, int, Tuple[int, ...], int]


class IndexPinner:
    """Keeps merged per-run index generations resident across store opens.

    A pin is keyed by the *exact* generation state the manifest names for
    the run -- ``(index_base, index_deltas, nodes)`` -- so a flush that
    appends a delta, a compaction that folds a base, or any rebuild makes
    the old pin unreachable by construction; the pinned
    :class:`StoreIndexes` is only ever returned for the generation it was
    merged from.  Pinned indexes are shared objects and therefore strictly
    read-only: only the read path (queries, the server) should pin.

    Args:
        max_runs: LRU bound on pinned runs (``None`` = unbounded; a
            server typically pins every run of its store).
    """

    def __init__(self, max_runs: Optional[int] = None) -> None:
        self._max_runs = max_runs
        self._lock = threading.Lock()
        self._pins: "OrderedDict[_PinKey, StoreIndexes]" = OrderedDict()
        self.stats = PinnerStats()

    def __len__(self) -> int:
        return len(self._pins)

    def get(
        self,
        namespace: str,
        run_id: int,
        base: int,
        deltas: Iterable[int],
        nodes: int,
    ) -> Optional[StoreIndexes]:
        """Return the pinned indexes for this exact generation, or ``None``."""
        key = (namespace, run_id, base, tuple(deltas), nodes)
        with self._lock:
            pinned = self._pins.get(key)
            if pinned is None:
                self.stats.misses += 1
                return None
            self._pins.move_to_end(key)
            self.stats.hits += 1
            return pinned

    def put(
        self,
        namespace: str,
        run_id: int,
        base: int,
        deltas: Iterable[int],
        nodes: int,
        indexes: StoreIndexes,
    ) -> None:
        """Pin one merged generation (superseding any older pin of the run)."""
        key = (namespace, run_id, base, tuple(deltas), nodes)
        with self._lock:
            # One pin per run: an older generation of the same run is
            # unreachable anyway, so drop it rather than letting it age out.
            for stale in [
                k for k in self._pins if k[0] == namespace and k[1] == run_id and k != key
            ]:
                del self._pins[stale]
                self.stats.invalidations += 1
            self._pins[key] = indexes
            self._pins.move_to_end(key)
            self.stats.pins += 1
            while self._max_runs is not None and len(self._pins) > self._max_runs:
                self._pins.popitem(last=False)
                self.stats.evictions += 1

    def invalidate(self, namespace: str, run_id: Optional[int] = None) -> int:
        """Drop a store's pins (or one run's); returns pins dropped."""
        dropped = 0
        with self._lock:
            for key in [
                k
                for k in self._pins
                if k[0] == namespace and (run_id is None or k[1] == run_id)
            ]:
                del self._pins[key]
                dropped += 1
            self.stats.invalidations += dropped
        return dropped

    def to_dict(self) -> dict:
        """Configuration + counters, for ``info --stats`` and the server."""
        return {
            "max_runs": self._max_runs,
            "pinned_runs": len(self._pins),
            **self.stats.to_dict(),
        }


# ---------------------------------------------------------------------- #
# Per-query read accounting
# ---------------------------------------------------------------------- #


@dataclass
class ReadScope:
    """Read accounting for one logical query (thread-safe).

    The store's :class:`~repro.store.store.StoreReadStats` is global to a
    store handle; a server answering many concurrent queries over one
    warm handle needs *per-query* numbers.  A scope is passed down the
    query engine's segment reads and collects exactly the work done on
    behalf of one query, no matter which pool thread performed it.
    """

    segments_read: int = 0
    bytes_read: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    #: Snapshot refreshes this query triggered (``follow`` mode readers
    #: picking up newly logged segments before answering).
    snapshot_refreshes: int = 0
    #: Whether the answer was computed without some of its segments --
    #: quarantined ones a query skipped rather than aborting, the
    #: store-level analogue of the cluster's ``missing_shards``.
    degraded: bool = False
    #: The quarantined segment ids the query skipped.
    quarantined_segments: Set[int] = field(default_factory=set)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record_hit(self, count: int = 1) -> None:
        with self._lock:
            self.cache_hits += count

    def record_miss(self, data_bytes: int) -> None:
        with self._lock:
            self.cache_misses += 1
            self.segments_read += 1
            self.bytes_read += data_bytes

    def record_refresh(self) -> None:
        with self._lock:
            self.snapshot_refreshes += 1

    def record_quarantined(self, segment_ids: Iterable[int]) -> None:
        """Mark the answer degraded: these segments were skipped as damaged."""
        with self._lock:
            added = {int(segment_id) for segment_id in segment_ids}
            if added:
                self.quarantined_segments |= added
                self.degraded = True

    def absorb(self, stats: dict) -> None:
        """Fold another scope's counters into this one.

        ``stats`` is a :meth:`to_dict`-shaped mapping -- typically the
        per-query ``stats`` object a store server attached to a response.
        A cluster router folds every shard's numbers into one scope so a
        scatter-gathered query reports cluster-wide read accounting in
        the same shape a single-store query does; unknown keys are
        ignored so older servers stay absorbable.
        """
        with self._lock:
            self.segments_read += int(stats.get("segments_read", 0))
            self.bytes_read += int(stats.get("bytes_read", 0))
            self.cache_hits += int(stats.get("cache_hits", 0))
            self.cache_misses += int(stats.get("cache_misses", 0))
            self.snapshot_refreshes += int(stats.get("snapshot_refreshes", 0))
            self.quarantined_segments |= {
                int(segment_id) for segment_id in stats.get("quarantined_segments", ())
            }
            self.degraded = self.degraded or bool(stats.get("degraded", False))

    def to_dict(self) -> dict:
        return {
            "segments_read": self.segments_read,
            "bytes_read": self.bytes_read,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "snapshot_refreshes": self.snapshot_refreshes,
            "degraded": self.degraded,
            "quarantined_segments": sorted(self.quarantined_segments),
        }

"""Segment payload codecs: how a batch of nodes+edges becomes bytes.

Store format 4 makes the payload encoding pluggable: every sealed segment
records which :class:`SegmentCodec` produced it (in its frame byte *and*
in the manifest), so one store can hold segments in different encodings
and still decode each one correctly -- the upgrade path that lets v2/v3
stores keep their JSON segments while new writes use the binary codec.

Three codecs exist:

* :class:`JsonSegmentCodec` (``"json"``) -- the v2/v3 payload: the v2 CPG
  serialization as JSON, lz-compressed inside the frame.  Readable and
  diffable, but decoding pays for lz decompression, JSON parsing, and
  dict-keyed field access on every node.
* :class:`BinarySegmentCodec` (``"binary"``, the v4 default) -- columnar
  struct-packed records: every integer column (thread ids, clocks, page
  sets, branch sites, edge endpoints) is one ``array('q')`` blob decoded
  with a single C call, and the few strings (sync operation names,
  ``started_by``/``ended_by``) go through an interned string table.
  Variable-length columns (clock entries, page sets, thunks, data-edge
  page lists) are length-prefixed per record.  The payload is *not*
  compressed: the store's lz codec is pure Python, and for this layout
  skipping it is both smaller on the encode path and much faster to
  decode -- the benchmark (``benchmarks/bench_store_queries.py``) keeps
  the decode-speed claim honest.
* :class:`ZlibBinarySegmentCodec` (``"binary-z"``, the v6 default) -- the
  same columnar payload with the plane block ``zlib``-compressed inside
  the frame.  The 8-byte integer columns are mostly small magnitudes, so
  DEFLATE wins the disk back from the uncompressed binary layout (below
  lz+JSON's footprint), and unlike the pure-Python lz codec ``zlib``
  releases the GIL and decompresses in C -- decode stays within a few
  milliseconds of the raw binary codec and parallel multi-segment sweeps
  can actually overlap.

Frame-level compression is a codec property (:meth:`SegmentCodec.compress_frame`
/ :meth:`SegmentCodec.decompress_frame`), so the framing layer in
:mod:`repro.store.segment` never special-cases a codec.

The module also provides the little-endian varint helpers the index
delta/base files (:mod:`repro.store.indexes`) share; those files are tiny,
so compactness wins over bulk decode speed there.
"""

from __future__ import annotations

import json
import struct
import sys
import zlib
from array import array
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.core.cpg import EdgeKind
from repro.core.serialization import (
    FORMAT_VERSION_V2,
    edge_from_dict,
    edge_to_dict,
    subcomputation_from_dict,
    subcomputation_to_dict,
)
from repro.core.thunk import BranchRecord, NodeId, SubComputation, Thunk
from repro.core.vector_clock import VectorClock
from repro.errors import StoreError

#: An edge as the store passes it around: ``(source, target, kind, attrs)``.
EdgeTuple = Tuple[NodeId, NodeId, EdgeKind, dict]

#: Stable one-byte encoding of :class:`EdgeKind` (order is part of the format).
KIND_TO_CODE = {EdgeKind.CONTROL: 0, EdgeKind.SYNC: 1, EdgeKind.DATA: 2}
CODE_TO_KIND = {code: kind for kind, code in KIND_TO_CODE.items()}


# ---------------------------------------------------------------------- #
# Varint helpers (shared with the index delta/base files)
# ---------------------------------------------------------------------- #


def zigzag(value: int) -> int:
    """Map a signed integer to an unsigned one (small magnitudes stay small)."""
    return value << 1 if value >= 0 else ((-value) << 1) - 1


def unzigzag(value: int) -> int:
    """Invert :func:`zigzag`."""
    return value >> 1 if value % 2 == 0 else -((value + 1) >> 1)


def write_uvarint(out: bytearray, value: int) -> None:
    """Append ``value`` (non-negative) as a LEB128 varint."""
    if value < 0:
        raise StoreError(f"cannot varint-encode negative value {value}")
    while value >= 0x80:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def read_uvarint(data, pos: int) -> Tuple[int, int]:
    """Read one LEB128 varint at ``pos``; returns ``(value, next_pos)``."""
    value = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise StoreError("truncated varint")
        byte = data[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if byte < 0x80:
            return value, pos
        shift += 7
        if shift > 70:
            raise StoreError("varint too long (corrupt stream)")


def write_svarint(out: bytearray, value: int) -> None:
    """Append a signed integer as a zigzag varint."""
    write_uvarint(out, zigzag(value))


def read_svarint(data, pos: int) -> Tuple[int, int]:
    """Read one zigzag varint; returns ``(value, next_pos)``."""
    raw, pos = read_uvarint(data, pos)
    return unzigzag(raw), pos


def write_string_table(out: bytearray, strings: Sequence[str]) -> None:
    """Append an interned string table (count, then len-prefixed UTF-8)."""
    write_uvarint(out, len(strings))
    for text in strings:
        raw = text.encode("utf-8")
        write_uvarint(out, len(raw))
        out.extend(raw)


def read_string_table(data, pos: int) -> Tuple[List[str], int]:
    """Invert :func:`write_string_table`."""
    count, pos = read_uvarint(data, pos)
    strings: List[str] = []
    for _ in range(count):
        length, pos = read_uvarint(data, pos)
        if pos + length > len(data):
            raise StoreError("truncated string table")
        strings.append(bytes(data[pos : pos + length]).decode("utf-8"))
        pos += length
    return strings, pos


class StringInterner:
    """Assigns dense ids to strings during encoding (0 is reserved for None)."""

    def __init__(self) -> None:
        self._ids: Dict[str, int] = {}
        self.strings: List[str] = []

    def ref(self, text) -> int:
        """Id of ``text`` + 1, or 0 for ``None``."""
        if text is None:
            return 0
        text = str(text)
        ident = self._ids.get(text)
        if ident is None:
            ident = len(self.strings)
            self._ids[text] = ident
            self.strings.append(text)
        return ident + 1


def deref(strings: Sequence[str], ref: int):
    """Invert :meth:`StringInterner.ref` (0 -> ``None``)."""
    if ref == 0:
        return None
    try:
        return strings[ref - 1]
    except IndexError as exc:
        raise StoreError(f"string reference {ref} outside table of {len(strings)}") from exc


# ---------------------------------------------------------------------- #
# Bulk int columns (the binary codec's workhorse)
# ---------------------------------------------------------------------- #

_NEEDS_SWAP = sys.byteorder != "little"
_U32 = struct.Struct("<I")


def _pack_q(values: Iterable[int]) -> bytes:
    column = array("q", values)
    if _NEEDS_SWAP:
        column.byteswap()
    return column.tobytes()


def _unpack_q(data: memoryview, pos: int, count: int) -> Tuple[array, int]:
    end = pos + 8 * count
    if end > len(data):
        raise StoreError("truncated int column (corrupt binary segment)")
    column = array("q")
    column.frombytes(bytes(data[pos:end]))
    if _NEEDS_SWAP:
        column.byteswap()
    return column, end


def _pack_u32(value: int) -> bytes:
    return _U32.pack(value)


def _unpack_u32(data: memoryview, pos: int) -> Tuple[int, int]:
    if pos + 4 > len(data):
        raise StoreError("truncated count field (corrupt binary segment)")
    return _U32.unpack_from(data, pos)[0], pos + 4


# ---------------------------------------------------------------------- #
# The codec interface
# ---------------------------------------------------------------------- #


class SegmentCodec:
    """Encode/decode one segment payload (the bytes inside the frame).

    Attributes:
        name: Codec name recorded in the manifest's segment table.
        frame_byte: Byte following the ``ISEG`` magic in the segment file;
            identifies the codec without consulting the manifest.
        framed_lz: Whether the frame stores the payload lz-compressed
            (the legacy JSON framing) or raw.  Kept for introspection;
            the framing layer goes through :meth:`compress_frame` /
            :meth:`decompress_frame` instead of consulting this flag.
    """

    name: str = ""
    frame_byte: int = 0
    framed_lz: bool = False

    def encode_payload(
        self, nodes: Sequence[SubComputation], edges: Sequence[EdgeTuple]
    ) -> bytes:
        raise NotImplementedError

    def decode_payload(self, raw: bytes) -> Tuple[List[SubComputation], List[EdgeTuple]]:
        raise NotImplementedError

    def compress_frame(self, raw: bytes) -> bytes:
        """Bytes stored inside the frame for the ``raw`` encoded payload.

        The base codec stores the payload verbatim; compressing codecs
        override this (and :meth:`decompress_frame`) as a pair.
        """
        return raw

    def decompress_frame(self, body: bytes) -> bytes:
        """Invert :meth:`compress_frame`.

        Raises:
            StoreError: If the stored body is corrupt.
        """
        return body


class JsonSegmentCodec(SegmentCodec):
    """The v2/v3 payload: the v2 CPG serialization as sorted-key JSON."""

    name = "json"
    frame_byte = 0x02  # the historical "ISEG\x02" frame
    framed_lz = True

    def compress_frame(self, raw: bytes) -> bytes:
        from repro.compression.lz import compress

        return compress(raw)

    def decompress_frame(self, body: bytes) -> bytes:
        from repro.compression.lz import decompress

        try:
            return decompress(body)
        except ValueError as exc:
            raise StoreError(f"corrupt segment payload: {exc}") from exc

    def encode_payload(
        self, nodes: Sequence[SubComputation], edges: Sequence[EdgeTuple]
    ) -> bytes:
        document = {
            "format_version": FORMAT_VERSION_V2,
            "kind": "cpg-segment",
            "nodes": [subcomputation_to_dict(node) for node in nodes],
            "edges": [
                edge_to_dict(source, target, {"kind": kind, **attrs}, version=FORMAT_VERSION_V2)
                for source, target, kind, attrs in edges
            ],
        }
        return json.dumps(document, sort_keys=True).encode("utf-8")

    def decode_payload(self, raw: bytes) -> Tuple[List[SubComputation], List[EdgeTuple]]:
        try:
            document = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise StoreError(f"segment payload is not valid JSON: {exc}") from exc
        if document.get("format_version") != FORMAT_VERSION_V2:
            raise StoreError(
                f"unsupported segment format version {document.get('format_version')!r}"
            )
        nodes = [subcomputation_from_dict(entry) for entry in document.get("nodes", ())]
        edges = [edge_from_dict(entry) for entry in document.get("edges", ())]
        return nodes, edges


#: Version byte heading the binary payload (bump on layout changes).
_BINARY_PAYLOAD_VERSION = 1


class BinarySegmentCodec(SegmentCodec):
    """Columnar struct-packed payload (the store format 4 default).

    Layout (all integer columns are little-endian 8-byte signed arrays)::

        u8   payload version
        -- interned string table (operation names, started_by/ended_by) --
        varint count; per string: varint byte length + UTF-8 bytes
        -- nodes, columnar --
        u32  node count N
        q[N] tid | q[N] index | q[N] faults
        q[N] started_by ref | q[N] ended_by ref          (0 = None)
        q[N] clock sizes  | q[2*sum] clock (tid, value) pairs, sorted by tid
        q[N] read sizes   | q[sum]   read pages, sorted
        q[N] write sizes  | q[sum]   write pages, sorted
        q[N] thunk counts | q[M] thunk index | q[M] instructions
                          | u8[M] branch flags | q[M] branch sites
        -- edges, columnar --
        u32  edge count E
        q[2E] source (tid, index) pairs | q[2E] target pairs | u8[E] kinds
        per sync edge (in edge order):  u8 has-object-id | q object id | q op ref
        per data edge (in edge order):  q page count     | q[...] pages, sorted

    Branch flags: bit 0 = thunk has a start branch, bit 1 = taken,
    bit 2 = indirect.  Sync object ids must be integers (or None); the
    JSON codec remains available for exotic payloads.
    """

    name = "binary"
    frame_byte = 0x03
    framed_lz = False

    def encode_payload(
        self, nodes: Sequence[SubComputation], edges: Sequence[EdgeTuple]
    ) -> bytes:
        interner = StringInterner()
        started = [interner.ref(node.started_by) for node in nodes]
        ended = [interner.ref(node.ended_by) for node in nodes]

        clock_sizes: List[int] = []
        clock_pairs: List[int] = []
        read_sizes: List[int] = []
        read_pages: List[int] = []
        write_sizes: List[int] = []
        write_pages: List[int] = []
        thunk_counts: List[int] = []
        thunk_indexes: List[int] = []
        thunk_instructions: List[int] = []
        thunk_flags = bytearray()
        thunk_sites: List[int] = []
        for node in nodes:
            clock = sorted(node.clock.as_dict().items())
            clock_sizes.append(len(clock))
            for tid, value in clock:
                clock_pairs.append(int(tid))
                clock_pairs.append(int(value))
            reads = sorted(node.read_set)
            read_sizes.append(len(reads))
            read_pages.extend(int(page) for page in reads)
            writes = sorted(node.write_set)
            write_sizes.append(len(writes))
            write_pages.extend(int(page) for page in writes)
            thunk_counts.append(len(node.thunks))
            for thunk in node.thunks:
                thunk_indexes.append(int(thunk.index))
                thunk_instructions.append(int(thunk.instructions))
                branch = thunk.start_branch
                if branch is None:
                    thunk_flags.append(0)
                    thunk_sites.append(0)
                else:
                    thunk_flags.append(
                        1 | (2 if branch.taken else 0) | (4 if branch.is_indirect else 0)
                    )
                    thunk_sites.append(int(branch.site))

        endpoint_pairs: List[int] = []
        target_pairs: List[int] = []
        kind_codes = bytearray()
        sync_block = bytearray()
        data_sizes: List[int] = []
        data_pages: List[int] = []
        for source, target, kind, attrs in edges:
            try:
                kind_codes.append(KIND_TO_CODE[kind])
            except KeyError as exc:
                raise StoreError(f"unknown edge kind {kind!r}") from exc
            endpoint_pairs.extend((int(source[0]), int(source[1])))
            target_pairs.extend((int(target[0]), int(target[1])))
            if kind is EdgeKind.SYNC:
                object_id = attrs.get("object_id")
                if object_id is None:
                    sync_block += b"\x00" + _pack_q((0,))
                elif isinstance(object_id, int) and not isinstance(object_id, bool):
                    sync_block += b"\x01" + _pack_q((object_id,))
                else:
                    raise StoreError(
                        f"binary codec requires integer sync object ids, got {object_id!r} "
                        f"(use the json codec for this payload)"
                    )
                sync_block += _pack_q((interner.ref(attrs.get("operation", "")),))
            elif kind is EdgeKind.DATA:
                pages = sorted(attrs.get("pages", ()))
                data_sizes.append(len(pages))
                data_pages.extend(int(page) for page in pages)

        out = bytearray()
        out.append(_BINARY_PAYLOAD_VERSION)
        write_string_table(out, interner.strings)
        out += _pack_u32(len(nodes))
        out += _pack_q(node.tid for node in nodes)
        out += _pack_q(node.index for node in nodes)
        out += _pack_q(node.faults for node in nodes)
        out += _pack_q(started)
        out += _pack_q(ended)
        out += _pack_q(clock_sizes)
        out += _pack_q(clock_pairs)
        out += _pack_q(read_sizes)
        out += _pack_q(read_pages)
        out += _pack_q(write_sizes)
        out += _pack_q(write_pages)
        out += _pack_q(thunk_counts)
        out += _pack_q(thunk_indexes)
        out += _pack_q(thunk_instructions)
        out += bytes(thunk_flags)
        out += _pack_q(thunk_sites)
        out += _pack_u32(len(edges))
        out += _pack_q(endpoint_pairs)
        out += _pack_q(target_pairs)
        out += bytes(kind_codes)
        out += bytes(sync_block)
        out += _pack_q(data_sizes)
        out += _pack_q(data_pages)
        return bytes(out)

    def decode_payload(self, raw: bytes) -> Tuple[List[SubComputation], List[EdgeTuple]]:
        data = memoryview(raw)
        if len(data) < 1:
            raise StoreError("empty binary segment payload")
        if data[0] != _BINARY_PAYLOAD_VERSION:
            raise StoreError(f"unsupported binary segment payload version {data[0]}")
        strings, pos = read_string_table(data, 1)

        node_count, pos = _unpack_u32(data, pos)
        tids, pos = _unpack_q(data, pos, node_count)
        indexes, pos = _unpack_q(data, pos, node_count)
        faults, pos = _unpack_q(data, pos, node_count)
        started, pos = _unpack_q(data, pos, node_count)
        ended, pos = _unpack_q(data, pos, node_count)
        clock_sizes, pos = _unpack_q(data, pos, node_count)
        clock_pairs, pos = _unpack_q(data, pos, 2 * sum(clock_sizes))
        read_sizes, pos = _unpack_q(data, pos, node_count)
        read_pages, pos = _unpack_q(data, pos, sum(read_sizes))
        write_sizes, pos = _unpack_q(data, pos, node_count)
        write_pages, pos = _unpack_q(data, pos, sum(write_sizes))
        thunk_counts, pos = _unpack_q(data, pos, node_count)
        thunk_total = sum(thunk_counts)
        thunk_indexes, pos = _unpack_q(data, pos, thunk_total)
        thunk_instructions, pos = _unpack_q(data, pos, thunk_total)
        if pos + thunk_total > len(data):
            raise StoreError("truncated branch flags (corrupt binary segment)")
        thunk_flags = bytes(data[pos : pos + thunk_total])
        pos += thunk_total
        thunk_sites, pos = _unpack_q(data, pos, thunk_total)

        nodes: List[SubComputation] = []
        clock_at = read_at = write_at = thunk_at = 0
        for position in range(node_count):
            size = clock_sizes[position]
            clock = {
                clock_pairs[2 * (clock_at + entry)]: clock_pairs[2 * (clock_at + entry) + 1]
                for entry in range(size)
            }
            clock_at += size
            node = SubComputation(
                tid=tids[position],
                index=indexes[position],
                clock=VectorClock(clock),
                started_by=deref(strings, started[position]),
                ended_by=deref(strings, ended[position]),
                faults=faults[position],
            )
            size = read_sizes[position]
            node.read_set.update(read_pages[read_at : read_at + size])
            read_at += size
            size = write_sizes[position]
            node.write_set.update(write_pages[write_at : write_at + size])
            write_at += size
            for entry in range(thunk_counts[position]):
                flags = thunk_flags[thunk_at + entry]
                branch = (
                    BranchRecord(
                        site=thunk_sites[thunk_at + entry],
                        taken=bool(flags & 2),
                        is_indirect=bool(flags & 4),
                    )
                    if flags & 1
                    else None
                )
                node.thunks.append(
                    Thunk(
                        index=thunk_indexes[thunk_at + entry],
                        start_branch=branch,
                        instructions=thunk_instructions[thunk_at + entry],
                    )
                )
            thunk_at += thunk_counts[position]
            nodes.append(node)

        edge_count, pos = _unpack_u32(data, pos)
        sources, pos = _unpack_q(data, pos, 2 * edge_count)
        targets, pos = _unpack_q(data, pos, 2 * edge_count)
        if pos + edge_count > len(data):
            raise StoreError("truncated edge kinds (corrupt binary segment)")
        kind_codes = bytes(data[pos : pos + edge_count])
        pos += edge_count
        sync_fields: List[Tuple[object, str]] = []
        for code in kind_codes:
            if code == KIND_TO_CODE[EdgeKind.SYNC]:
                if pos + 17 > len(data):
                    raise StoreError("truncated sync edge block (corrupt binary segment)")
                has_object = data[pos]
                object_column, next_pos = _unpack_q(data, pos + 1, 1)
                ref_column, next_pos = _unpack_q(data, next_pos, 1)
                operation = deref(strings, ref_column[0])
                sync_fields.append(
                    (object_column[0] if has_object else None, operation if operation is not None else "")
                )
                pos = next_pos
        data_count = sum(1 for code in kind_codes if code == KIND_TO_CODE[EdgeKind.DATA])
        data_sizes, pos = _unpack_q(data, pos, data_count)
        data_pages, pos = _unpack_q(data, pos, sum(data_sizes))

        edges: List[EdgeTuple] = []
        sync_at = data_at = page_at = 0
        for position, code in enumerate(kind_codes):
            try:
                kind = CODE_TO_KIND[code]
            except KeyError as exc:
                raise StoreError(f"unknown edge kind code {code}") from exc
            source = (sources[2 * position], sources[2 * position + 1])
            target = (targets[2 * position], targets[2 * position + 1])
            attrs: dict = {}
            if kind is EdgeKind.SYNC:
                object_id, operation = sync_fields[sync_at]
                sync_at += 1
                attrs = {"object_id": object_id, "operation": operation}
            elif kind is EdgeKind.DATA:
                size = data_sizes[data_at]
                data_at += 1
                attrs = {"pages": frozenset(data_pages[page_at : page_at + size])}
                page_at += size
            edges.append((source, target, kind, attrs))
        return nodes, edges


class ZlibBinarySegmentCodec(BinarySegmentCodec):
    """The columnar payload with its plane block zlib-compressed (v6 default).

    The payload layout is byte-for-byte :class:`BinarySegmentCodec`'s; only
    the frame body differs: the whole columnar plane block goes through one
    ``zlib.compress`` call.  DEFLATE over the mostly-small-magnitude 8-byte
    columns wins back the disk the uncompressed binary layout gave up
    (below the lz+JSON footprint on the bench workload), and the single C
    call releases the GIL -- so multi-segment sweeps can overlap decodes
    across threads, which the pure-Python lz codec never could.

    Attributes:
        compress_level: zlib level used for new frames (1-9; default 6).
            Mutable so the CLI's ``--compress-level`` can trade encode
            time for disk without a new codec registration; decoding is
            level-agnostic.
    """

    name = "binary-z"
    frame_byte = 0x04
    framed_lz = False

    def __init__(self, compress_level: int = 6) -> None:
        self.compress_level = compress_level

    def compress_frame(self, raw: bytes) -> bytes:
        return zlib.compress(raw, self.compress_level)

    def decompress_frame(self, body: bytes) -> bytes:
        try:
            return zlib.decompress(body)
        except zlib.error as exc:
            raise StoreError(f"corrupt compressed segment payload: {exc}") from exc


#: The codecs this build can read and write, by name.
CODECS: Dict[str, SegmentCodec] = {
    codec.name: codec
    for codec in (JsonSegmentCodec(), BinarySegmentCodec(), ZlibBinarySegmentCodec())
}

#: What new segments are encoded with unless the caller overrides it.
DEFAULT_CODEC = ZlibBinarySegmentCodec.name

_BY_FRAME_BYTE = {codec.frame_byte: codec for codec in CODECS.values()}

#: High bit of the frame byte: the frame carries a CRC32 of the codec body
#: between the raw-length field and the body (verified on decode).  Frames
#: without the flag -- everything written before the integrity layer --
#: stay readable and are reported as ``unverified`` by fsck/scrub.
CRC_FRAME_FLAG = 0x80


def codec_by_name(name: str) -> SegmentCodec:
    """The codec registered as ``name``.

    Raises:
        StoreError: For a codec this build does not know.
    """
    try:
        return CODECS[name]
    except KeyError as exc:
        known = ", ".join(sorted(CODECS))
        raise StoreError(f"unknown segment codec {name!r} (known codecs: {known})") from exc


def codec_by_frame_byte(frame_byte: int) -> SegmentCodec:
    """The codec whose segments carry ``frame_byte`` after the magic.

    The :data:`CRC_FRAME_FLAG` bit is not part of the codec identity and
    is masked off before the lookup.
    """
    base = frame_byte & ~CRC_FRAME_FLAG
    try:
        return _BY_FRAME_BYTE[base]
    except KeyError as exc:
        known = ", ".join(f"0x{byte:02x}" for byte in sorted(_BY_FRAME_BYTE))
        raise StoreError(
            f"unknown segment frame byte 0x{frame_byte:02x} (known: {known})"
        ) from exc


__all__ = [
    "CODECS",
    "CRC_FRAME_FLAG",
    "DEFAULT_CODEC",
    "BinarySegmentCodec",
    "EdgeTuple",
    "JsonSegmentCodec",
    "SegmentCodec",
    "StringInterner",
    "ZlibBinarySegmentCodec",
    "codec_by_frame_byte",
    "codec_by_name",
    "deref",
    "read_string_table",
    "read_svarint",
    "read_uvarint",
    "write_string_table",
    "write_svarint",
    "write_uvarint",
    "zigzag",
    "unzigzag",
]

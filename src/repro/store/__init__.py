"""Persistent provenance store: durable, queryable CPGs that outlive the run.

The paper's case studies all query the Concurrent Provenance Graph *after*
the traced execution; this package is the storage layer that makes that
possible without keeping the graph in RAM or re-running the workload.  It
provides:

* :class:`~repro.store.store.ProvenanceStore` -- an append-only, segmented,
  lz-compressed on-disk format with page/thread/sync secondary indexes;
* :class:`~repro.store.query.StoreQueryEngine` -- slices, lineage, and
  taint propagation that load only the index-selected subgraph;
* :class:`~repro.store.sink.StoreSink` -- incremental ingestion of a
  running execution, one segment per epoch;
* ``python -m repro.store`` -- the ``ingest`` / ``info`` / ``slice`` /
  ``taint`` command-line surface.
"""

from repro.errors import StoreError
from repro.store.format import (
    DEFAULT_SEGMENT_NODES,
    STORE_FORMAT_VERSION,
    SegmentInfo,
    StoreManifest,
)
from repro.store.indexes import StoreIndexes
from repro.store.query import StoreQueryEngine
from repro.store.sink import StoreSink
from repro.store.store import ProvenanceStore, StoreReadStats

__all__ = [
    "DEFAULT_SEGMENT_NODES",
    "STORE_FORMAT_VERSION",
    "ProvenanceStore",
    "SegmentInfo",
    "StoreError",
    "StoreIndexes",
    "StoreManifest",
    "StoreQueryEngine",
    "StoreReadStats",
    "StoreSink",
]

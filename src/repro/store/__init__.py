"""Persistent provenance store: durable, queryable CPGs that outlive the run.

The paper's case studies all query the Concurrent Provenance Graph *after*
the traced execution; this package is the storage layer that makes that
possible without keeping the graph in RAM or re-running the workload.
Provenance is a longitudinal record: one store holds **many traced runs**
(each run a separate node-id namespace), so the same store answers "what
happened in this run", "what happened in every run", and "what changed
between these two runs".  It provides:

* :class:`~repro.store.store.ProvenanceStore` -- an append-only, segmented
  on-disk format (format 6) whose segment payloads go through a pluggable
  codec (:mod:`repro.store.codecs`; zlib-compressed columnar binary by
  default, uncompressed binary and JSON for back-compat), with per-run
  page/thread/sync secondary indexes flushed as
  append-only delta files and every flush committed as one O(epoch)
  record appended to the segment log (:mod:`repro.store.log`; the
  manifest is a periodic checkpoint replayed over on open), plus
  run-scoped maintenance (``compact`` stream-rewrites a run's segments
  and folds its index deltas, ``gc`` drops superseded runs), all
  crash-consistent through the checkpoint + log-replay commit protocol;
* :class:`~repro.store.query.StoreQueryEngine` -- slices, lineage, and
  taint propagation that load only the index-selected subgraph, within a
  run, across all runs, or diffed between two runs
  (:meth:`~repro.store.query.StoreQueryEngine.compare_lineage`);
* :class:`~repro.store.sink.StoreSink` /
  :class:`~repro.store.sink.RemoteStoreSink` -- incremental ingestion of
  a running execution, one segment per epoch, one run per sink, into a
  local directory or over TCP to a writable server;
* :mod:`repro.store.cache` -- the hot read path: a byte-budgeted LRU of
  decoded segments (:class:`~repro.store.cache.SegmentCache`) and pinned
  per-run index generations (:class:`~repro.store.cache.IndexPinner`);
* :class:`~repro.store.server.StoreServer` /
  :class:`~repro.store.server.StoreClient` -- a long-lived warm query
  server (snapshot-at-open with opt-in follow-mode bounded staleness,
  concurrent read-only queries, per-query stats, optional remote ingest,
  live-tail ``watch`` streams) and its retrying client;
* :class:`~repro.store.cluster.StoreCluster` /
  :class:`~repro.store.shard.ClusterManifest` -- horizontal reads: a
  scatter-gather router mapping runs onto shards (each an ordinary
  store server, with read replicas) behind a ``cluster.json`` manifest,
  answering every engine query identically to the unsharded engine,
  with per-shard fan-out telemetry and a configurable degraded-read
  policy when a shard is down;
* :mod:`repro.store.gate` / :mod:`repro.store.autopilot` /
  :mod:`repro.store.fleet` -- the continuous-provenance operations
  layer: blessed :class:`~repro.store.gate.ProvenanceBaseline`
  snapshots gating later runs on provenance drift, a declarative
  maintenance daemon scheduling compact/gc/scrub from policy, and a
  run-fleet generator with population-level
  :func:`~repro.store.fleet.drift_report` comparisons;
* ``python -m repro.store`` -- the ``ingest`` / ``info`` / ``runs`` /
  ``slice`` / ``lineage`` / ``taint`` / ``compact`` / ``gc`` /
  ``bless`` / ``check`` / ``autopilot`` / ``serve``
  / ``watch`` / ``cluster serve|query|status`` command-line surface.

The whole reproduction's module map lives in ``docs/architecture.md``;
this package's own design notes are in ``docs/store.md``.
"""

from repro.errors import (
    CorruptSegmentError,
    StoreError,
    StoreReadOnlyError,
    StoreUnreachableError,
)
from repro.store.autopilot import Autopilot, AutopilotDaemon, AutopilotPolicy, Decision
from repro.store.cache import (
    DEFAULT_CACHE_BYTES,
    CacheStats,
    IndexPinner,
    PinnerStats,
    ReadScope,
    SegmentCache,
)
from repro.store.cluster import (
    ClusterService,
    InProcessShardClient,
    ShardDownError,
    StoreCluster,
)
from repro.store.codecs import CODECS, DEFAULT_CODEC, SegmentCodec
from repro.store.format import (
    DEFAULT_CHECKPOINT_INTERVAL,
    DEFAULT_SEGMENT_NODES,
    SEGMENT_LOG_NAME,
    STORE_FORMAT_VERSION,
    STORE_FORMAT_VERSION_V2,
    STORE_FORMAT_VERSION_V3,
    STORE_FORMAT_VERSION_V4,
    STORE_FORMAT_VERSION_V5,
    RunInfo,
    SegmentInfo,
    StoreManifest,
)
from repro.store.fleet import FleetResult, FleetSpec, drift_report, run_fleet
from repro.store.gate import (
    GateReport,
    ProvenanceBaseline,
    bless_baseline,
    check_against_baseline,
    list_baselines,
)
from repro.store.indexes import StoreIndexes
from repro.store.integrity import scrub, verify_store
from repro.store.log import SegmentLog
from repro.store.query import LineageDiff, StoreQueryEngine
from repro.store.server import StoreClient, StoreServer
from repro.store.shard import PAGE_HASH_BUCKETS, ClusterManifest, Endpoint, ShardInfo, page_bucket
from repro.store.sink import RemoteStoreSink, StoreSink
from repro.store.store import MaintenanceStats, ProvenanceStore, StoreReadStats

__all__ = [
    "CODECS",
    "DEFAULT_CACHE_BYTES",
    "DEFAULT_CHECKPOINT_INTERVAL",
    "DEFAULT_CODEC",
    "DEFAULT_SEGMENT_NODES",
    "SEGMENT_LOG_NAME",
    "STORE_FORMAT_VERSION",
    "STORE_FORMAT_VERSION_V2",
    "STORE_FORMAT_VERSION_V3",
    "STORE_FORMAT_VERSION_V4",
    "STORE_FORMAT_VERSION_V5",
    "PAGE_HASH_BUCKETS",
    "Autopilot",
    "AutopilotDaemon",
    "AutopilotPolicy",
    "CacheStats",
    "ClusterManifest",
    "CorruptSegmentError",
    "ClusterService",
    "Decision",
    "Endpoint",
    "FleetResult",
    "FleetSpec",
    "GateReport",
    "IndexPinner",
    "InProcessShardClient",
    "LineageDiff",
    "PinnerStats",
    "ReadScope",
    "SegmentCache",
    "SegmentCodec",
    "SegmentLog",
    "MaintenanceStats",
    "ProvenanceBaseline",
    "ProvenanceStore",
    "RemoteStoreSink",
    "RunInfo",
    "SegmentInfo",
    "ShardDownError",
    "ShardInfo",
    "StoreClient",
    "StoreCluster",
    "StoreError",
    "StoreIndexes",
    "StoreManifest",
    "StoreQueryEngine",
    "StoreReadOnlyError",
    "StoreReadStats",
    "StoreServer",
    "StoreSink",
    "StoreUnreachableError",
    "bless_baseline",
    "check_against_baseline",
    "drift_report",
    "list_baselines",
    "page_bucket",
    "run_fleet",
    "scrub",
    "verify_store",
]

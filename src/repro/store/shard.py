"""Shard manifests: how a store cluster describes itself on disk.

A cluster is a set of ordinary single-store servers (shards) plus one
JSON file -- ``cluster.json`` -- that says which shard answers for which
run.  The manifest is deliberately dumb: it holds addresses, paths,
replica lists, and the run-assignment policy, and nothing else.  All the
scatter/gather machinery lives in :mod:`repro.store.cluster`; everything
here is loadable without touching any store.

Two assignment policies exist:

``manual``
    An explicit table mapping every *cluster* run id to ``(shard id,
    local run id)``.  The cluster's run set is exactly the table's keys;
    runs a shard store happens to hold beyond the table are invisible
    through the router.  Local ids default to the cluster id, but may
    differ -- a shard built by re-ingesting a subset of runs mints its
    own ids, and the table is where that translation lives.

``run-hash``
    Shard ``run_id % len(shards)`` answers for ``run_id``; local ids are
    the cluster ids (the stores must have been split while preserving run
    ids -- ``gc(runs=...)`` on copies does exactly that).  The cluster's
    run set is discovered from the shards at query time.

Shards may additionally declare a **page-hash range**: a half-open
``[lo, hi)`` interval over :data:`PAGE_HASH_BUCKETS` buckets promising
that every page this shard's runs ever touched hashes into the interval.
The promise is the operator's (the manifest cannot check it); when
present, the router uses it to skip shards that provably cannot touch a
cross-run page query.  :func:`page_bucket` is a fixed integer mix --
never Python's ``hash()`` -- so the contract means the same thing in
every process that ever reads the manifest.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import StoreError

#: Buckets of the page-hash space shards may claim ranges over.
PAGE_HASH_BUCKETS = 1024

#: Knuth's multiplicative constant (2^32 / phi); the mix must be stable
#: across processes and Python versions, which rules out ``hash()``.
_PAGE_MIX = 2654435761

#: The manifest file a cluster directory is named after.
CLUSTER_MANIFEST_NAME = "cluster.json"

CLUSTER_SCHEMA = 1

#: The assignment policies a manifest may declare.
POLICIES = ("manual", "run-hash")


def page_bucket(page: int, buckets: int = PAGE_HASH_BUCKETS) -> int:
    """Deterministic bucket of a page id in ``[0, buckets)``.

    High bits of a Knuth multiplicative mix: uniform for sequential page
    ids (which real page sets are), identical in every process.
    """
    return ((int(page) * _PAGE_MIX) & 0xFFFFFFFF) * buckets >> 32


@dataclass
class Endpoint:
    """One serveable copy of a shard's store: an address, a path, or both.

    ``address`` (``host:port``) is how the router reaches it; ``path`` is
    where its store directory lives, which is what ``cluster serve`` uses
    to host it in-process (writing the bound address back).
    """

    address: Optional[str] = None
    path: Optional[str] = None

    def to_dict(self) -> dict:
        return {"address": self.address, "path": self.path}

    @classmethod
    def from_dict(cls, raw) -> "Endpoint":
        if isinstance(raw, str):
            return cls(address=raw)  # bare-address shorthand
        return cls(address=raw.get("address"), path=raw.get("path"))


@dataclass
class ShardInfo:
    """One shard: a primary endpoint, read replicas, an optional page range.

    Attributes:
        shard_id: The shard's name in the manifest (any string).
        primary: The endpoint the router tries first.
        replicas: Further endpoints holding the same store, tried in
            order when the primary is unreachable.
        page_hash_range: Optional ``(lo, hi)`` half-open bucket interval
            (see the module docstring) letting cross-run queries skip
            this shard when no queried page hashes into it.
    """

    shard_id: str
    primary: Endpoint
    replicas: List[Endpoint] = field(default_factory=list)
    page_hash_range: Optional[Tuple[int, int]] = None

    def endpoints(self) -> List[Endpoint]:
        """Primary first, then replicas -- the router's failover order."""
        return [self.primary] + list(self.replicas)

    def may_touch_pages(self, pages: Iterable[int]) -> bool:
        """Whether this shard's declared page range admits any of ``pages``.

        Always true without a declared range: no promise, no pruning.
        """
        if self.page_hash_range is None:
            return True
        lo, hi = self.page_hash_range
        return any(lo <= page_bucket(page) < hi for page in pages)

    def to_dict(self) -> dict:
        raw = {
            "id": self.shard_id,
            "address": self.primary.address,
            "path": self.primary.path,
            "replicas": [endpoint.to_dict() for endpoint in self.replicas],
        }
        if self.page_hash_range is not None:
            raw["page_hash_range"] = list(self.page_hash_range)
        return raw

    @classmethod
    def from_dict(cls, raw: dict) -> "ShardInfo":
        if "id" not in raw:
            raise StoreError("cluster manifest shard entry is missing its 'id'")
        page_range = raw.get("page_hash_range")
        if page_range is not None:
            lo, hi = int(page_range[0]), int(page_range[1])
            if not (0 <= lo < hi <= PAGE_HASH_BUCKETS):
                raise StoreError(
                    f"shard {raw['id']!r} page_hash_range {page_range!r} is not a "
                    f"half-open interval within [0, {PAGE_HASH_BUCKETS})"
                )
            page_range = (lo, hi)
        return cls(
            shard_id=str(raw["id"]),
            primary=Endpoint(address=raw.get("address"), path=raw.get("path")),
            replicas=[Endpoint.from_dict(entry) for entry in raw.get("replicas", [])],
            page_hash_range=page_range,
        )


@dataclass
class RunAssignment:
    """Where one cluster run lives: a shard, and its id *on* that shard."""

    shard_id: str
    local_run: int


class ClusterManifest:
    """The parsed ``cluster.json``: shards, policy, run assignments.

    Args:
        shards: The cluster's shards, in manifest order (``run-hash``
            assigns by position, so order is part of the cluster's
            identity under that policy).
        policy: ``"manual"`` or ``"run-hash"`` (see the module docstring).
        assignments: The manual policy's run table (cluster run id ->
            :class:`RunAssignment`); must be empty under ``run-hash``.
        path: Where the manifest was loaded from / saves to (optional --
            a manifest may live purely in memory, e.g. in tests).
    """

    def __init__(
        self,
        shards: List[ShardInfo],
        policy: str = "manual",
        assignments: Optional[Dict[int, RunAssignment]] = None,
        path: Optional[str] = None,
    ) -> None:
        if policy not in POLICIES:
            raise StoreError(
                f"unknown cluster policy {policy!r} (known: {', '.join(POLICIES)})"
            )
        if not shards:
            raise StoreError("a cluster manifest needs at least one shard")
        seen = set()
        for shard in shards:
            if shard.shard_id in seen:
                raise StoreError(f"duplicate shard id {shard.shard_id!r} in cluster manifest")
            seen.add(shard.shard_id)
        self.shards = list(shards)
        self.policy = policy
        self.assignments: Dict[int, RunAssignment] = dict(assignments or {})
        self.path = path
        if policy == "run-hash" and self.assignments:
            raise StoreError("the run-hash policy derives assignments; the table must be empty")
        for run_id, assignment in self.assignments.items():
            if assignment.shard_id not in seen:
                raise StoreError(
                    f"run {run_id} is assigned to unknown shard {assignment.shard_id!r}"
                )

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #

    def shard(self, shard_id: str) -> ShardInfo:
        for shard in self.shards:
            if shard.shard_id == shard_id:
                return shard
        known = ", ".join(s.shard_id for s in self.shards)
        raise StoreError(f"cluster has no shard {shard_id!r} (shards: {known})")

    def shard_for_run(self, run_id: int) -> Tuple[ShardInfo, int]:
        """The shard answering for cluster run ``run_id``, and its local id."""
        if self.policy == "run-hash":
            return self.shards[int(run_id) % len(self.shards)], int(run_id)
        assignment = self.assignments.get(int(run_id))
        if assignment is None:
            known = ", ".join(str(r) for r in sorted(self.assignments)) or "none"
            raise StoreError(
                f"cluster manifest assigns no shard to run {run_id} (assigned runs: {known})"
            )
        return self.shard(assignment.shard_id), assignment.local_run

    def assigned_runs(self, shard_id: str) -> Dict[int, int]:
        """Manual-policy runs of one shard: cluster run id -> local run id."""
        return {
            run_id: assignment.local_run
            for run_id, assignment in self.assignments.items()
            if assignment.shard_id == shard_id
        }

    def run_ids(self) -> List[int]:
        """The cluster's run set under the manual policy, in id order.

        Cluster run ids mint monotonically (they are store run ids, which
        never decrease), so ascending id order *is* mint order -- the
        order a single store's ``run_ids()`` would enumerate.  Under
        ``run-hash`` the set lives on the shards; the router discovers it.
        """
        if self.policy != "manual":
            raise StoreError("run-hash clusters discover their run set from the shards")
        return sorted(self.assignments)

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #

    def assign(self, run_id: int, shard_id: str, local_run: Optional[int] = None) -> None:
        """Record that cluster run ``run_id`` lives on ``shard_id``."""
        if self.policy != "manual":
            raise StoreError("the run-hash policy derives assignments; nothing to assign")
        self.shard(shard_id)  # validates
        self.assignments[int(run_id)] = RunAssignment(
            shard_id=shard_id,
            local_run=int(run_id) if local_run is None else int(local_run),
        )

    def promote(self, shard_id: str, address: str) -> None:
        """Make the replica at ``address`` the shard's primary.

        The old primary joins the replica list (first, so a failed
        promotion is one more promote away from undone).  The router
        re-reads endpoint order per request, so promotion takes effect on
        the next query.
        """
        shard = self.shard(shard_id)
        for index, replica in enumerate(shard.replicas):
            if replica.address == address:
                shard.replicas.pop(index)
                shard.replicas.insert(0, shard.primary)
                shard.primary = replica
                return
        known = ", ".join(str(r.address) for r in shard.replicas) or "none"
        raise StoreError(
            f"shard {shard_id!r} has no replica at {address!r} (replicas: {known})"
        )

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #

    def to_dict(self) -> dict:
        return {
            "schema": CLUSTER_SCHEMA,
            "policy": self.policy,
            "shards": [shard.to_dict() for shard in self.shards],
            "assignments": {
                str(run_id): {"shard": a.shard_id, "local_run": a.local_run}
                for run_id, a in sorted(self.assignments.items())
            },
        }

    def save(self, path: Optional[str] = None) -> str:
        """Write the manifest atomically; returns the path written."""
        target = path or self.path
        if target is None:
            raise StoreError("this cluster manifest has no path to save to")
        parent = os.path.dirname(os.path.abspath(target))
        os.makedirs(parent, exist_ok=True)
        tmp = target + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, target)
        self.path = target
        return target

    @classmethod
    def from_dict(cls, raw: dict, path: Optional[str] = None) -> "ClusterManifest":
        if not isinstance(raw, dict):
            raise StoreError("cluster manifest must be a JSON object")
        schema = raw.get("schema", CLUSTER_SCHEMA)
        if schema != CLUSTER_SCHEMA:
            raise StoreError(
                f"unsupported cluster manifest schema {schema!r} "
                f"(this build reads schema {CLUSTER_SCHEMA})"
            )
        assignments = {}
        for run_text, entry in (raw.get("assignments") or {}).items():
            assignments[int(run_text)] = RunAssignment(
                shard_id=str(entry["shard"]),
                local_run=int(entry.get("local_run", int(run_text))),
            )
        return cls(
            shards=[ShardInfo.from_dict(entry) for entry in raw.get("shards", [])],
            policy=str(raw.get("policy", "manual")),
            assignments=assignments,
            path=path,
        )

    @classmethod
    def load(cls, path: str) -> "ClusterManifest":
        """Read ``cluster.json`` (or a directory containing one)."""
        if os.path.isdir(path):
            path = os.path.join(path, CLUSTER_MANIFEST_NAME)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                raw = json.load(handle)
        except OSError as exc:
            raise StoreError(f"cannot read cluster manifest {path!r}: {exc}") from exc
        except ValueError as exc:
            raise StoreError(f"cluster manifest {path!r} is not valid JSON: {exc}") from exc
        return cls.from_dict(raw, path=path)

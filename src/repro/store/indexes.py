"""Secondary indexes of the persistent provenance store.

The indexes are the in-memory part of the out-of-core design: they are
small (node ids and page numbers, no read/write sets, no thunks), and
every query starts here to decide which segments are worth loading.

One :class:`StoreIndexes` instance covers one **run**: node ids
``(tid, index)`` are only unique within a run, so the store keeps a
separate index namespace per run, persisted under ``index/run-<id>/``.

Five index families exist:

* **nodes** -- node id -> owning segment and topological rank.  The rank is
  the node's position in the ingest order, which every ingest path keeps a
  linear extension of the CPG's control+sync partial order; the taint
  replay sorts by it.
* **pages** -- page -> writer/reader node ids (the same inverted index
  :func:`repro.core.queries.build_page_index` computes in memory).
* **threads** -- thread id -> its sub-computation indexes and segments.
* **sync** -- synchronization object id -> recorded release->acquire edges.
* **edges** -- node id -> segments holding its incoming / outgoing edges.

Persistence (store format 4) is **append-only**: every
:meth:`~StoreIndexes.add_node` / :meth:`~StoreIndexes.add_edge` call is
journalled as a pending *op*, and a flush writes just the ops since the
previous flush as one binary ``delta-<gen>.bin`` file -- O(epoch), not
O(index).  Opening a run loads its folded ``base-<gen>.bin`` (if any) and
replays the pending deltas in generation order; compaction folds the
deltas back into a fresh base.  The v2/v3 whole-index JSON files
(``nodes.json``, ``pages.json``, ...) remain readable through
:meth:`StoreIndexes.load` / writable through :meth:`StoreIndexes.save`,
which is both the back-compat path and the baseline the flush benchmark
compares against.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.cpg import EdgeKind
from repro.core.serialization import node_key, parse_node_key
from repro.core.thunk import NodeId, SubComputation
from repro.errors import StoreError

from repro.store.codecs import (
    CODE_TO_KIND,
    KIND_TO_CODE,
    read_string_table,
    read_svarint,
    read_uvarint,
    write_string_table,
    write_svarint,
    write_uvarint,
    StringInterner,
    deref,
)
from repro.store.format import index_base_file_name, index_delta_file_name
from repro.store.segment import EdgeTuple

_NODES_FILE = "nodes.json"
_PAGES_FILE = "pages.json"
_THREADS_FILE = "threads.json"
_SYNC_FILE = "sync.json"
_EDGES_FILE = "edges.json"

#: The v2/v3 whole-index JSON files (swept once a run has a v4 base).
LEGACY_INDEX_FILES = (_NODES_FILE, _PAGES_FILE, _THREADS_FILE, _SYNC_FILE, _EDGES_FILE)

_INDEX_MAGIC = b"IIDX"
_INDEX_VERSION = 1
_FILE_KIND_BASE = 0
_FILE_KIND_DELTA = 1

_OP_NODE = 0
_OP_EDGE = 1


def _write_sorted_ints(out: bytearray, values: Sequence[int]) -> None:
    """Append a sorted int list as first-value + non-negative deltas."""
    write_uvarint(out, len(values))
    previous: Optional[int] = None
    for value in values:
        if previous is None:
            write_svarint(out, value)
        else:
            write_uvarint(out, value - previous)
        previous = value


def _read_sorted_ints(data, pos: int) -> Tuple[List[int], int]:
    count, pos = read_uvarint(data, pos)
    values: List[int] = []
    previous = 0
    for position in range(count):
        if position == 0:
            previous, pos = read_svarint(data, pos)
        else:
            delta, pos = read_uvarint(data, pos)
            previous += delta
        values.append(previous)
    return values, pos


def _write_node_id(out: bytearray, node_id: NodeId) -> None:
    write_svarint(out, node_id[0])
    write_uvarint(out, node_id[1])


def _read_node_id(data, pos: int) -> Tuple[NodeId, int]:
    tid, pos = read_svarint(data, pos)
    index, pos = read_uvarint(data, pos)
    return (tid, index), pos


class StoreIndexes:
    """All secondary indexes of one run, with load/save and query helpers."""

    def __init__(self) -> None:
        #: node key -> segment id
        self.node_segments: Dict[str, int] = {}
        #: node key -> topological rank (ingest order)
        self.node_topo: Dict[str, int] = {}
        #: page -> node keys that wrote it
        self.page_writers: Dict[int, List[str]] = {}
        #: page -> node keys that read it
        self.page_readers: Dict[int, List[str]] = {}
        #: tid -> sorted sub-computation indexes of the thread
        self.thread_indexes: Dict[int, List[int]] = {}
        #: tid -> segments holding the thread's nodes
        self.thread_segments: Dict[int, List[int]] = {}
        #: sync object id -> recorded release->acquire edges
        self.sync_edges: Dict[int, List[dict]] = {}
        #: node key -> segments holding edges that end at the node
        self.in_edge_segments: Dict[str, List[int]] = {}
        #: node key -> segments holding edges that start at the node
        self.out_edge_segments: Dict[str, List[int]] = {}
        #: Ops journalled since the last persisted generation (the next
        #: delta file's content).
        self._pending: List[tuple] = []
        #: Whether the in-memory state is not reproducible from the
        #: on-disk base+deltas (legacy load, rebuild from segments) and
        #: the next flush must therefore write a full base file.
        self.needs_base = False

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def add_node(self, segment_id: int, node: SubComputation, topo: int) -> None:
        """Register one stored sub-computation (journalled for the next delta)."""
        reads = sorted(node.read_set)
        writes = sorted(node.write_set)
        self._apply_node(segment_id, node.tid, node.index, topo, reads, writes)
        self._pending.append((_OP_NODE, segment_id, node.tid, node.index, topo, reads, writes))

    def add_edge(self, segment_id: int, edge: EdgeTuple) -> None:
        """Register one stored edge (journalled for the next delta)."""
        source, target, kind, attrs = edge
        object_id = attrs.get("object_id") if kind is EdgeKind.SYNC else None
        operation = str(attrs.get("operation", "")) if kind is EdgeKind.SYNC else None
        if object_id is not None:
            object_id = int(object_id)
        self._apply_edge(segment_id, source, target, kind, object_id, operation)
        self._pending.append(
            (_OP_EDGE, segment_id, source, target, KIND_TO_CODE[kind], object_id, operation)
        )

    def _apply_node(
        self,
        segment_id: int,
        tid: int,
        index: int,
        topo: int,
        read_pages: Sequence[int],
        write_pages: Sequence[int],
    ) -> None:
        key = node_key((tid, index))
        if key in self.node_segments:
            raise StoreError(f"node {key} ingested twice")
        self.node_segments[key] = segment_id
        self.node_topo[key] = topo
        for page in write_pages:
            self.page_writers.setdefault(page, []).append(key)
        for page in read_pages:
            self.page_readers.setdefault(page, []).append(key)
        indexes = self.thread_indexes.setdefault(tid, [])
        indexes.append(index)
        segments = self.thread_segments.setdefault(tid, [])
        if not segments or segments[-1] != segment_id:
            segments.append(segment_id)

    def _apply_edge(
        self,
        segment_id: int,
        source: NodeId,
        target: NodeId,
        kind: EdgeKind,
        object_id: Optional[int],
        operation: Optional[str],
    ) -> None:
        source_key, target_key = node_key(source), node_key(target)
        incoming = self.in_edge_segments.setdefault(target_key, [])
        if not incoming or incoming[-1] != segment_id:
            incoming.append(segment_id)
        outgoing = self.out_edge_segments.setdefault(source_key, [])
        if not outgoing or outgoing[-1] != segment_id:
            outgoing.append(segment_id)
        if kind is EdgeKind.SYNC and object_id is not None:
            self.sync_edges.setdefault(object_id, []).append(
                {
                    "source": source_key,
                    "target": target_key,
                    "operation": operation or "",
                    "segment": segment_id,
                }
            )

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def has_node(self, node_id: NodeId) -> bool:
        """Whether the store holds ``node_id``."""
        return node_key(node_id) in self.node_segments

    def segment_of(self, node_id: NodeId) -> int:
        """Segment holding ``node_id``'s record."""
        try:
            return self.node_segments[node_key(node_id)]
        except KeyError as exc:
            raise StoreError(f"no sub-computation {node_id} in the store") from exc

    def topo_of(self, node_id: NodeId) -> int:
        """Topological rank of ``node_id`` (ingest order)."""
        try:
            return self.node_topo[node_key(node_id)]
        except KeyError as exc:
            raise StoreError(f"no sub-computation {node_id} in the store") from exc

    def writers_of_page(self, page: int) -> List[NodeId]:
        """Node ids whose write set contains ``page``."""
        return [parse_node_key(key) for key in self.page_writers.get(page, ())]

    def readers_of_page(self, page: int) -> List[NodeId]:
        """Node ids whose read set contains ``page``."""
        return [parse_node_key(key) for key in self.page_readers.get(page, ())]

    def pages_written_by(self) -> Dict[NodeId, Set[int]]:
        """Invert the writer index: node id -> pages it wrote."""
        written: Dict[NodeId, Set[int]] = {}
        for page, keys in self.page_writers.items():
            for key in keys:
                written.setdefault(parse_node_key(key), set()).add(page)
        return written

    def pages_touched(self) -> Set[int]:
        """Every page some stored node read or wrote (the cross-run summary)."""
        return set(self.page_writers) | set(self.page_readers)

    def thread_nodes_from(self, tid: int, index: int) -> List[NodeId]:
        """Node ids ``(tid, i)`` with ``i >= index``, in execution order."""
        return [(tid, i) for i in self.thread_indexes.get(tid, ()) if i >= index]

    def in_segments(self, node_id: NodeId) -> List[int]:
        """Segments holding edges that end at ``node_id``."""
        return self.in_edge_segments.get(node_key(node_id), [])

    def out_segments(self, node_id: NodeId) -> List[int]:
        """Segments holding edges that start at ``node_id``."""
        return self.out_edge_segments.get(node_key(node_id), [])

    def nodes(self) -> List[NodeId]:
        """Every stored node id, sorted."""
        return sorted(parse_node_key(key) for key in self.node_segments)

    def is_consistent_with(self, valid_segments: Iterable[int], expected_nodes: int) -> bool:
        """Whether this index generation matches a manifest generation.

        The manifest is the store's commit point; this check detects index
        state that references segments the manifest never committed (the
        v2/v3 torn-flush window, or corrupt/stray v4 generation files),
        after which the run's indexes are rebuilt from its (committed,
        ground-truth) segments.  Cheap: in-memory set membership only, no
        segment I/O.
        """
        valid = set(valid_segments)
        if len(self.node_segments) != expected_nodes:
            return False
        if any(segment not in valid for segment in self.node_segments.values()):
            return False
        for segments in self.thread_segments.values():
            if any(segment not in valid for segment in segments):
                return False
        for edges in self.sync_edges.values():
            if any(edge.get("segment", 0) not in valid for edge in edges):
                return False
        for family in (self.in_edge_segments, self.out_edge_segments):
            for segments in family.values():
                if any(segment not in valid for segment in segments):
                    return False
        return True

    # ------------------------------------------------------------------ #
    # Persistence: v4 append-only deltas + folded base
    # ------------------------------------------------------------------ #

    @property
    def has_pending(self) -> bool:
        """Whether ops were journalled since the last persisted generation."""
        return bool(self._pending)

    def clear_pending(self) -> None:
        """Drop the journal (after the ops were persisted or folded)."""
        self._pending = []

    def save_delta(self, run_dir: str, generation: int) -> int:
        """Write the pending ops as ``delta-<generation>.bin``; returns bytes.

        O(ops since the last flush), independent of the index size -- this
        is what turns a streaming sink's flush cost from O(run so far)
        into O(epoch).
        """
        interner = StringInterner()
        body = bytearray()
        write_uvarint(body, len(self._pending))
        for op in self._pending:
            body.append(op[0])
            if op[0] == _OP_NODE:
                _tag, segment_id, tid, index, topo, reads, writes = op
                write_uvarint(body, segment_id)
                write_svarint(body, tid)
                write_uvarint(body, index)
                write_uvarint(body, topo)
                _write_sorted_ints(body, reads)
                _write_sorted_ints(body, writes)
            else:
                _tag, segment_id, source, target, kind_code, object_id, operation = op
                write_uvarint(body, segment_id)
                _write_node_id(body, source)
                _write_node_id(body, target)
                body.append(kind_code)
                if kind_code == KIND_TO_CODE[EdgeKind.SYNC]:
                    if object_id is None:
                        body.append(0)
                    else:
                        body.append(1)
                        write_svarint(body, object_id)
                    write_uvarint(body, interner.ref(operation))
        return self._write_binary(
            run_dir, index_delta_file_name(generation), _FILE_KIND_DELTA, interner.strings, body
        )

    def save_base(self, run_dir: str, generation: int) -> int:
        """Write the full in-memory state as ``base-<generation>.bin``.

        Written when deltas are folded (compaction), after a rebuild, and
        by the in-place upgrade of a v2/v3 store's JSON indexes.
        """
        interner = StringInterner()
        body = bytearray()
        write_uvarint(body, len(self.node_segments))
        for key, segment_id in self.node_segments.items():
            _write_node_id(body, parse_node_key(key))
            write_uvarint(body, segment_id)
            write_uvarint(body, self.node_topo[key])
        for family in (self.page_writers, self.page_readers):
            write_uvarint(body, len(family))
            for page, keys in family.items():
                write_svarint(body, page)
                write_uvarint(body, len(keys))
                for key in keys:
                    _write_node_id(body, parse_node_key(key))
        write_uvarint(body, len(self.thread_indexes))
        for tid, indexes in self.thread_indexes.items():
            write_svarint(body, tid)
            write_uvarint(body, len(indexes))
            for index in indexes:
                write_uvarint(body, index)
            segments = self.thread_segments.get(tid, [])
            write_uvarint(body, len(segments))
            for segment_id in segments:
                write_uvarint(body, segment_id)
        write_uvarint(body, len(self.sync_edges))
        for object_id, edges in self.sync_edges.items():
            write_svarint(body, object_id)
            write_uvarint(body, len(edges))
            for edge in edges:
                _write_node_id(body, parse_node_key(edge["source"]))
                _write_node_id(body, parse_node_key(edge["target"]))
                write_uvarint(body, interner.ref(edge.get("operation", "")))
                write_uvarint(body, int(edge.get("segment", 0)))
        for family in (self.in_edge_segments, self.out_edge_segments):
            write_uvarint(body, len(family))
            for key, segments in family.items():
                _write_node_id(body, parse_node_key(key))
                write_uvarint(body, len(segments))
                for segment_id in segments:
                    write_uvarint(body, segment_id)
        return self._write_binary(
            run_dir, index_base_file_name(generation), _FILE_KIND_BASE, interner.strings, body
        )

    @staticmethod
    def _write_binary(
        run_dir: str, name: str, file_kind: int, strings: Sequence[str], body: bytes
    ) -> int:
        os.makedirs(run_dir, exist_ok=True)
        out = bytearray(_INDEX_MAGIC)
        out.append(_INDEX_VERSION)
        out.append(file_kind)
        write_string_table(out, strings)
        out += body
        path = os.path.join(run_dir, name)
        scratch = path + ".tmp"
        with open(scratch, "wb") as handle:
            handle.write(out)
        os.replace(scratch, path)
        return len(out)

    @staticmethod
    def _read_binary(run_dir: str, name: str, expect_kind: int) -> Tuple[List[str], bytes, int]:
        path = os.path.join(run_dir, name)
        if not os.path.exists(path):
            raise StoreError(f"missing index file {name}")
        with open(path, "rb") as handle:
            data = handle.read()
        if len(data) < 6 or not data.startswith(_INDEX_MAGIC):
            raise StoreError(f"corrupt index file {name} (bad magic)")
        if data[4] != _INDEX_VERSION:
            raise StoreError(f"unsupported index file version {data[4]} in {name}")
        if data[5] != expect_kind:
            raise StoreError(f"index file {name} has kind {data[5]}, expected {expect_kind}")
        strings, pos = read_string_table(data, 6)
        return strings, data, pos

    @classmethod
    def load_v4(
        cls, run_dir: str, base_generation: int, delta_generations: Sequence[int]
    ) -> "StoreIndexes":
        """Load the base (if any) and replay the deltas in generation order.

        Raises:
            StoreError: For a missing, truncated, or corrupt generation
                file -- the caller's signal to rebuild from segments.
        """
        indexes = cls()
        if base_generation:
            indexes._load_base(run_dir, base_generation)
        for generation in delta_generations:
            indexes._apply_delta_file(run_dir, generation)
        indexes.clear_pending()
        return indexes

    def _load_base(self, run_dir: str, generation: int) -> None:
        strings, data, pos = self._read_binary(
            run_dir, index_base_file_name(generation), _FILE_KIND_BASE
        )
        try:
            count, pos = read_uvarint(data, pos)
            for _ in range(count):
                node_id, pos = _read_node_id(data, pos)
                segment_id, pos = read_uvarint(data, pos)
                topo, pos = read_uvarint(data, pos)
                key = node_key(node_id)
                self.node_segments[key] = segment_id
                self.node_topo[key] = topo
            for family in (self.page_writers, self.page_readers):
                pages, pos = read_uvarint(data, pos)
                for _ in range(pages):
                    page, pos = read_svarint(data, pos)
                    entries, pos = read_uvarint(data, pos)
                    keys: List[str] = []
                    for _ in range(entries):
                        node_id, pos = _read_node_id(data, pos)
                        keys.append(node_key(node_id))
                    family[page] = keys
            threads, pos = read_uvarint(data, pos)
            for _ in range(threads):
                tid, pos = read_svarint(data, pos)
                entries, pos = read_uvarint(data, pos)
                values: List[int] = []
                for _ in range(entries):
                    value, pos = read_uvarint(data, pos)
                    values.append(value)
                self.thread_indexes[tid] = values
                entries, pos = read_uvarint(data, pos)
                segments: List[int] = []
                for _ in range(entries):
                    value, pos = read_uvarint(data, pos)
                    segments.append(value)
                self.thread_segments[tid] = segments
            objects, pos = read_uvarint(data, pos)
            for _ in range(objects):
                object_id, pos = read_svarint(data, pos)
                entries, pos = read_uvarint(data, pos)
                edges: List[dict] = []
                for _ in range(entries):
                    source, pos = _read_node_id(data, pos)
                    target, pos = _read_node_id(data, pos)
                    ref, pos = read_uvarint(data, pos)
                    segment_id, pos = read_uvarint(data, pos)
                    operation = deref(strings, ref)
                    edges.append(
                        {
                            "source": node_key(source),
                            "target": node_key(target),
                            "operation": operation if operation is not None else "",
                            "segment": segment_id,
                        }
                    )
                self.sync_edges[object_id] = edges
            for family in (self.in_edge_segments, self.out_edge_segments):
                count, pos = read_uvarint(data, pos)
                for _ in range(count):
                    node_id, pos = _read_node_id(data, pos)
                    entries, pos = read_uvarint(data, pos)
                    segments = []
                    for _ in range(entries):
                        value, pos = read_uvarint(data, pos)
                        segments.append(value)
                    family[node_key(node_id)] = segments
        except (IndexError, ValueError) as exc:
            raise StoreError(
                f"corrupt index base generation {generation}: {exc}"
            ) from exc

    def _apply_delta_file(self, run_dir: str, generation: int) -> None:
        strings, data, pos = self._read_binary(
            run_dir, index_delta_file_name(generation), _FILE_KIND_DELTA
        )
        try:
            ops, pos = read_uvarint(data, pos)
            for _ in range(ops):
                if pos >= len(data):
                    raise StoreError("truncated op stream")
                tag = data[pos]
                pos += 1
                if tag == _OP_NODE:
                    segment_id, pos = read_uvarint(data, pos)
                    tid, pos = read_svarint(data, pos)
                    index, pos = read_uvarint(data, pos)
                    topo, pos = read_uvarint(data, pos)
                    reads, pos = _read_sorted_ints(data, pos)
                    writes, pos = _read_sorted_ints(data, pos)
                    self._apply_node(segment_id, tid, index, topo, reads, writes)
                elif tag == _OP_EDGE:
                    segment_id, pos = read_uvarint(data, pos)
                    source, pos = _read_node_id(data, pos)
                    target, pos = _read_node_id(data, pos)
                    if pos >= len(data):
                        raise StoreError("truncated edge op")
                    kind = CODE_TO_KIND.get(data[pos])
                    if kind is None:
                        raise StoreError(f"unknown edge kind code {data[pos]}")
                    pos += 1
                    object_id: Optional[int] = None
                    operation: Optional[str] = None
                    if kind is EdgeKind.SYNC:
                        if pos >= len(data):
                            raise StoreError("truncated sync edge op")
                        has_object = data[pos]
                        pos += 1
                        if has_object:
                            object_id, pos = read_svarint(data, pos)
                        ref, pos = read_uvarint(data, pos)
                        operation = deref(strings, ref)
                    self._apply_edge(segment_id, source, target, kind, object_id, operation)
                else:
                    raise StoreError(f"unknown index op tag {tag}")
        except (IndexError, ValueError) as exc:
            raise StoreError(
                f"corrupt index delta generation {generation}: {exc}"
            ) from exc

    # ------------------------------------------------------------------ #
    # Persistence: the v2/v3 whole-index JSON layout (back-compat)
    # ------------------------------------------------------------------ #

    def save(self, index_dir: str) -> None:
        """Write the v2/v3 whole-index JSON files under ``index_dir``.

        O(index) per call -- the cost profile store format 4 exists to
        avoid; kept as the upgrade source, for tests, and as the baseline
        of the flush benchmark.
        """
        os.makedirs(index_dir, exist_ok=True)
        self._write(index_dir, _NODES_FILE, {"segments": self.node_segments, "topo": self.node_topo})
        self._write(
            index_dir,
            _PAGES_FILE,
            {
                "writers": {str(page): keys for page, keys in self.page_writers.items()},
                "readers": {str(page): keys for page, keys in self.page_readers.items()},
            },
        )
        self._write(
            index_dir,
            _THREADS_FILE,
            {
                str(tid): {
                    "indexes": self.thread_indexes.get(tid, []),
                    "segments": self.thread_segments.get(tid, []),
                }
                for tid in self.thread_indexes
            },
        )
        self._write(
            index_dir, _SYNC_FILE, {str(object_id): edges for object_id, edges in self.sync_edges.items()}
        )
        self._write(
            index_dir, _EDGES_FILE, {"in": self.in_edge_segments, "out": self.out_edge_segments}
        )

    @classmethod
    def load(cls, index_dir: str) -> "StoreIndexes":
        """Read the v2/v3 whole-index JSON files of one run's directory."""
        indexes = cls()
        nodes = cls._read(index_dir, _NODES_FILE)
        indexes.node_segments = {key: int(seg) for key, seg in nodes.get("segments", {}).items()}
        indexes.node_topo = {key: int(topo) for key, topo in nodes.get("topo", {}).items()}
        pages = cls._read(index_dir, _PAGES_FILE)
        indexes.page_writers = {int(page): keys for page, keys in pages.get("writers", {}).items()}
        indexes.page_readers = {int(page): keys for page, keys in pages.get("readers", {}).items()}
        for tid_text, entry in cls._read(index_dir, _THREADS_FILE).items():
            tid = int(tid_text)
            indexes.thread_indexes[tid] = [int(i) for i in entry.get("indexes", ())]
            indexes.thread_segments[tid] = [int(s) for s in entry.get("segments", ())]
        indexes.sync_edges = {
            int(object_id): edges for object_id, edges in cls._read(index_dir, _SYNC_FILE).items()
        }
        edges = cls._read(index_dir, _EDGES_FILE)
        indexes.in_edge_segments = {key: [int(s) for s in segs] for key, segs in edges.get("in", {}).items()}
        indexes.out_edge_segments = {
            key: [int(s) for s in segs] for key, segs in edges.get("out", {}).items()
        }
        return indexes

    @staticmethod
    def _write(index_dir: str, name: str, payload: dict) -> None:
        # Temp-file + atomic rename: a crash mid-write must not truncate
        # the previous generation of the index.
        path = os.path.join(index_dir, name)
        scratch = path + ".tmp"
        with open(scratch, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True)
        os.replace(scratch, path)

    @staticmethod
    def _read(index_dir: str, name: str) -> dict:
        path = os.path.join(index_dir, name)
        if not os.path.exists(path):
            raise StoreError(f"missing index file {name} (store not flushed?)")
        with open(path, "r", encoding="utf-8") as handle:
            try:
                return json.load(handle)
            except json.JSONDecodeError as exc:
                raise StoreError(f"corrupt index file {name}: {exc}") from exc

"""Secondary indexes of the persistent provenance store.

The indexes are the in-memory part of the out-of-core design: they are
small (node ids and page numbers, no read/write sets, no thunks), they are
rewritten wholesale on flush, and every query starts here to decide which
segments are worth loading.

One :class:`StoreIndexes` instance covers one **run**: node ids
``(tid, index)`` are only unique within a run, so the store keeps a
separate index namespace per run, persisted under
``index/run-<id>/`` (format v3; the v2 layout had a single flat
``index/`` directory, which the store loads as the legacy run's indexes).

Five index families exist:

* **nodes** -- node id -> owning segment and topological rank.  The rank is
  the node's position in the ingest order, which every ingest path keeps a
  linear extension of the CPG's control+sync partial order; the taint
  replay sorts by it.
* **pages** -- page -> writer/reader node ids (the same inverted index
  :func:`repro.core.queries.build_page_index` computes in memory).
* **threads** -- thread id -> its sub-computation indexes and segments.
* **sync** -- synchronization object id -> recorded release->acquire edges.
* **edges** -- node id -> segments holding its incoming / outgoing edges.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List, Set

from repro.core.cpg import EdgeKind
from repro.core.serialization import node_key, parse_node_key
from repro.core.thunk import NodeId, SubComputation
from repro.errors import StoreError

from repro.store.segment import EdgeTuple

_NODES_FILE = "nodes.json"
_PAGES_FILE = "pages.json"
_THREADS_FILE = "threads.json"
_SYNC_FILE = "sync.json"
_EDGES_FILE = "edges.json"


class StoreIndexes:
    """All secondary indexes of one store, with load/save and query helpers."""

    def __init__(self) -> None:
        #: node key -> segment id
        self.node_segments: Dict[str, int] = {}
        #: node key -> topological rank (ingest order)
        self.node_topo: Dict[str, int] = {}
        #: page -> node keys that wrote it
        self.page_writers: Dict[int, List[str]] = {}
        #: page -> node keys that read it
        self.page_readers: Dict[int, List[str]] = {}
        #: tid -> sorted sub-computation indexes of the thread
        self.thread_indexes: Dict[int, List[int]] = {}
        #: tid -> segments holding the thread's nodes
        self.thread_segments: Dict[int, List[int]] = {}
        #: sync object id -> recorded release->acquire edges
        self.sync_edges: Dict[int, List[dict]] = {}
        #: node key -> segments holding edges that end at the node
        self.in_edge_segments: Dict[str, List[int]] = {}
        #: node key -> segments holding edges that start at the node
        self.out_edge_segments: Dict[str, List[int]] = {}

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def add_node(self, segment_id: int, node: SubComputation, topo: int) -> None:
        """Register one stored sub-computation."""
        key = node_key(node.node_id)
        if key in self.node_segments:
            raise StoreError(f"node {key} ingested twice")
        self.node_segments[key] = segment_id
        self.node_topo[key] = topo
        for page in node.write_set:
            self.page_writers.setdefault(page, []).append(key)
        for page in node.read_set:
            self.page_readers.setdefault(page, []).append(key)
        indexes = self.thread_indexes.setdefault(node.tid, [])
        indexes.append(node.index)
        segments = self.thread_segments.setdefault(node.tid, [])
        if not segments or segments[-1] != segment_id:
            segments.append(segment_id)

    def add_edge(self, segment_id: int, edge: EdgeTuple) -> None:
        """Register one stored edge."""
        source, target, kind, attrs = edge
        source_key, target_key = node_key(source), node_key(target)
        incoming = self.in_edge_segments.setdefault(target_key, [])
        if not incoming or incoming[-1] != segment_id:
            incoming.append(segment_id)
        outgoing = self.out_edge_segments.setdefault(source_key, [])
        if not outgoing or outgoing[-1] != segment_id:
            outgoing.append(segment_id)
        if kind is EdgeKind.SYNC:
            object_id = attrs.get("object_id")
            if object_id is not None:
                self.sync_edges.setdefault(int(object_id), []).append(
                    {
                        "source": source_key,
                        "target": target_key,
                        "operation": attrs.get("operation", ""),
                        "segment": segment_id,
                    }
                )

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def has_node(self, node_id: NodeId) -> bool:
        """Whether the store holds ``node_id``."""
        return node_key(node_id) in self.node_segments

    def segment_of(self, node_id: NodeId) -> int:
        """Segment holding ``node_id``'s record."""
        try:
            return self.node_segments[node_key(node_id)]
        except KeyError as exc:
            raise StoreError(f"no sub-computation {node_id} in the store") from exc

    def topo_of(self, node_id: NodeId) -> int:
        """Topological rank of ``node_id`` (ingest order)."""
        try:
            return self.node_topo[node_key(node_id)]
        except KeyError as exc:
            raise StoreError(f"no sub-computation {node_id} in the store") from exc

    def writers_of_page(self, page: int) -> List[NodeId]:
        """Node ids whose write set contains ``page``."""
        return [parse_node_key(key) for key in self.page_writers.get(page, ())]

    def readers_of_page(self, page: int) -> List[NodeId]:
        """Node ids whose read set contains ``page``."""
        return [parse_node_key(key) for key in self.page_readers.get(page, ())]

    def pages_written_by(self) -> Dict[NodeId, Set[int]]:
        """Invert the writer index: node id -> pages it wrote."""
        written: Dict[NodeId, Set[int]] = {}
        for page, keys in self.page_writers.items():
            for key in keys:
                written.setdefault(parse_node_key(key), set()).add(page)
        return written

    def thread_nodes_from(self, tid: int, index: int) -> List[NodeId]:
        """Node ids ``(tid, i)`` with ``i >= index``, in execution order."""
        return [(tid, i) for i in self.thread_indexes.get(tid, ()) if i >= index]

    def in_segments(self, node_id: NodeId) -> List[int]:
        """Segments holding edges that end at ``node_id``."""
        return self.in_edge_segments.get(node_key(node_id), [])

    def out_segments(self, node_id: NodeId) -> List[int]:
        """Segments holding edges that start at ``node_id``."""
        return self.out_edge_segments.get(node_key(node_id), [])

    def nodes(self) -> List[NodeId]:
        """Every stored node id, sorted."""
        return sorted(parse_node_key(key) for key in self.node_segments)

    def is_consistent_with(self, valid_segments: Iterable[int], expected_nodes: int) -> bool:
        """Whether this index generation matches a manifest generation.

        The manifest is the store's commit point: a crash between the
        per-file atomic renames of a flush can leave index files a
        generation *ahead* of the manifest -- referencing segments it does
        not list (appends), or rewritten wholesale against replacement
        segments (compaction).  This check is how :meth:`ProvenanceStore.open`
        detects every such tear, after which the run's indexes are rebuilt
        from its (committed, ground-truth) segments.  Cheap: in-memory set
        membership only, no segment I/O.
        """
        valid = set(valid_segments)
        if len(self.node_segments) != expected_nodes:
            return False
        if any(segment not in valid for segment in self.node_segments.values()):
            return False
        for segments in self.thread_segments.values():
            if any(segment not in valid for segment in segments):
                return False
        for edges in self.sync_edges.values():
            if any(edge.get("segment", 0) not in valid for edge in edges):
                return False
        for family in (self.in_edge_segments, self.out_edge_segments):
            for segments in family.values():
                if any(segment not in valid for segment in segments):
                    return False
        return True

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #

    def save(self, index_dir: str) -> None:
        """Write every index file under ``index_dir`` (one run's directory)."""
        os.makedirs(index_dir, exist_ok=True)
        self._write(index_dir, _NODES_FILE, {"segments": self.node_segments, "topo": self.node_topo})
        self._write(
            index_dir,
            _PAGES_FILE,
            {
                "writers": {str(page): keys for page, keys in self.page_writers.items()},
                "readers": {str(page): keys for page, keys in self.page_readers.items()},
            },
        )
        self._write(
            index_dir,
            _THREADS_FILE,
            {
                str(tid): {
                    "indexes": self.thread_indexes.get(tid, []),
                    "segments": self.thread_segments.get(tid, []),
                }
                for tid in self.thread_indexes
            },
        )
        self._write(
            index_dir, _SYNC_FILE, {str(object_id): edges for object_id, edges in self.sync_edges.items()}
        )
        self._write(
            index_dir, _EDGES_FILE, {"in": self.in_edge_segments, "out": self.out_edge_segments}
        )

    @classmethod
    def load(cls, index_dir: str) -> "StoreIndexes":
        """Read every index file of one run's index directory."""
        indexes = cls()
        nodes = cls._read(index_dir, _NODES_FILE)
        indexes.node_segments = {key: int(seg) for key, seg in nodes.get("segments", {}).items()}
        indexes.node_topo = {key: int(topo) for key, topo in nodes.get("topo", {}).items()}
        pages = cls._read(index_dir, _PAGES_FILE)
        indexes.page_writers = {int(page): keys for page, keys in pages.get("writers", {}).items()}
        indexes.page_readers = {int(page): keys for page, keys in pages.get("readers", {}).items()}
        for tid_text, entry in cls._read(index_dir, _THREADS_FILE).items():
            tid = int(tid_text)
            indexes.thread_indexes[tid] = [int(i) for i in entry.get("indexes", ())]
            indexes.thread_segments[tid] = [int(s) for s in entry.get("segments", ())]
        indexes.sync_edges = {
            int(object_id): edges for object_id, edges in cls._read(index_dir, _SYNC_FILE).items()
        }
        edges = cls._read(index_dir, _EDGES_FILE)
        indexes.in_edge_segments = {key: [int(s) for s in segs] for key, segs in edges.get("in", {}).items()}
        indexes.out_edge_segments = {
            key: [int(s) for s in segs] for key, segs in edges.get("out", {}).items()
        }
        return indexes

    @staticmethod
    def _write(index_dir: str, name: str, payload: dict) -> None:
        # Temp-file + atomic rename: a crash mid-write must not truncate
        # the previous generation of the index.
        path = os.path.join(index_dir, name)
        scratch = path + ".tmp"
        with open(scratch, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True)
        os.replace(scratch, path)

    @staticmethod
    def _read(index_dir: str, name: str) -> dict:
        path = os.path.join(index_dir, name)
        if not os.path.exists(path):
            raise StoreError(f"missing index file {name} (store not flushed?)")
        with open(path, "r", encoding="utf-8") as handle:
            try:
                return json.load(handle)
            except json.JSONDecodeError as exc:
                raise StoreError(f"corrupt index file {name}: {exc}") from exc

"""Integrity checking for the provenance store: fsck and scrub.

Two complementary passes over one store directory:

:func:`verify_store` (**fsck**) is the *structural* check -- cheap, stat
-based, no payload reads.  It verifies that the manifest checkpoint, the
segment log, and the files on disk agree: every referenced segment and
index file exists with the size the manifest recorded, the cross-run page
summary matches its recorded size, the log's tail is not torn, and no
unreferenced ``seg-*``/``base-*``/``delta-*``/scratch files are leaking
disk (the residue of a crash between new-files-write and manifest-commit
in ``compact()``/``gc()``).  With ``repair=True`` the orphans are removed
-- that is the *only* mutation fsck performs; damage to referenced files
is never "repaired" by deletion here (replica repair, or an index rebuild
on next load, is the healing path).

:func:`scrub` is the *deep* check -- it re-reads every referenced file
from disk and re-computes its checksum against the manifest's recorded
``(size, crc)`` (segments without a recorded file CRC fall back to their
frame checksum; files predating the integrity layer are counted
``unverified``).  Reads go straight to the files, never through the
decoded-segment cache, so a scrub does not evict warm readers' working
set; an optional MB/s throttle keeps it polite next to live queries.
Damaged segments are **quarantined** (recorded in the manifest, skipped
by queries) rather than left to ambush the next reader, and a segment
that verifies again after being repaired in place has its quarantine mark
cleared.

Both are surfaced as ``python -m repro.store fsck|scrub`` with
machine-readable JSON reports and a non-zero exit code on damage.

Like compact/gc, both assume a quiescent store: running fsck's orphan
scan or a scrub concurrently with an active ingest or maintenance rewrite
is unsupported (a streaming sink legitimately keeps committed segment
files briefly ahead of the durable manifest).
"""

from __future__ import annotations

import os
import time
import zlib
from typing import Dict, List, Optional

from repro.errors import StoreError

from repro.store.format import (
    INDEX_DIR,
    MANIFEST_NAME,
    PAGES_RUNS_FILE,
    SEGMENT_LOG_NAME,
    SEGMENTS_DIR,
    STORE_FORMAT_VERSION_V4,
    index_base_file_name,
    index_delta_file_name,
    segment_file_name,
)
from repro.store.indexes import LEGACY_INDEX_FILES
from repro.store.segment import FRAME_UNVERIFIED, FRAME_VERIFIED, verify_frame
from repro.store.store import (
    _COMPACT_SPILL_DIR,
    _INDEX_BASE_RE,
    _INDEX_DELTA_RE,
    _RUN_DIR_RE,
    _SEGMENT_FILE_RE,
    ProvenanceStore,
)

#: Bytes read per chunk by the scrubber (also the throttle granularity).
SCRUB_CHUNK_BYTES = 1 << 20


def _problem(kind: str, path: str, detail: str) -> dict:
    return {"kind": kind, "path": path, "detail": detail}


# ---------------------------------------------------------------------- #
# fsck
# ---------------------------------------------------------------------- #


def verify_store(path: str, repair: bool = False) -> dict:
    """Structural fsck of the store directory at ``path``.

    Returns a machine-readable report::

        {
          "path": ...,  "ok": bool,
          "problems": [{"kind", "path", "detail"}, ...],   # damage
          "warnings": [...],                  # recoverable oddities
          "orphans": [relpath, ...],          # unreferenced files found
          "repaired": [relpath, ...],         # orphans removed (repair=True)
          "quarantined": {segment_id: reason},
          "checked": {"segments": N, "index_files": N},
          "segment_log": {"records", "valid_bytes", "torn_bytes"},
        }

    ``ok`` is False whenever ``problems`` is non-empty; orphan files
    count as problems unless ``repair=True`` removed them.  fsck never
    reads segment payloads -- :func:`scrub` is the deep check.
    """
    report: dict = {
        "path": os.path.abspath(path),
        "ok": True,
        "problems": [],
        "warnings": [],
        "orphans": [],
        "repaired": [],
        "quarantined": {},
        "checked": {"segments": 0, "index_files": 0},
        "segment_log": {"records": 0, "valid_bytes": 0, "torn_bytes": 0},
    }
    problems: List[dict] = report["problems"]
    try:
        store = ProvenanceStore.open(path)
    except StoreError as exc:
        problems.append(
            _problem("manifest_unreadable", MANIFEST_NAME, str(exc))
        )
        report["ok"] = False
        return report
    with store:
        manifest = store.manifest
        if store._log.exists():
            report["segment_log"] = store._log.verify()
            torn = report["segment_log"]["torn_bytes"]
            if torn:
                report["warnings"].append(
                    _problem(
                        "log_torn_tail",
                        SEGMENT_LOG_NAME,
                        f"{torn} byte(s) past the commit horizon "
                        f"(a crashed append; the next flush truncates them)",
                    )
                )
        for info in manifest.segments:
            report["checked"]["segments"] += 1
            rel = os.path.join(SEGMENTS_DIR, info.file_name)
            seg_path = os.path.join(path, rel)
            if not os.path.exists(seg_path):
                problems.append(
                    _problem(
                        "segment_missing",
                        rel,
                        f"segment {info.segment_id} is referenced by the "
                        f"manifest but has no file",
                    )
                )
                continue
            size = os.path.getsize(seg_path)
            if info.stored_bytes and size != info.stored_bytes:
                problems.append(
                    _problem(
                        "segment_size_mismatch",
                        rel,
                        f"manifest records {info.stored_bytes} bytes, "
                        f"file has {size}",
                    )
                )
        for run in manifest.runs:
            run_dir = store._run_index_dir(run.run_id)
            rel_dir = os.path.relpath(run_dir, path)
            expected = []
            if run.index_base:
                expected.append(index_base_file_name(run.index_base))
            expected.extend(index_delta_file_name(gen) for gen in run.index_deltas)
            for name in expected:
                report["checked"]["index_files"] += 1
                rel = os.path.join(rel_dir, name)
                file_path = os.path.join(run_dir, name)
                if not os.path.exists(file_path):
                    problems.append(
                        _problem(
                            "index_file_missing",
                            rel,
                            f"run {run.run_id} references {name} "
                            f"(a torn delta; rebuilt from segments on next load)",
                        )
                    )
                    continue
                pair = run.index_checksums.get(name)
                if pair is not None and os.path.getsize(file_path) != pair[0]:
                    problems.append(
                        _problem(
                            "index_size_mismatch",
                            rel,
                            f"manifest records {pair[0]} bytes, "
                            f"file has {os.path.getsize(file_path)}",
                        )
                    )
        if manifest.pages_runs_checksum is not None:
            rel = os.path.join(INDEX_DIR, PAGES_RUNS_FILE)
            summary_path = os.path.join(path, rel)
            if not os.path.exists(summary_path):
                problems.append(
                    _problem("pages_runs_missing", rel, "recorded summary file is absent")
                )
            elif os.path.getsize(summary_path) != manifest.pages_runs_checksum[0]:
                problems.append(
                    _problem(
                        "pages_runs_size_mismatch",
                        rel,
                        f"manifest records {manifest.pages_runs_checksum[0]} bytes, "
                        f"file has {os.path.getsize(summary_path)}",
                    )
                )
        report["quarantined"] = {
            str(segment_id): reason
            for segment_id, reason in sorted(manifest.quarantined.items())
        }
        for segment_id, reason in sorted(manifest.quarantined.items()):
            problems.append(
                _problem(
                    "quarantined",
                    os.path.join(SEGMENTS_DIR, segment_file_name(segment_id)),
                    reason,
                )
            )
        orphans = _find_orphans(store)
        report["orphans"] = orphans
        if repair:
            for rel in orphans:
                if _remove_orphan(os.path.join(path, rel)):
                    report["repaired"].append(rel)
                else:
                    problems.append(
                        _problem("orphan_unremovable", rel, "could not remove orphan")
                    )
        else:
            for rel in orphans:
                problems.append(
                    _problem(
                        "orphan_file",
                        rel,
                        "not referenced by the manifest (crash residue; "
                        "fsck --repair removes it)",
                    )
                )
    report["ok"] = not problems
    return report


def _find_orphans(store: ProvenanceStore) -> List[str]:
    """Store-relative paths of files the manifest does not reference.

    Mirrors the criteria of ``ProvenanceStore._sweep_orphans`` (which
    deletes silently from maintenance operations) but only *reports*, so
    fsck can surface the leak a crashed ``compact()``/``gc()`` left
    behind without mutating anything.
    """
    orphans: List[str] = []
    path = store.path
    referenced = set(store.manifest.segment_ids())
    segments_dir = os.path.join(path, SEGMENTS_DIR)
    if os.path.isdir(segments_dir):
        for name in sorted(os.listdir(segments_dir)):
            rel = os.path.join(SEGMENTS_DIR, name)
            if name.endswith(".tmp"):
                orphans.append(rel)
                continue
            match = _SEGMENT_FILE_RE.match(name)
            if match is not None and int(match.group(1)) not in referenced:
                orphans.append(rel)
    index_dir = os.path.join(path, INDEX_DIR)
    known_runs = set(store.run_ids())
    if os.path.isdir(index_dir):
        for name in sorted(os.listdir(index_dir)):
            rel = os.path.join(INDEX_DIR, name)
            match = _RUN_DIR_RE.match(name)
            if match is None:
                stray = name.endswith(".tmp") or (
                    name in LEGACY_INDEX_FILES
                    and store._disk_version >= STORE_FORMAT_VERSION_V4
                )
                if stray:
                    orphans.append(rel)
                continue
            run_id = int(match.group(1))
            if run_id not in known_runs:
                orphans.append(rel)  # the whole stale run directory
                continue
            run_info = store.manifest.run_info(run_id)
            run_dir = os.path.join(index_dir, name)
            for file_name in sorted(os.listdir(run_dir)):
                file_rel = os.path.join(rel, file_name)
                base_match = _INDEX_BASE_RE.match(file_name)
                delta_match = _INDEX_DELTA_RE.match(file_name)
                stale = file_name.endswith(".tmp")
                if base_match is not None:
                    stale = int(base_match.group(1)) != run_info.index_base
                elif delta_match is not None:
                    stale = int(delta_match.group(1)) not in run_info.index_deltas
                elif file_name in LEGACY_INDEX_FILES and run_info.index_base > 0:
                    stale = True
                if stale:
                    orphans.append(file_rel)
    if os.path.isdir(os.path.join(path, _COMPACT_SPILL_DIR)):
        orphans.append(_COMPACT_SPILL_DIR)
    return orphans


def _remove_orphan(target: str) -> bool:
    """Remove one orphan file or (flat) directory; True on success."""
    try:
        if os.path.isdir(target):
            for name in os.listdir(target):
                os.remove(os.path.join(target, name))
            os.rmdir(target)
        else:
            os.remove(target)
    except OSError:
        return False
    return True


# ---------------------------------------------------------------------- #
# scrub
# ---------------------------------------------------------------------- #


class _Throttle:
    """Caps scrub read bandwidth by sleeping off any surplus."""

    def __init__(self, mb_per_s: Optional[float]) -> None:
        self.bytes_per_s = mb_per_s * 1024 * 1024 if mb_per_s else None
        self._started = time.monotonic()
        self._charged = 0

    def charge(self, nbytes: int) -> None:
        if not self.bytes_per_s:
            return
        self._charged += nbytes
        due = self._charged / self.bytes_per_s
        elapsed = time.monotonic() - self._started
        if due > elapsed:
            time.sleep(due - elapsed)


def _read_throttled(path: str, throttle: _Throttle) -> bytes:
    chunks = []
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(SCRUB_CHUNK_BYTES)
            if not chunk:
                break
            throttle.charge(len(chunk))
            chunks.append(chunk)
    return b"".join(chunks)


def scrub(
    store: ProvenanceStore,
    throttle_mb_per_s: Optional[float] = None,
    quarantine: bool = True,
    durable: bool = True,
) -> dict:
    """Deep-verify every referenced file of ``store`` by re-reading it.

    Every segment, index base/delta, and the cross-run page summary is
    read back from disk (bypassing the decoded-segment cache, so warm
    readers keep their working set) and checked against the manifest's
    recorded ``(size, crc)``.  Segments without a recorded file CRC fall
    back to their frame checksum; files written before the integrity
    layer count as ``unverified``.  ``throttle_mb_per_s`` bounds the read
    bandwidth.

    With ``quarantine=True`` (the default) every damaged segment is
    quarantined -- and a previously quarantined segment that now verifies
    clean (repaired in place) is un-quarantined; ``durable=True`` commits
    any mark changes through a manifest checkpoint (a clean scrub writes
    nothing, so scrubbing an old-format store does not upgrade it).

    Returns a machine-readable report; ``ok`` is False when any file is
    damaged.
    """
    started = time.monotonic()
    report: dict = {
        "path": os.path.abspath(store.path),
        "ok": True,
        "segments": {"verified": 0, "unverified": 0, "damaged": 0},
        "index_files": {"verified": 0, "unverified": 0, "damaged": 0},
        "files_scanned": 0,
        "bytes_verified": 0,
        "damage": [],
        "quarantined": [],
        "unquarantined": [],
    }
    throttle = _Throttle(throttle_mb_per_s)
    marks_changed = False
    for info in list(store.manifest.segments):
        rel = os.path.join(SEGMENTS_DIR, info.file_name)
        seg_path = os.path.join(store.path, rel)
        status = FRAME_UNVERIFIED
        reason: Optional[str] = None
        try:
            data = _read_throttled(seg_path, throttle)
        except OSError as exc:
            reason = f"unreadable: {exc}"
            data = b""
        report["files_scanned"] += 1
        report["bytes_verified"] += len(data)
        if reason is None:
            if info.crc is not None:
                actual = zlib.crc32(data) & 0xFFFFFFFF
                if len(data) != info.stored_bytes or actual != info.crc:
                    reason = (
                        f"file checksum mismatch: manifest records "
                        f"{info.stored_bytes}B/0x{info.crc:08x}, "
                        f"found {len(data)}B/0x{actual:08x}"
                    )
                else:
                    status = FRAME_VERIFIED
            else:
                try:
                    status = verify_frame(data)
                except StoreError as exc:
                    reason = str(exc)
        if reason is not None:
            report["segments"]["damaged"] += 1
            report["damage"].append(
                _problem("segment_damaged", rel, f"segment {info.segment_id}: {reason}")
            )
            if quarantine and not store.is_quarantined(info.segment_id):
                store.manifest.quarantine(info.segment_id, reason)
                marks_changed = True
            if store.is_quarantined(info.segment_id):
                report["quarantined"].append(info.segment_id)
        else:
            if (
                quarantine
                and status == FRAME_VERIFIED
                and store.is_quarantined(info.segment_id)
            ):
                # Repaired in place since it was marked: lift the mark.
                store.manifest.clear_quarantine(info.segment_id)
                report["unquarantined"].append(info.segment_id)
                marks_changed = True
            report["segments"][status] += 1
    for run in store.manifest.runs:
        run_dir = store._run_index_dir(run.run_id)
        rel_dir = os.path.relpath(run_dir, store.path)
        expected = []
        if run.index_base:
            expected.append(index_base_file_name(run.index_base))
        expected.extend(index_delta_file_name(gen) for gen in run.index_deltas)
        for name in expected:
            rel = os.path.join(rel_dir, name)
            _scrub_plain_file(
                store,
                os.path.join(run_dir, name),
                rel,
                run.index_checksums.get(name),
                report,
                throttle,
                f"run {run.run_id} index file",
            )
    if store.manifest.pages_runs_checksum is not None:
        rel = os.path.join(INDEX_DIR, PAGES_RUNS_FILE)
        _scrub_plain_file(
            store,
            os.path.join(store.path, rel),
            rel,
            store.manifest.pages_runs_checksum,
            report,
            throttle,
            "cross-run page summary",
        )
    if marks_changed and durable:
        store.flush(checkpoint=True)
    report["ok"] = not report["damage"]
    elapsed = time.monotonic() - started
    report["elapsed_s"] = round(elapsed, 3)
    report["mb_per_s"] = (
        round(report["bytes_verified"] / elapsed / (1024 * 1024), 2) if elapsed > 0 else 0.0
    )
    return report


def _scrub_plain_file(
    store: ProvenanceStore,
    file_path: str,
    rel: str,
    recorded: Optional[List[int]],
    report: dict,
    throttle: _Throttle,
    what: str,
) -> None:
    """Verify one non-segment file against its recorded ``[size, crc]``.

    Index and summary files are never quarantined: a damaged index
    generation is rebuilt from the (ground-truth) segments on the next
    load, and the page summary is a non-authoritative cache -- scrub just
    reports them.
    """
    try:
        data = _read_throttled(file_path, throttle)
    except OSError as exc:
        report["index_files"]["damaged"] += 1
        report["damage"].append(_problem("file_unreadable", rel, f"{what}: {exc}"))
        return
    report["files_scanned"] += 1
    report["bytes_verified"] += len(data)
    if recorded is None:
        report["index_files"]["unverified"] += 1
        return
    actual = zlib.crc32(data) & 0xFFFFFFFF
    if len(data) != recorded[0] or actual != recorded[1]:
        report["index_files"]["damaged"] += 1
        report["damage"].append(
            _problem(
                "file_checksum_mismatch",
                rel,
                f"{what}: manifest records {recorded[0]}B/0x{recorded[1]:08x}, "
                f"found {len(data)}B/0x{actual:08x}",
            )
        )
    else:
        report["index_files"]["verified"] += 1

"""A long-lived, warm query server over one provenance store.

The paper's case studies (debugging slices, DIFT taint, §VIII) hammer the
same provenance graph with many queries; re-opening the store per query
re-parses the manifest, re-merges index deltas, and re-decodes segments
every time.  :class:`StoreServer` amortizes all of that once: a single
process holds one :class:`~repro.store.cache.SegmentCache` and one
:class:`~repro.store.cache.IndexPinner` across any number of concurrent
read-only queries, so repeated questions are answered at memory speed.

**Consistency model: snapshot at open.**  The server opens the store once
and serves every query against that manifest generation -- a consistent,
immutable view (segments are immutable and ids never reused, so the
snapshot cannot be torn by later appends).  Writes that land after the
open become visible only through an explicit ``refresh``, which atomically
swaps in a new snapshot while keeping the warm cache (still-referenced
segments stay hot; superseded ones are unreachable by id).  Maintenance
(``compact``/``gc``) concurrent with a serving snapshot follows the
store's existing single-writer stance: run it between snapshots and
``refresh`` afterwards.

**Protocol.**  Newline-delimited JSON over TCP -- one request object per
line, one response object per line, no dependencies beyond the standard
library.  Requests are ``{"op": ..., <params>}``; responses are
``{"ok": true, "result": ..., "stats": {...}}`` or ``{"ok": false,
"error": ...}``.  Node ids travel as ``"tid:index"`` strings (the
serialization module's ``node_key`` form).  Every query response carries
per-query stats: wall time plus the segments read, bytes read, and cache
hits/misses attributable to that query alone (collected through a
:class:`~repro.store.cache.ReadScope`, so concurrent queries do not bleed
into each other's numbers).

Use :class:`StoreClient` from Python, or ``python -m repro.store serve``
from the command line.
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading
import time
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.cpg import EdgeKind
from repro.core.serialization import node_key, parse_node_key
from repro.errors import InspectorError, StoreError

from repro.store.cache import DEFAULT_CACHE_BYTES, IndexPinner, ReadScope, SegmentCache
from repro.store.query import StoreQueryEngine
from repro.store.store import ProvenanceStore

#: Ops the server answers (the protocol surface).
SERVER_OPS = (
    "ping",
    "info",
    "runs",
    "slice",
    "lineage",
    "taint",
    "lineage_across_runs",
    "taint_across_runs",
    "compare_lineage",
    "stats",
    "refresh",
    "shutdown",
)


def _parse_kinds(kinds: Optional[Iterable[str]]) -> Tuple[EdgeKind, ...]:
    if kinds is None:
        return (EdgeKind.DATA,)
    parsed = []
    for kind in kinds:
        try:
            parsed.append(EdgeKind(kind))
        except ValueError as exc:
            known = ", ".join(sorted(member.value for member in EdgeKind))
            raise StoreError(f"unknown edge kind {kind!r} (known kinds: {known})") from exc
    if not parsed:
        raise StoreError("at least one edge kind is required")
    return tuple(parsed)


def _node_list(nodes: Iterable[tuple]) -> List[str]:
    return [node_key(node) for node in sorted(nodes)]


class _RequestHandler(socketserver.StreamRequestHandler):
    """One connection: any number of newline-delimited JSON requests."""

    def handle(self) -> None:
        server: "StoreServer" = self.server.store_server  # type: ignore[attr-defined]
        for line in self.rfile:
            text = line.decode("utf-8").strip()
            if not text:
                continue
            try:
                request = json.loads(text)
            except ValueError:
                response = {"ok": False, "error": "malformed request (not JSON)"}
            else:
                response = server.handle_request(request)
            self.wfile.write(json.dumps(response).encode("utf-8") + b"\n")
            self.wfile.flush()
            if response.get("bye"):
                # The acknowledgement is flushed *before* the listener
                # stops, so a CLI client never loses the shutdown reply to
                # the process exiting first.  Closing from this handler
                # thread is safe: block_on_close is off, so server_close
                # does not try to join the current thread.
                server.close()
                break


class _TCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True
    # The shutdown op closes the server from inside a handler thread;
    # joining handler threads there would mean joining ourselves.
    block_on_close = False


class StoreServer:
    """Serves concurrent read-only store queries from one warm cache.

    Args:
        store_path: Store directory to serve.
        host: Interface to bind (loopback by default; provenance data is
            not something to expose casually).
        port: TCP port; 0 picks a free one (see :attr:`address`).
        cache_bytes: Byte budget of the shared decoded-segment cache.
        parallelism: Per-query multi-segment scan workers (each query gets
            its own :class:`StoreQueryEngine` with this knob).
    """

    def __init__(
        self,
        store_path: str,
        host: str = "127.0.0.1",
        port: int = 0,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
        parallelism: int = 1,
    ) -> None:
        if parallelism < 1:
            raise ValueError(f"parallelism must be >= 1, got {parallelism}")
        self.cache = SegmentCache(max_bytes=cache_bytes)
        # Bounded: a pin re-admitted by an in-flight query racing a
        # gc+refresh would otherwise linger forever (pins have no byte
        # budget); the LRU bound turns that worst case into eventual
        # eviction while still pinning every run of any realistic store.
        self.pinner = IndexPinner(max_runs=256)
        self.parallelism = parallelism
        self._store = ProvenanceStore.open(
            store_path, segment_cache=self.cache, index_pinner=self.pinner
        )
        self.store_path = store_path
        self._started = time.time()
        self._opened_at = time.time()
        self._counter_lock = threading.Lock()
        self.queries_served = 0
        self.refreshes = 0
        self._namespace_epoch = 0
        self._tcp = _TCPServer((host, port), _RequestHandler)
        self._tcp.store_server = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (the real port when 0 was asked)."""
        return self._tcp.server_address[:2]

    @property
    def store(self) -> ProvenanceStore:
        """The current snapshot (swapped atomically by ``refresh``)."""
        return self._store

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> Tuple[str, int]:
        """Serve in a daemon thread; returns the bound address."""
        self._thread = threading.Thread(
            target=self._tcp.serve_forever, name="store-server", daemon=True
        )
        self._thread.start()
        return self.address

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`close` (the CLI path)."""
        self._tcp.serve_forever()

    def close(self) -> None:
        """Stop accepting connections and release the socket."""
        self._tcp.shutdown()
        self._tcp.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def refresh(self) -> dict:
        """Swap in a fresh snapshot of the store directory.

        The warm cache and pinned indexes normally carry over: within one
        store's history segment ids are never reused, so every
        still-referenced entry stays valid, and a run whose index
        generations did not change re-pins without touching disk.  The
        one case where ids *can* collide is a store that was deleted and
        recreated at the same path (counters restart); the manifest
        carries no identity token, so refresh detects it structurally --
        the old snapshot's segment and run tables must still be present
        verbatim in the new manifest -- and drops the warm state when the
        check fails.  Returns the new snapshot's run/segment counts.
        """
        old = self._store
        fresh = ProvenanceStore.open(
            self.store_path, segment_cache=self.cache, index_pinner=self.pinner
        )
        if not self._same_store_lineage(old, fresh):
            # Move the fresh handle to a namespace no old handle writes:
            # an in-flight query against the dead snapshot may still
            # cache.put()/pinner.put() *after* any invalidate we issue,
            # and the recreated store's restarted ids could collide with
            # those entries.  A fresh namespace makes them unreachable by
            # construction; invalidating the old one just frees memory.
            with self._counter_lock:
                self._namespace_epoch += 1
                fresh.cache_namespace = f"{self.store_path}#recreated-{self._namespace_epoch}"
            self.cache.invalidate(old.cache_namespace)
            self.pinner.invalidate(old.cache_namespace)
        else:
            fresh.cache_namespace = old.cache_namespace
            # Same lineage, but runs an external gc dropped would leak
            # their pins forever (the pinner has no byte budget and their
            # generations are never requested again) -- release them.
            gone = set(old.run_ids()) - set(fresh.run_ids())
            for run_id in gone:
                self.pinner.invalidate(old.cache_namespace, run_id)
        self._store = fresh
        self._opened_at = time.time()
        with self._counter_lock:
            self.refreshes += 1
        return {
            "runs": len(fresh.run_ids()),
            "segments": fresh.manifest.segment_count,
            "nodes": fresh.manifest.node_count,
        }

    @staticmethod
    def _same_store_lineage(old: ProvenanceStore, fresh: ProvenanceStore) -> bool:
        """Whether ``fresh`` is the same store ``old`` was, grown append-only.

        True when every segment and run the old snapshot served is still
        described identically by the new manifest and the id counters
        never went backwards -- the only histories one store directory
        can legally have.  A recreated store restarts its counters and
        tables, so anything cached under the old snapshot must go.
        """
        if fresh.manifest.next_segment_id < old.manifest.next_segment_id:
            return False
        if fresh.manifest.next_run_id < old.manifest.next_run_id:
            return False
        new_segments = {
            info.segment_id: (info.run, info.nodes, info.edges, info.stored_bytes, info.codec)
            for info in fresh.manifest.segments
        }
        for info in old.manifest.segments:
            described = new_segments.get(info.segment_id)
            if described is not None and described != (
                info.run, info.nodes, info.edges, info.stored_bytes, info.codec
            ):
                return False  # same id, different content: not our lineage
        new_runs = {run.run_id: run.created_at for run in fresh.manifest.runs}
        for run in old.manifest.runs:
            if run.run_id in new_runs and new_runs[run.run_id] != run.created_at:
                return False
        return True

    # ------------------------------------------------------------------ #
    # Request dispatch
    # ------------------------------------------------------------------ #

    def handle_request(self, request: dict) -> dict:
        """Answer one protocol request (also the in-process test surface)."""
        if not isinstance(request, dict) or "op" not in request:
            return {"ok": False, "error": "request must be an object with an 'op'"}
        op = request.get("op")
        if op not in SERVER_OPS:
            return {"ok": False, "error": f"unknown op {op!r} (known: {', '.join(SERVER_OPS)})"}
        store = self._store  # one snapshot per request
        scope = ReadScope()
        start = time.perf_counter()
        try:
            result, extra = self._dispatch(op, request, store, scope)
        except InspectorError as exc:
            # StoreError, ProvenanceError (malformed node keys), ...
            return {"ok": False, "error": str(exc)}
        except (KeyError, TypeError, ValueError) as exc:
            return {"ok": False, "error": f"bad request parameters: {exc}"}
        elapsed_ms = (time.perf_counter() - start) * 1e3
        with self._counter_lock:
            self.queries_served += 1
        response = {
            "ok": True,
            "result": result,
            "stats": {"elapsed_ms": round(elapsed_ms, 3), **scope.to_dict()},
        }
        response.update(extra)
        return response

    def _engine(self, store: ProvenanceStore, scope: ReadScope) -> StoreQueryEngine:
        return StoreQueryEngine(store, parallelism=self.parallelism, scope=scope)

    def _dispatch(
        self, op: str, request: dict, store: ProvenanceStore, scope: ReadScope
    ) -> Tuple[object, dict]:
        if op == "ping":
            return {"pong": True}, {}
        if op == "info":
            return store.info(), {}
        if op == "runs":
            return [store.run_summary(run_id) for run_id in store.run_ids()], {}
        if op == "stats":
            return self.server_stats(), {}
        if op == "refresh":
            return self.refresh(), {}
        if op == "shutdown":
            # The transport layer closes the listener *after* writing the
            # acknowledgement (see _RequestHandler.handle).
            return {"stopping": True}, {"bye": True}

        engine = self._engine(store, scope)
        run = request.get("run")
        if op == "slice":
            origin = parse_node_key(str(request["node"]))
            kinds = _parse_kinds(request.get("kinds"))
            if request.get("forward", False):
                nodes = engine.forward_slice(origin, kinds=kinds, run=run)
            else:
                nodes = engine.backward_slice(origin, kinds=kinds, run=run)
            return {"run": store.resolve_run(run), "nodes": _node_list(nodes)}, {}
        if op == "lineage":
            nodes = engine.lineage_of_pages([int(p) for p in request["pages"]], run=run)
            return {"run": store.resolve_run(run), "nodes": _node_list(nodes)}, {}
        if op == "taint":
            result = engine.propagate_taint(
                [int(p) for p in request["pages"]],
                through_thread_state=bool(request.get("through_thread_state", False)),
                run=run,
            )
            return {
                "run": store.resolve_run(run),
                "source_pages": sorted(result.source_pages),
                "tainted_pages": sorted(result.tainted_pages),
                "tainted_nodes": _node_list(result.tainted_nodes),
                "mode": engine.last_taint_mode,
            }, {}
        if op == "lineage_across_runs":
            by_run = engine.lineage_across_runs([int(p) for p in request["pages"]])
            return {str(run_id): _node_list(nodes) for run_id, nodes in by_run.items()}, {}
        if op == "taint_across_runs":
            by_run = engine.taint_across_runs(
                [int(p) for p in request["pages"]],
                through_thread_state=bool(request.get("through_thread_state", False)),
            )
            return {
                str(run_id): {
                    "source_pages": sorted(result.source_pages),
                    "tainted_pages": sorted(result.tainted_pages),
                    "tainted_nodes": _node_list(result.tainted_nodes),
                }
                for run_id, result in by_run.items()
            }, {}
        if op == "compare_lineage":
            pages = request["pages"]
            diff = engine.compare_lineage(
                int(request["run_a"]),
                int(request["run_b"]),
                [int(p) for p in pages] if isinstance(pages, list) else int(pages),
            )
            return {
                "run_a": diff.run_a,
                "run_b": diff.run_b,
                "pages": list(diff.pages),
                "only_a": _node_list(diff.only_a),
                "only_b": _node_list(diff.only_b),
                "common": _node_list(diff.common),
                "identical": diff.identical,
            }, {}
        raise StoreError(f"unhandled op {op!r}")  # unreachable: SERVER_OPS gates

    def server_stats(self) -> dict:
        """Server-wide counters: uptime, snapshot, cache, pinned indexes."""
        store = self._store
        return {
            "store": self.store_path,
            "uptime_s": round(time.time() - self._started, 3),
            "snapshot_age_s": round(time.time() - self._opened_at, 3),
            "queries_served": self.queries_served,
            "refreshes": self.refreshes,
            "runs": len(store.run_ids()),
            "segments": store.manifest.segment_count,
            "parallelism": self.parallelism,
            "segment_cache": self.cache.to_dict(),
            "index_pinner": self.pinner.to_dict(),
        }


class StoreClient:
    """Small blocking client for :class:`StoreServer`'s JSON-line protocol.

    Each request opens its own connection, so one client instance may be
    shared across threads (the hammer test does).  Responses with
    ``ok: false`` raise :class:`~repro.errors.StoreError`; node lists come
    back as ``(tid, index)`` tuples.
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    def request(self, op: str, **params) -> dict:
        """Send one request; returns the raw response object."""
        payload = json.dumps({"op": op, **params}).encode("utf-8") + b"\n"
        with socket.create_connection((self.host, self.port), timeout=self.timeout) as conn:
            conn.sendall(payload)
            with conn.makefile("rb") as reader:
                line = reader.readline()
        if not line:
            raise StoreError(f"store server at {self.host}:{self.port} closed the connection")
        try:
            response = json.loads(line.decode("utf-8"))
        except ValueError as exc:
            raise StoreError(f"malformed server response: {exc}") from exc
        if not response.get("ok"):
            raise StoreError(str(response.get("error", "unknown server error")))
        return response

    def result(self, op: str, **params):
        """Send one request; returns just the ``result`` payload."""
        return self.request(op, **params)["result"]

    # ------------------------------------------------------------------ #
    # Convenience wrappers (typed results)
    # ------------------------------------------------------------------ #

    def ping(self) -> bool:
        return bool(self.result("ping")["pong"])

    def info(self) -> dict:
        return self.result("info")

    def runs(self) -> List[dict]:
        return self.result("runs")

    def backward_slice(
        self,
        node: tuple,
        run: Optional[int] = None,
        kinds: Optional[Iterable[str]] = None,
    ) -> set:
        result = self.result("slice", node=node_key(node), run=run, kinds=kinds)
        return {parse_node_key(key) for key in result["nodes"]}

    def forward_slice(
        self,
        node: tuple,
        run: Optional[int] = None,
        kinds: Optional[Iterable[str]] = None,
    ) -> set:
        result = self.result(
            "slice", node=node_key(node), run=run, kinds=kinds, forward=True
        )
        return {parse_node_key(key) for key in result["nodes"]}

    def lineage(self, pages: Iterable[int], run: Optional[int] = None) -> set:
        result = self.result("lineage", pages=list(pages), run=run)
        return {parse_node_key(key) for key in result["nodes"]}

    def taint(
        self,
        pages: Iterable[int],
        run: Optional[int] = None,
        through_thread_state: bool = False,
    ) -> dict:
        result = self.result(
            "taint", pages=list(pages), run=run, through_thread_state=through_thread_state
        )
        result["tainted_nodes"] = {parse_node_key(key) for key in result["tainted_nodes"]}
        return result

    def lineage_across_runs(self, pages: Iterable[int]) -> Dict[int, set]:
        result = self.result("lineage_across_runs", pages=list(pages))
        return {
            int(run_id): {parse_node_key(key) for key in nodes}
            for run_id, nodes in result.items()
        }

    def stats(self) -> dict:
        return self.result("stats")

    def refresh(self) -> dict:
        return self.result("refresh")

    def shutdown(self) -> dict:
        return self.result("shutdown")

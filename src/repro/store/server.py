"""A long-lived, warm query server over one provenance store.

The paper's case studies (debugging slices, DIFT taint, §VIII) hammer the
same provenance graph with many queries; re-opening the store per query
re-parses the manifest, re-merges index deltas, and re-decodes segments
every time.  :class:`StoreServer` amortizes all of that once: a single
process holds one :class:`~repro.store.cache.SegmentCache` and one
:class:`~repro.store.cache.IndexPinner` across any number of concurrent
read-only queries, so repeated questions are answered at memory speed.

**Consistency model: snapshot at open.**  The server opens the store once
and serves every query against that manifest generation -- a consistent,
immutable view (segments are immutable and ids never reused, so the
snapshot cannot be torn by later appends).  Writes that land after the
open become visible only through an explicit ``refresh``, which atomically
swaps in a new snapshot while keeping the warm cache (still-referenced
segments stay hot; superseded ones are unreachable by id).  Requests that
carry ``"follow": true`` (what ``StoreClient(refresh_mode="follow")``
sends) opt into a **bounded-staleness view** instead: before answering,
the server compares a cheap disk token (manifest + segment-log stat) and
refreshes the snapshot only when a writer's flush actually landed --
append-only growth keeps the cache namespace, so the warm entries
survive every follow refresh.  Maintenance (``compact``/``gc``)
concurrent with a serving snapshot follows the store's existing
single-writer stance: run it between snapshots and ``refresh`` afterwards.

**Remote ingest.**  A server started ``writable`` additionally accepts
``begin_run`` / ``append_epoch`` / ``commit_run``: epochs arrive as
base64-framed segment payloads (the store's own codec frames), are
appended through one writer handle, and each append is flushed -- one
O(epoch) record to the v5 segment log -- before the reply is written, so
the synchronous protocol *is* the back-pressure on slow flushes.  One
writer per run is structural (``begin_run`` mints the run id), and the
writer shares the readers' segment cache, so a follow-mode reader's
first query over a freshly ingested epoch is already warm.

**Live tails.**  The ``watch`` op streams a page set's lineage as its run
grows: one request, many response lines -- an observation whenever the
run's progress changes, a final one flagged ``done`` when the run
commits (or the watch times out).

**Protocol.**  Newline-delimited JSON over TCP -- one request object per
line, one response object per line, no dependencies beyond the standard
library.  Requests are ``{"op": ..., <params>}``; responses are
``{"ok": true, "result": ..., "stats": {...}}`` or ``{"ok": false,
"error": ...}``.  Node ids travel as ``"tid:index"`` strings (the
serialization module's ``node_key`` form).  Every query response carries
per-query stats: wall time plus the segments read, bytes read, and cache
hits/misses attributable to that query alone (collected through a
:class:`~repro.store.cache.ReadScope`, so concurrent queries do not bleed
into each other's numbers).

Use :class:`StoreClient` from Python, or ``python -m repro.store serve``
from the command line.
"""

from __future__ import annotations

import base64
import binascii
import json
import os
import socket
import socketserver
import threading
import time
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.cpg import EdgeKind
from repro.core.serialization import node_key, parse_node_key
from repro.core.thunk import SubComputation
from repro.errors import (
    CorruptSegmentError,
    InspectorError,
    StoreError,
    StoreReadOnlyError,
    StoreUnreachableError,
)

from repro.store.cache import DEFAULT_CACHE_BYTES, IndexPinner, ReadScope, SegmentCache
from repro.store.format import (
    INDEX_DIR,
    MANIFEST_NAME,
    PAGES_RUNS_FILE,
    RUN_COMPLETE,
    SEGMENT_LOG_NAME,
    SEGMENTS_DIR,
    file_size_crc,
    index_base_file_name,
    index_delta_file_name,
    run_index_dir_name,
)
from repro.store.query import StoreQueryEngine
from repro.store.segment import EdgeTuple, decode_segment, encode_segment
from repro.store.store import (
    _INDEX_BASE_RE,
    _INDEX_DELTA_RE,
    _RUN_DIR_RE,
    _SEGMENT_FILE_RE,
    ProvenanceStore,
)

#: Ops the server answers (the protocol surface).
SERVER_OPS = (
    "ping",
    "info",
    "runs",
    "slice",
    "lineage",
    "taint",
    "lineage_across_runs",
    "taint_across_runs",
    "compare_lineage",
    "watch",
    "begin_run",
    "append_epoch",
    "commit_run",
    "stats",
    "refresh",
    "manifest_digest",
    "fetch_file",
    "shutdown",
)

#: Ops that mutate the store; a server accepts them only when writable.
INGEST_OPS = ("begin_run", "append_epoch", "commit_run")

#: Ops a client must not blindly resend after the request may have been
#: received: ingest ops mutate state and shutdown stops the server, so a
#: retry could apply them twice.  Read queries are idempotent.
_NON_RETRYABLE_AFTER_SEND = frozenset(INGEST_OPS) | {"shutdown"}


def _parse_kinds(kinds: Optional[Iterable[str]]) -> Tuple[EdgeKind, ...]:
    if kinds is None:
        return (EdgeKind.DATA,)
    parsed = []
    for kind in kinds:
        try:
            parsed.append(EdgeKind(kind))
        except ValueError as exc:
            known = ", ".join(sorted(member.value for member in EdgeKind))
            raise StoreError(f"unknown edge kind {kind!r} (known kinds: {known})") from exc
    if not parsed:
        raise StoreError("at least one edge kind is required")
    return tuple(parsed)


def _node_list(nodes: Iterable[tuple]) -> List[str]:
    return [node_key(node) for node in sorted(nodes)]


class _RequestHandler(socketserver.StreamRequestHandler):
    """One connection: any number of newline-delimited JSON requests."""

    def handle(self) -> None:
        server: "StoreServer" = self.server.store_server  # type: ignore[attr-defined]
        for line in self.rfile:
            text = line.decode("utf-8").strip()
            if not text:
                continue
            try:
                request = json.loads(text)
            except ValueError:
                response = {
                    "ok": False,
                    "error": "malformed request (not JSON)",
                    "code": "bad_request",
                }
            else:
                if isinstance(request, dict) and request.get("op") == "watch" and request.get("stream"):
                    # The one streaming op: one request line, many response
                    # lines, the last flagged done -- then the connection
                    # goes back to request/response.
                    try:
                        for update in server.watch_responses(request):
                            self.wfile.write(json.dumps(update).encode("utf-8") + b"\n")
                            self.wfile.flush()
                    except (BrokenPipeError, ConnectionResetError):
                        return  # the watcher hung up mid-stream
                    continue
                response = server.handle_request(request)
            self.wfile.write(json.dumps(response).encode("utf-8") + b"\n")
            self.wfile.flush()
            if response.get("bye"):
                # The acknowledgement is flushed *before* the listener
                # stops, so a CLI client never loses the shutdown reply to
                # the process exiting first.  Closing from this handler
                # thread is safe: block_on_close is off, so server_close
                # does not try to join the current thread.
                server.close()
                break


class _TCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True
    # The shutdown op closes the server from inside a handler thread;
    # joining handler threads there would mean joining ourselves.
    block_on_close = False


class StoreServer:
    """Serves concurrent read-only store queries from one warm cache.

    Args:
        store_path: Store directory to serve.
        host: Interface to bind (loopback by default; provenance data is
            not something to expose casually).
        port: TCP port; 0 picks a free one (see :attr:`address`).
        cache_bytes: Byte budget of the shared decoded-segment cache.
        parallelism: Per-query multi-segment scan workers (each query gets
            its own :class:`StoreQueryEngine` with this knob).
        writable: Accept the remote-ingest ops (``begin_run`` /
            ``append_epoch`` / ``commit_run``) through a single writer
            handle.  Off by default: a query server should not be a write
            path by accident.
        maintenance: Run the store autopilot inside the server: an
            :class:`~repro.store.autopilot.AutopilotPolicy` (or its dict
            form).  Maintenance actions serialize with remote ingest
            through the write lock and refresh the served snapshot after
            every executed action, so follow-mode readers advance instead
            of faulting on rewritten files.  The decision log is exposed
            as :attr:`autopilot`.
        maintenance_interval_s: Seconds between autopilot cycles.
    """

    def __init__(
        self,
        store_path: str,
        host: str = "127.0.0.1",
        port: int = 0,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
        parallelism: int = 1,
        writable: bool = False,
        maintenance: Optional[object] = None,
        maintenance_interval_s: float = 5.0,
    ) -> None:
        if parallelism < 1:
            raise ValueError(f"parallelism must be >= 1, got {parallelism}")
        self.cache = SegmentCache(max_bytes=cache_bytes)
        # Bounded: a pin re-admitted by an in-flight query racing a
        # gc+refresh would otherwise linger forever (pins have no byte
        # budget); the LRU bound turns that worst case into eventual
        # eviction while still pinning every run of any realistic store.
        self.pinner = IndexPinner(max_runs=256)
        self.parallelism = parallelism
        self._store = ProvenanceStore.open(
            store_path, segment_cache=self.cache, index_pinner=self.pinner
        )
        self.store_path = store_path
        self._started = time.time()
        self._opened_at = time.time()
        self._counter_lock = threading.Lock()
        # Reentrant: refresh() locks itself so the explicit ``refresh``
        # op serializes with follow-mode refreshes, which call it while
        # already holding the lock (the double-checked fast path).
        self._refresh_lock = threading.RLock()
        self.queries_served = 0
        self.refreshes = 0
        self.follow_refreshes = 0
        self.epochs_ingested = 0
        self.runs_ingested = 0
        self._namespace_epoch = 0
        self._snapshot_token = self._disk_token()
        #: The single writer handle (writable servers only).  It shares
        #: the readers' segment cache -- same namespace, generation 0 --
        #: so appended payloads are warm for the very first follow query;
        #: it does NOT share the pinner (its in-memory indexes mutate,
        #: pinned objects are read-only-shared).
        self._writer: Optional[ProvenanceStore] = (
            ProvenanceStore.open(store_path, segment_cache=self.cache) if writable else None
        )
        self._write_lock = threading.Lock()
        #: Active remote ingests by run id (single writer per run: the
        #: run id is minted by begin_run and retired by commit_run).
        self._ingests: Dict[int, dict] = {}
        #: The in-server autopilot (``maintenance=``), or ``None``.
        self.autopilot = None
        self._autopilot_daemon = None
        self._maintenance_store: Optional[ProvenanceStore] = None
        if maintenance is not None:
            from repro.store.autopilot import Autopilot, AutopilotDaemon, AutopilotPolicy

            policy = (
                maintenance
                if isinstance(maintenance, AutopilotPolicy)
                else AutopilotPolicy.from_dict(dict(maintenance))
            )
            # Maintenance needs a mutable handle; reuse the writer so
            # ingest and maintenance share one manifest view, else open a
            # dedicated one (sharing the warm cache either way).
            if self._writer is None:
                self._maintenance_store = ProvenanceStore.open(
                    store_path, segment_cache=self.cache
                )
            handle = self._writer if self._writer is not None else self._maintenance_store
            self.autopilot = Autopilot(
                handle,
                policy,
                lock=self._write_lock,
                after_action=lambda _decision: self.refresh(),
            )
            self._autopilot_daemon = AutopilotDaemon(
                self.autopilot, interval_s=maintenance_interval_s
            )
        self._tcp = _TCPServer((host, port), _RequestHandler)
        self._tcp.store_server = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None
        self._serving = False

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (the real port when 0 was asked)."""
        return self._tcp.server_address[:2]

    @property
    def store(self) -> ProvenanceStore:
        """The current snapshot (swapped atomically by ``refresh``)."""
        return self._store

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> Tuple[str, int]:
        """Serve in a daemon thread; returns the bound address."""
        self._serving = True
        if self._autopilot_daemon is not None:
            self._autopilot_daemon.start()
        self._thread = threading.Thread(
            target=self._tcp.serve_forever, name="store-server", daemon=True
        )
        self._thread.start()
        return self.address

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`close` (the CLI path)."""
        self._serving = True
        if self._autopilot_daemon is not None:
            self._autopilot_daemon.start()
        self._tcp.serve_forever()

    def close(self) -> None:
        """Stop accepting connections and release the socket.

        Safe on a server whose serve loop never ran (an in-process-only
        server driven through :meth:`handle_request`): ``shutdown`` waits
        on an event only ``serve_forever`` sets, so it is skipped then.
        Also shuts down the served store's shared decode pools; a later
        in-process query still answers (sequentially).
        """
        if self._autopilot_daemon is not None:
            # Before the sockets: a mid-action autopilot cycle may call
            # refresh(), which must still find a live server.
            self._autopilot_daemon.stop()
        if self._serving:
            self._tcp.shutdown()
        self._tcp.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        self.store.close()
        if self._writer is not None:
            self._writer.close()
        if self._maintenance_store is not None:
            self._maintenance_store.close()

    def refresh(self) -> dict:
        """Swap in a fresh snapshot of the store directory.

        The warm cache and pinned indexes normally carry over: within one
        store's history segment ids are never reused, so every
        still-referenced entry stays valid, and a run whose index
        generations did not change re-pins without touching disk.  The
        one case where ids *can* collide is a store that was deleted and
        recreated at the same path (counters restart); the manifest
        carries no identity token, so refresh detects it structurally --
        the old snapshot's segment and run tables must still be present
        verbatim in the new manifest -- and drops the warm state when the
        check fails.  Returns the new snapshot's run/segment counts.

        Serialized through the refresh lock with every other caller (the
        explicit ``refresh`` op, follow-mode queries, watch loops): two
        interleaved refreshes could otherwise install the older of two
        freshly opened snapshots last, briefly regressing the served view.
        """
        with self._refresh_lock:
            old = self._store
            # Token before open: a write landing in between is covered by
            # the snapshot but keeps the token stale, so the next follow
            # query refreshes once more -- the safe direction.
            token = self._disk_token()
            fresh = ProvenanceStore.open(
                self.store_path, segment_cache=self.cache, index_pinner=self.pinner
            )
            if not self._same_store_lineage(old, fresh):
                # Move the fresh handle to a namespace no old handle
                # writes: an in-flight query against the dead snapshot may
                # still cache.put()/pinner.put() *after* any invalidate we
                # issue, and the recreated store's restarted ids could
                # collide with those entries.  A fresh namespace makes
                # them unreachable by construction; invalidating the old
                # one just frees memory.
                with self._counter_lock:
                    self._namespace_epoch += 1
                    fresh.cache_namespace = (
                        f"{self.store_path}#recreated-{self._namespace_epoch}"
                    )
                self.cache.invalidate(old.cache_namespace)
                self.pinner.invalidate(old.cache_namespace)
            else:
                fresh.cache_namespace = old.cache_namespace
                # Same lineage, but runs an external gc dropped would leak
                # their pins forever (the pinner has no byte budget and
                # their generations are never requested again).
                gone = set(old.run_ids()) - set(fresh.run_ids())
                for run_id in gone:
                    self.pinner.invalidate(old.cache_namespace, run_id)
            self._store = fresh
            self._snapshot_token = token
            self._opened_at = time.time()
        # Outside the refresh lock: shutting the superseded snapshot's
        # decode pools waits for its in-flight decode tasks.  Queries
        # that still hold the old handle keep working (sequentially);
        # without this a follow-mode server would leak one pool per
        # refresh that ran a parallel scan.
        old.close()
        with self._counter_lock:
            self.refreshes += 1
        return {
            "runs": len(fresh.run_ids()),
            "segments": fresh.manifest.segment_count,
            "nodes": fresh.manifest.node_count,
        }

    def _disk_token(self) -> Tuple:
        """Cheap change detector: stat of the manifest + segment log.

        Every committed write path touches one of the two files (a log
        append or a checkpoint rename), so an unchanged token proves the
        snapshot is current without opening anything.
        """
        token = []
        for name in (MANIFEST_NAME, SEGMENT_LOG_NAME):
            try:
                stat = os.stat(os.path.join(self.store_path, name))
                token.append((name, stat.st_mtime_ns, stat.st_size))
            except OSError:
                token.append((name, 0, 0))
        return tuple(token)

    def _maybe_follow_refresh(self, scope: Optional[ReadScope] = None) -> None:
        """The follow-mode staleness bound: refresh iff the disk moved on.

        Double-checked under the refresh lock so a burst of follow
        queries behind one writer flush pays for a single reopen.
        """
        if self._disk_token() == self._snapshot_token:
            return
        with self._refresh_lock:
            if self._disk_token() == self._snapshot_token:
                return  # another follow query refreshed while we waited
            self.refresh()
        if scope is not None:
            scope.record_refresh()
        with self._counter_lock:
            self.follow_refreshes += 1

    @staticmethod
    def _same_store_lineage(old: ProvenanceStore, fresh: ProvenanceStore) -> bool:
        """Whether ``fresh`` is the same store ``old`` was, grown append-only.

        True when every segment and run the old snapshot served is still
        described identically by the new manifest and the id counters
        never went backwards -- the only histories one store directory
        can legally have.  A recreated store restarts its counters and
        tables, so anything cached under the old snapshot must go.
        """
        if fresh.manifest.next_segment_id < old.manifest.next_segment_id:
            return False
        if fresh.manifest.next_run_id < old.manifest.next_run_id:
            return False
        new_segments = {
            info.segment_id: (info.run, info.nodes, info.edges, info.stored_bytes, info.codec)
            for info in fresh.manifest.segments
        }
        for info in old.manifest.segments:
            described = new_segments.get(info.segment_id)
            if described is not None and described != (
                info.run, info.nodes, info.edges, info.stored_bytes, info.codec
            ):
                return False  # same id, different content: not our lineage
        new_runs = {run.run_id: run.created_at for run in fresh.manifest.runs}
        for run in old.manifest.runs:
            if run.run_id in new_runs and new_runs[run.run_id] != run.created_at:
                return False
        return True

    # ------------------------------------------------------------------ #
    # Request dispatch
    # ------------------------------------------------------------------ #

    def handle_request(self, request: dict) -> dict:
        """Answer one protocol request (also the in-process test surface)."""
        if not isinstance(request, dict) or "op" not in request:
            return {
                "ok": False,
                "error": "request must be an object with an 'op'",
                "code": "bad_request",
            }
        op = request.get("op")
        if op not in SERVER_OPS:
            return {
                "ok": False,
                "error": f"unknown op {op!r} (known: {', '.join(SERVER_OPS)})",
                "code": "bad_request",
            }
        scope = ReadScope()
        start = time.perf_counter()
        try:
            if request.get("follow"):
                # Bounded staleness: catch up with the disk before taking
                # the snapshot this request will be answered from.
                self._maybe_follow_refresh(scope)
            store = self._store  # one snapshot per request
            try:
                result, extra = self._dispatch(op, request, store, scope)
            except (CorruptSegmentError, OSError):
                if op in INGEST_OPS or op in ("shutdown", "refresh"):
                    raise  # never replay a mutation
                # A maintenance action (compact/gc) may have rewritten or
                # dropped segment files out from under this request's
                # snapshot: the store is fine, the snapshot is stale.  One
                # refresh + retry answers from the post-maintenance view;
                # genuine damage fails the retry identically and reports
                # as usual.
                if store is self._store:
                    self.refresh()
                result, extra = self._dispatch(op, request, self._store, scope)
        except InspectorError as exc:
            # StoreError, ProvenanceError (malformed node keys), ...  The
            # ``code`` field is the stable, machine-readable error class
            # ("corrupt_segment", "quarantined", "read_only",
            # "bad_request"); the message is for humans and may change.
            return {
                "ok": False,
                "error": str(exc),
                "code": str(getattr(exc, "code", "bad_request")),
            }
        except (KeyError, TypeError, ValueError) as exc:
            return {
                "ok": False,
                "error": f"bad request parameters: {exc}",
                "code": "bad_request",
            }
        except OSError as exc:
            # Surfaced only when the stale-snapshot retry (or an ingest
            # op) still cannot read the disk: report it instead of tearing
            # the connection down mid-protocol.
            return {"ok": False, "error": f"store I/O failed: {exc}", "code": "io_error"}
        elapsed_ms = (time.perf_counter() - start) * 1e3
        with self._counter_lock:
            self.queries_served += 1
        response = {
            "ok": True,
            "result": result,
            "stats": {"elapsed_ms": round(elapsed_ms, 3), **scope.to_dict()},
        }
        response.update(extra)
        return response

    def _engine(self, store: ProvenanceStore, scope: ReadScope) -> StoreQueryEngine:
        return StoreQueryEngine(store, parallelism=self.parallelism, scope=scope)

    def _dispatch(
        self, op: str, request: dict, store: ProvenanceStore, scope: ReadScope
    ) -> Tuple[object, dict]:
        if op == "ping":
            return {"pong": True}, {}
        if op == "info":
            return store.info(), {}
        if op == "runs":
            return [store.run_summary(run_id) for run_id in store.run_ids()], {}
        if op == "stats":
            return self.server_stats(), {}
        if op == "refresh":
            return self.refresh(), {}
        if op == "manifest_digest":
            return self._manifest_digest(store), {}
        if op == "fetch_file":
            return self._fetch_file(store, str(request["path"])), {}
        if op == "shutdown":
            # The transport layer closes the listener *after* writing the
            # acknowledgement (see _RequestHandler.handle).
            return {"stopping": True}, {"bye": True}
        if op in INGEST_OPS:
            return self._handle_ingest(op, request), {}

        engine = self._engine(store, scope)
        run = request.get("run")
        if op == "watch":
            # One observation of the stream (watch_responses loops this).
            run_id = store.resolve_run(run)
            progress = engine.run_progress(run_id)
            nodes = engine.lineage_of_pages([int(p) for p in request["pages"]], run=run_id)
            return {
                "run": run_id,
                "progress": progress,
                "nodes": _node_list(nodes),
                "done": progress["status"] == RUN_COMPLETE,
            }, {}
        if op == "slice":
            origin = parse_node_key(str(request["node"]))
            kinds = _parse_kinds(request.get("kinds"))
            if request.get("forward", False):
                nodes = engine.forward_slice(origin, kinds=kinds, run=run)
            else:
                nodes = engine.backward_slice(origin, kinds=kinds, run=run)
            return {"run": store.resolve_run(run), "nodes": _node_list(nodes)}, {}
        if op == "lineage":
            nodes = engine.lineage_of_pages([int(p) for p in request["pages"]], run=run)
            return {"run": store.resolve_run(run), "nodes": _node_list(nodes)}, {}
        if op == "taint":
            result = engine.propagate_taint(
                [int(p) for p in request["pages"]],
                through_thread_state=bool(request.get("through_thread_state", False)),
                run=run,
            )
            return {
                "run": store.resolve_run(run),
                "source_pages": sorted(result.source_pages),
                "tainted_pages": sorted(result.tainted_pages),
                "tainted_nodes": _node_list(result.tainted_nodes),
                "mode": engine.last_taint_mode,
            }, {}
        if op == "lineage_across_runs":
            by_run = engine.lineage_across_runs([int(p) for p in request["pages"]])
            return {str(run_id): _node_list(nodes) for run_id, nodes in by_run.items()}, {}
        if op == "taint_across_runs":
            by_run = engine.taint_across_runs(
                [int(p) for p in request["pages"]],
                through_thread_state=bool(request.get("through_thread_state", False)),
            )
            return {
                str(run_id): {
                    "source_pages": sorted(result.source_pages),
                    "tainted_pages": sorted(result.tainted_pages),
                    "tainted_nodes": _node_list(result.tainted_nodes),
                }
                for run_id, result in by_run.items()
            }, {}
        if op == "compare_lineage":
            pages = request["pages"]
            diff = engine.compare_lineage(
                int(request["run_a"]),
                int(request["run_b"]),
                [int(p) for p in pages] if isinstance(pages, list) else int(pages),
            )
            return {
                "run_a": diff.run_a,
                "run_b": diff.run_b,
                "pages": list(diff.pages),
                "only_a": _node_list(diff.only_a),
                "only_b": _node_list(diff.only_b),
                "common": _node_list(diff.common),
                "identical": diff.identical,
            }, {}
        raise StoreError(f"unhandled op {op!r}")  # unreachable: SERVER_OPS gates

    # ------------------------------------------------------------------ #
    # Anti-entropy repair (any server is a repair source)
    # ------------------------------------------------------------------ #

    def _manifest_digest(self, store: ProvenanceStore) -> dict:
        """Per-file ``(size, crc)`` table of the served snapshot.

        This is the comparison unit of replica anti-entropy: a repairer
        diffs its local table against the primary's and fetches exactly
        the files whose checksum differs or that it lacks.  Paths are
        store-relative with ``/`` separators (wire form).  Checksums come
        from the manifest's own integrity columns where recorded (free)
        and are computed from disk for files written before the checksum
        layer.  Quarantined segments are *omitted*: a damaged copy is not
        a repair source.
        """
        manifest = store.manifest
        files: Dict[str, List[int]] = {}
        for info in manifest.segments:
            if manifest.is_quarantined(info.segment_id):
                continue
            rel = f"{SEGMENTS_DIR}/{info.file_name}"
            if info.crc is not None and info.stored_bytes:
                files[rel] = [int(info.stored_bytes), int(info.crc)]
            else:
                files[rel] = self._stat_crc(rel)
        for run in manifest.runs:
            run_dir = f"{INDEX_DIR}/{run_index_dir_name(run.run_id)}"
            names: List[str] = []
            if run.index_base:
                names.append(index_base_file_name(run.index_base))
            names.extend(index_delta_file_name(gen) for gen in run.index_deltas)
            for name in names:
                rel = f"{run_dir}/{name}"
                pair = run.index_checksums.get(name)
                files[rel] = (
                    [int(pair[0]), int(pair[1])] if pair else self._stat_crc(rel)
                )
        pages_rel = f"{INDEX_DIR}/{PAGES_RUNS_FILE}"
        if manifest.pages_runs_checksum is not None:
            files[pages_rel] = [int(v) for v in manifest.pages_runs_checksum]
        elif os.path.exists(os.path.join(self.store_path, INDEX_DIR, PAGES_RUNS_FILE)):
            files[pages_rel] = self._stat_crc(pages_rel)
        token = 0
        for rel in sorted(files):
            size, crc = files[rel]
            token = binascii.crc32(f"{rel}:{size}:{crc}\n".encode("utf-8"), token)
        return {
            "store": self.store_path,
            "digest": token & 0xFFFFFFFF,
            "files": files,
            "quarantined": {
                str(segment_id): reason
                for segment_id, reason in manifest.quarantined.items()
            },
            "runs": len(manifest.runs),
            "segments": manifest.segment_count,
        }

    def _stat_crc(self, rel: str) -> List[int]:
        """``(size, crc)`` of one store file read from disk (legacy files)."""
        target = os.path.join(self.store_path, *rel.split("/"))
        try:
            return file_size_crc(target)
        except OSError as exc:
            raise StoreError(f"cannot checksum store file {rel!r}: {exc}") from exc

    @staticmethod
    def _validate_repair_path(rel: str) -> Tuple[str, ...]:
        """The store-relative paths ``fetch_file`` may serve, nothing else.

        Structural allow-list -- the manifest, the segment log, segment
        files, per-run index base/delta files, and the cross-run page
        summary -- so a client can never name a path outside the store
        directory (no separators beyond the two known levels, no ``..``).
        """
        parts = tuple(rel.split("/"))
        if rel in (MANIFEST_NAME, SEGMENT_LOG_NAME):
            return parts
        if (
            len(parts) == 2
            and parts[0] == SEGMENTS_DIR
            and _SEGMENT_FILE_RE.match(parts[1])
        ):
            return parts
        if len(parts) == 2 and parts[0] == INDEX_DIR and parts[1] == PAGES_RUNS_FILE:
            return parts
        if (
            len(parts) == 3
            and parts[0] == INDEX_DIR
            and _RUN_DIR_RE.match(parts[1])
            and (_INDEX_BASE_RE.match(parts[2]) or _INDEX_DELTA_RE.match(parts[2]))
        ):
            return parts
        raise StoreError(f"fetch_file path {rel!r} does not name a store file")

    def _fetch_file(self, store: ProvenanceStore, rel: str) -> dict:
        """Serve one store file's bytes (base64) for a repairing replica.

        The repairer verifies the returned ``crc`` before installing the
        file, so a fetch racing a concurrent write on this server is
        detected (mismatch) rather than silently installed half-new.
        """
        parts = self._validate_repair_path(rel)
        target = os.path.join(self.store_path, *parts)
        try:
            with open(target, "rb") as handle:
                data = handle.read()
        except OSError as exc:
            raise StoreError(f"cannot read store file {rel!r}: {exc}") from exc
        return {
            "path": rel,
            "size": len(data),
            "crc": binascii.crc32(data) & 0xFFFFFFFF,
            "data": base64.b64encode(data).decode("ascii"),
        }

    # ------------------------------------------------------------------ #
    # Remote ingest (writable servers)
    # ------------------------------------------------------------------ #

    def _handle_ingest(self, op: str, request: dict) -> dict:
        """Apply one write op through the single writer handle.

        All three ops run under one lock: writes are serialized, and the
        reply is only written after the flush committed -- a slow flush
        stalls exactly the client that caused it (back-pressure), never a
        concurrent reader.
        """
        if self._writer is None:
            raise StoreReadOnlyError(
                "this store server is read-only (start it with serve --writable "
                "to accept remote ingest)"
            )
        with self._write_lock:
            writer = self._writer
            if op == "begin_run":
                run_id = writer.new_run(
                    workload=str(request.get("workload", "")),
                    meta=dict(request.get("meta") or {}),
                )
                writer.flush()  # the run is durable before any epoch lands
                self._ingests[run_id] = {"epochs": 0}
                with self._counter_lock:
                    self.runs_ingested += 1
                return {"run": run_id}
            run_id = int(request["run"])
            if run_id not in self._ingests:
                raise StoreError(
                    f"run {run_id} has no active remote ingest on this server "
                    f"(begin_run mints the id; commit_run retires it)"
                )
            if op == "append_epoch":
                try:
                    data = base64.b64decode(str(request["segment"]), validate=True)
                except (binascii.Error, ValueError) as exc:
                    raise StoreError(f"append_epoch segment is not valid base64: {exc}") from exc
                payload = decode_segment(data)
                segment_id = writer.append_segment(
                    list(payload.nodes.values()),  # insertion order = encode order
                    payload.edges,
                    run=run_id,
                    codec=request.get("codec"),
                )
                writer.flush()  # one O(epoch) log record; the reply waits on it
                self._ingests[run_id]["epochs"] += 1
                with self._counter_lock:
                    self.epochs_ingested += 1
                return {
                    "run": run_id,
                    "segment": segment_id,
                    "nodes": len(payload.nodes),
                    "edges": len(payload.edges),
                }
            # commit_run
            info = writer.manifest.run_info(run_id)
            info.meta.update(dict(request.get("meta") or {}))
            info.meta.setdefault("epochs", self._ingests[run_id]["epochs"])
            info.status = RUN_COMPLETE
            # Run completion checkpoints (same policy as a local ingest).
            writer.flush(checkpoint=True)
            del self._ingests[run_id]
            return {
                "run": run_id,
                "status": info.status,
                "nodes": info.nodes,
                "edges": info.edges,
                "segments": len(writer.manifest.segments_of_run(run_id)),
            }

    # ------------------------------------------------------------------ #
    # Live tail (watch)
    # ------------------------------------------------------------------ #

    def watch_responses(self, request: dict) -> Iterator[dict]:
        """Stream observations of a page set's lineage as its run grows.

        Yields a response line whenever the watched run's progress
        changed since the last observation, and a final one (``done``)
        when the run completes or ``timeout`` elapses.  Each poll tick is
        a cheap probe -- the follow-mode staleness check (a stat compare
        when nothing changed) plus manifest-only progress; the lineage
        query runs only when the progress tuple actually moved or the
        deadline forces the final observation, so an idle watch over a
        large run burns no query per tick.  Observations themselves are
        ordinary follow-mode requests, riding the same snapshot/refresh
        machinery as every other query.
        """
        interval = max(0.005, float(request.get("interval", 0.05)))
        deadline = time.time() + float(request.get("timeout", 30.0))
        single = {key: value for key, value in request.items() if key != "stream"}
        single["follow"] = True
        last = None
        while True:
            try:
                self._maybe_follow_refresh()
                store = self._store
                run_id = store.resolve_run(single.get("run"))
                info = store.manifest.run_info(run_id)
                probe = (
                    info.status,
                    info.nodes,
                    info.edges,
                    len(store.manifest.segments_of_run(run_id)),
                )
            except (InspectorError, KeyError, TypeError, ValueError) as exc:
                yield {"ok": False, "error": str(exc)}
                return
            timed_out = time.time() >= deadline
            if probe == last and not timed_out:
                time.sleep(interval)
                continue
            response = self.handle_request(single)
            if not response.get("ok"):
                yield response
                return
            result = response["result"]
            progress = result["progress"]
            observed = (
                progress["status"],
                progress["nodes"],
                progress["edges"],
                progress["segments"],
            )
            if timed_out and not result["done"]:
                result["done"] = True
                result["timed_out"] = True
            if observed != last or result["done"]:
                last = observed
                yield response
            if result["done"]:
                return
            time.sleep(interval)

    def server_stats(self) -> dict:
        """Server-wide counters: uptime, snapshot, cache, pinned indexes."""
        store = self._store
        return {
            "store": self.store_path,
            "uptime_s": round(time.time() - self._started, 3),
            "snapshot_age_s": round(time.time() - self._opened_at, 3),
            "queries_served": self.queries_served,
            "refreshes": self.refreshes,
            "follow_refreshes": self.follow_refreshes,
            "writable": self._writer is not None,
            "active_ingests": len(self._ingests),
            "runs_ingested": self.runs_ingested,
            "epochs_ingested": self.epochs_ingested,
            "runs": len(store.run_ids()),
            "segments": store.manifest.segment_count,
            "quarantined_segments": sorted(store.manifest.quarantined),
            "degraded": bool(store.manifest.quarantined),
            "parallelism": self.parallelism,
            "segment_cache": self.cache.to_dict(),
            "index_pinner": self.pinner.to_dict(),
            "maintenance": (
                None
                if self.autopilot is None
                else {
                    "cycles": self.autopilot.cycles,
                    "decisions": len(self.autopilot.decisions),
                    "policy": self.autopilot.policy.to_dict(),
                }
            ),
        }


class _SentRequestFailed(OSError):
    """The connection broke *after* the request may have reached the server."""


class StoreClient:
    """Small blocking client for :class:`StoreServer`'s JSON-line protocol.

    Each request opens its own connection, so one client instance may be
    shared across threads (the hammer test does).  Responses with
    ``ok: false`` raise :class:`~repro.errors.StoreError`; node lists come
    back as ``(tid, index)`` tuples.

    Transient socket errors (refused/reset/timeout/closed-without-reply)
    are retried with capped exponential backoff; once ``retries`` are
    exhausted the failure surfaces as a :class:`StoreError` naming the
    endpoint, never a raw ``OSError``.  Non-idempotent ops (the ingest
    ops, ``shutdown``) are only retried while the *connection* fails --
    after the request may have reached the server, a blind resend could
    apply it twice, so those fail fast instead.

    Args:
        host: Server host.
        port: Server port.
        timeout: Per-connection socket timeout in seconds.
        retries: Extra attempts after the first failed one.
        backoff: Initial retry delay in seconds (doubles per retry).
        backoff_cap: Upper bound on the retry delay.
        refresh_mode: ``"snapshot"`` (default) queries the server's
            current snapshot as-is; ``"follow"`` tags every request so
            the server catches up with the disk first (bounded
            staleness -- the live-tail reader mode).
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 30.0,
        retries: int = 2,
        backoff: float = 0.05,
        backoff_cap: float = 1.0,
        refresh_mode: str = "snapshot",
    ) -> None:
        if refresh_mode not in ("snapshot", "follow"):
            raise StoreError(
                f"unknown refresh_mode {refresh_mode!r} (known: snapshot, follow)"
            )
        if retries < 0:
            raise StoreError(f"retries must be non-negative, got {retries}")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.backoff_cap = backoff_cap
        self.refresh_mode = refresh_mode

    @classmethod
    def from_url(cls, url: str, **kwargs) -> "StoreClient":
        """Build a client from ``host:port`` / ``store://host:port``.

        The URL form is what ``run_with_provenance(store_url=...)``
        accepts; extra keyword arguments pass through to the constructor.
        """
        text = url
        if "://" in text:
            scheme, _, text = text.partition("://")
            if scheme not in ("store", "tcp"):
                raise StoreError(
                    f"unsupported store url scheme {scheme!r} in {url!r} "
                    f"(use store://host:port)"
                )
        host, _, port_text = text.rpartition(":")
        if not host or not port_text.isdigit():
            raise StoreError(f"malformed store url {url!r} (expected host:port)")
        return cls(host, int(port_text), **kwargs)

    def _exchange(self, payload: bytes) -> bytes:
        """One connection, one request, one reply line.

        Connect-phase failures propagate as plain ``OSError`` (nothing
        was sent; always safe to retry); failures after the send are
        wrapped in :class:`_SentRequestFailed` so the retry policy can
        refuse to resend non-idempotent ops.
        """
        conn = socket.create_connection((self.host, self.port), timeout=self.timeout)
        with conn:
            try:
                conn.sendall(payload)
                with conn.makefile("rb") as reader:
                    line = reader.readline()
            except OSError as exc:
                raise _SentRequestFailed(str(exc)) from exc
        if not line:
            raise _SentRequestFailed("server closed the connection without replying")
        return line

    def request(self, op: str, **params) -> dict:
        """Send one request; returns the raw response object."""
        if self.refresh_mode == "follow":
            params.setdefault("follow", True)
        payload = json.dumps({"op": op, **params}).encode("utf-8") + b"\n"
        attempts = self.retries + 1
        delay = self.backoff
        last_error: Optional[OSError] = None
        for attempt in range(attempts):
            if attempt:
                # Backoff is paid only *between* attempts -- once the last
                # attempt failed there is no next one to wait for, so
                # exhaustion raises immediately instead of sleeping one
                # final full backoff first.
                time.sleep(delay)
                delay = min(delay * 2, self.backoff_cap)
            try:
                line = self._exchange(payload)
            except _SentRequestFailed as exc:
                # The request was sent: retrying a non-idempotent op could
                # apply it twice -- surface the ambiguity immediately.
                if op in _NON_RETRYABLE_AFTER_SEND:
                    raise StoreError(
                        f"store server at {self.host}:{self.port} dropped the "
                        f"connection after {op!r} was sent ({exc}); not retrying "
                        f"a non-idempotent op (it may already have been applied)"
                    ) from exc
                last_error = exc
            except OSError as exc:
                last_error = exc  # connect-phase: nothing sent, retry freely
            else:
                try:
                    response = json.loads(line.decode("utf-8"))
                except ValueError as exc:
                    raise StoreError(f"malformed server response: {exc}") from exc
                if not response.get("ok"):
                    error = StoreError(str(response.get("error", "unknown server error")))
                    # Surface the server's stable error class to callers
                    # (``corrupt_segment``, ``quarantined``, ``read_only``,
                    # ``bad_request``) without guessing from the message.
                    error.code = str(response.get("code", "bad_request"))
                    raise error
                return response
        raise StoreUnreachableError(
            f"store server at {self.host}:{self.port} unreachable after "
            f"{attempts} attempt{'s' if attempts != 1 else ''}: {last_error}"
        ) from last_error

    def result(self, op: str, **params):
        """Send one request; returns just the ``result`` payload."""
        return self.request(op, **params)["result"]

    # ------------------------------------------------------------------ #
    # Convenience wrappers (typed results)
    # ------------------------------------------------------------------ #

    def ping(self) -> bool:
        return bool(self.result("ping")["pong"])

    def info(self) -> dict:
        return self.result("info")

    def runs(self) -> List[dict]:
        return self.result("runs")

    def backward_slice(
        self,
        node: tuple,
        run: Optional[int] = None,
        kinds: Optional[Iterable[str]] = None,
    ) -> set:
        result = self.result("slice", node=node_key(node), run=run, kinds=kinds)
        return {parse_node_key(key) for key in result["nodes"]}

    def forward_slice(
        self,
        node: tuple,
        run: Optional[int] = None,
        kinds: Optional[Iterable[str]] = None,
    ) -> set:
        result = self.result(
            "slice", node=node_key(node), run=run, kinds=kinds, forward=True
        )
        return {parse_node_key(key) for key in result["nodes"]}

    def lineage(self, pages: Iterable[int], run: Optional[int] = None) -> set:
        result = self.result("lineage", pages=list(pages), run=run)
        return {parse_node_key(key) for key in result["nodes"]}

    def taint(
        self,
        pages: Iterable[int],
        run: Optional[int] = None,
        through_thread_state: bool = False,
    ) -> dict:
        result = self.result(
            "taint", pages=list(pages), run=run, through_thread_state=through_thread_state
        )
        result["tainted_nodes"] = {parse_node_key(key) for key in result["tainted_nodes"]}
        return result

    def lineage_across_runs(self, pages: Iterable[int]) -> Dict[int, set]:
        result = self.result("lineage_across_runs", pages=list(pages))
        return {
            int(run_id): {parse_node_key(key) for key in nodes}
            for run_id, nodes in result.items()
        }

    def taint_across_runs(
        self, pages: Iterable[int], through_thread_state: bool = False
    ) -> Dict[int, dict]:
        result = self.result(
            "taint_across_runs",
            pages=list(pages),
            through_thread_state=through_thread_state,
        )
        return {
            int(run_id): {
                "source_pages": list(entry["source_pages"]),
                "tainted_pages": list(entry["tainted_pages"]),
                "tainted_nodes": {parse_node_key(key) for key in entry["tainted_nodes"]},
            }
            for run_id, entry in result.items()
        }

    def compare_lineage(self, run_a: int, run_b: int, pages) -> dict:
        result = self.result("compare_lineage", run_a=run_a, run_b=run_b, pages=pages)
        for side in ("only_a", "only_b", "common"):
            result[side] = {parse_node_key(key) for key in result[side]}
        return result

    def stats(self) -> dict:
        return self.result("stats")

    def refresh(self) -> dict:
        return self.result("refresh")

    def manifest_digest(self) -> dict:
        """The server's per-file ``(size, crc)`` table (repair source view)."""
        return self.result("manifest_digest")

    def fetch_file(self, path: str) -> bytes:
        """Fetch one store file's bytes, verifying the transfer checksum."""
        result = self.result("fetch_file", path=path)
        data = base64.b64decode(str(result["data"]), validate=True)
        crc = binascii.crc32(data) & 0xFFFFFFFF
        if len(data) != int(result["size"]) or crc != int(result["crc"]):
            raise StoreError(
                f"fetch_file {path!r} arrived damaged "
                f"({len(data)} bytes crc {crc:#010x}, server said "
                f"{result['size']} bytes crc {int(result['crc']):#010x})"
            )
        return data

    def shutdown(self) -> dict:
        return self.result("shutdown")

    # ------------------------------------------------------------------ #
    # Remote ingest (writable servers)
    # ------------------------------------------------------------------ #

    def begin_run(self, workload: str = "", meta: Optional[dict] = None) -> int:
        """Mint a run on the server; returns its id (the write handle)."""
        return int(self.result("begin_run", workload=workload, meta=meta)["run"])

    def append_epoch(
        self,
        run: int,
        nodes: Sequence[SubComputation],
        edges: Sequence[EdgeTuple] = (),
        codec: Optional[str] = None,
    ) -> dict:
        """Ship one epoch (nodes + edges) as a segment of ``run``.

        The payload travels as the store's own codec frame (base64 over
        the JSON line); the call returns only after the server flushed
        the epoch durably -- the synchronous reply is the back-pressure.
        """
        framed, _ = encode_segment(nodes, edges, codec=codec)
        return self.result(
            "append_epoch",
            run=run,
            segment=base64.b64encode(framed).decode("ascii"),
            codec=codec,
        )

    def commit_run(self, run: int, meta: Optional[dict] = None) -> dict:
        """Mark ``run`` complete; the server checkpoints the manifest."""
        return self.result("commit_run", run=run, meta=meta)

    # ------------------------------------------------------------------ #
    # Live tail (watch)
    # ------------------------------------------------------------------ #

    def watch(
        self,
        pages: Iterable[int],
        run: Optional[int] = None,
        interval: float = 0.05,
        timeout: float = 30.0,
    ) -> Iterator[dict]:
        """Stream lineage observations of ``pages`` as ``run`` grows.

        Yields one dict per server observation (``nodes`` as ``(tid,
        index)`` tuples plus the run's ``progress``); the final one has
        ``done`` set -- the run completed or the watch timed out.
        """
        request = {
            "op": "watch",
            "pages": [int(p) for p in pages],
            "run": run,
            "stream": True,
            "interval": interval,
            "timeout": timeout,
        }
        payload = json.dumps(request).encode("utf-8") + b"\n"
        # The stream only emits on change: the socket must outlive quiet
        # stretches up to the server-side watch timeout.
        with socket.create_connection(
            (self.host, self.port), timeout=max(self.timeout, timeout + 5.0)
        ) as conn:
            conn.sendall(payload)
            with conn.makefile("rb") as reader:
                for line in reader:
                    try:
                        response = json.loads(line.decode("utf-8"))
                    except ValueError as exc:
                        raise StoreError(f"malformed watch update: {exc}") from exc
                    if not response.get("ok"):
                        raise StoreError(str(response.get("error", "unknown server error")))
                    result = response["result"]
                    result["nodes"] = [parse_node_key(key) for key in result["nodes"]]
                    yield result
                    if result.get("done"):
                        return
        raise StoreError(
            f"store server at {self.host}:{self.port} closed the watch stream early"
        )

"""Run-fleet generation and population-level drift detection.

The gate (:mod:`repro.store.gate`) and autopilot
(:mod:`repro.store.autopilot`) only earn their keep against a store with
*many* runs; this module manufactures them.  :func:`run_fleet` replays
randomized-but-deterministic workload variants through the ordinary
tracing pipeline (:func:`repro.inspector.api.run_with_provenance`) into
one store, at configurable concurrency, through either sink:

* **local** -- a shared :class:`~repro.store.store.ProvenanceStore`
  handle.  Because concurrent sinks on one handle would race its
  manifest, a fleet with ``concurrency > 1`` transparently stands up a
  loopback writable :class:`~repro.store.server.StoreServer` and streams
  through it (the server's write lock serializes epochs); a
  ``concurrency == 1`` fleet writes the handle directly.
* **remote** -- any ``host:port`` of a writable server
  (:class:`~repro.store.sink.RemoteStoreSink` under the hood), which is
  how a soak hammers a live deployment.

Variants are drawn from a seeded RNG (:attr:`FleetSpec.fleet_seed`), so
the same spec always produces the same fleet -- the property tests lean
on that, and so does :func:`drift_report`, the population-level
counterpart of the single-run gate: it fingerprints every run of two
groups page by page and reports the pages whose lineage-signature *sets*
differ between the populations, which catches "one config in group B
computes this page differently" without blessing any individual run.
"""

from __future__ import annotations

import hashlib
import random
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.core.serialization import node_key
from repro.errors import StoreError

from repro.store.query import StoreQueryEngine
from repro.store.store import ProvenanceStore


@dataclass
class FleetSpec:
    """What a fleet looks like: which variants, how many, how parallel.

    Attributes:
        workloads: Workload names variants are drawn from.
        runs: Total runs to ingest.
        concurrency: Worker threads replaying variants.
        size: Dataset size of every variant.
        threads: Traced thread counts variants are drawn from.
        seeds: Dataset seeds variants are drawn from (a single entry
            makes every variant of a workload provenance-identical --
            the "clean population" shape the drift tests start from).
        fleet_seed: Seed of the RNG that assigns variants, so the same
            spec always plans the same fleet.
        run_meta: Extra metadata recorded with every run (each run also
            gets ``fleet_variant``/``fleet_seed``/``fleet_threads``).
    """

    workloads: Tuple[str, ...] = ("histogram", "word_count")
    runs: int = 8
    concurrency: int = 2
    size: str = "small"
    threads: Tuple[int, ...] = (2,)
    seeds: Tuple[int, ...] = (42,)
    fleet_seed: int = 1234
    run_meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.runs < 1:
            raise StoreError(f"a fleet needs at least one run, got {self.runs}")
        if self.concurrency < 1:
            raise StoreError(f"concurrency must be >= 1, got {self.concurrency}")
        if not self.workloads:
            raise StoreError("a fleet needs at least one workload")
        if not self.threads or not self.seeds:
            raise StoreError("a fleet needs at least one thread count and one seed")

    def plan(self) -> List["FleetVariant"]:
        """The deterministic variant list this spec expands to."""
        rng = random.Random(self.fleet_seed)
        return [
            FleetVariant(
                variant=index,
                workload=rng.choice(self.workloads),
                threads=rng.choice(self.threads),
                seed=rng.choice(self.seeds),
            )
            for index in range(self.runs)
        ]


@dataclass
class FleetVariant:
    """One planned fleet member (before it has run)."""

    variant: int
    workload: str
    threads: int
    seed: int


@dataclass
class FleetRun:
    """One fleet member's outcome."""

    variant: int
    workload: str
    threads: int
    seed: int
    run_id: Optional[int] = None
    elapsed_s: float = 0.0
    error: Optional[str] = None

    def to_dict(self) -> dict:
        return {
            "variant": self.variant,
            "workload": self.workload,
            "threads": self.threads,
            "seed": self.seed,
            "run_id": self.run_id,
            "elapsed_s": round(self.elapsed_s, 6),
            "error": self.error,
        }


@dataclass
class FleetResult:
    """Everything a finished fleet ingested (and anything that failed)."""

    runs: List[FleetRun] = field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def run_ids(self) -> List[int]:
        """Minted run ids of the successful members, variant order."""
        return [run.run_id for run in self.runs if run.run_id is not None]

    @property
    def errors(self) -> List[FleetRun]:
        return [run for run in self.runs if run.error is not None]

    @property
    def runs_per_s(self) -> float:
        succeeded = len(self.run_ids)
        return succeeded / self.elapsed_s if self.elapsed_s else 0.0

    def by_workload(self) -> Dict[str, List[int]]:
        grouped: Dict[str, List[int]] = {}
        for run in self.runs:
            if run.run_id is not None:
                grouped.setdefault(run.workload, []).append(run.run_id)
        return grouped

    def to_dict(self) -> dict:
        return {
            "runs": [run.to_dict() for run in self.runs],
            "run_ids": self.run_ids,
            "errors": len(self.errors),
            "elapsed_s": round(self.elapsed_s, 6),
            "runs_per_s": round(self.runs_per_s, 3),
        }


def run_fleet(
    spec: FleetSpec,
    store_path: Optional[Union[str, ProvenanceStore]] = None,
    store_url: Optional[str] = None,
) -> FleetResult:
    """Replay ``spec``'s variants into a store; returns the fleet record.

    Exactly one of ``store_path`` (a directory or open handle) and
    ``store_url`` (a writable server address) must be given.  Failures of
    individual variants are recorded per run, not raised -- a fleet is a
    soak tool and one bad variant must not vaporize the rest.
    """
    if (store_path is None) == (store_url is None):
        raise StoreError("run_fleet needs exactly one of store_path= or store_url=")
    # Lazy: the inspector API pulls in the whole tracing stack, and the
    # store package must stay importable without it at module load time.
    from repro.inspector.api import run_with_provenance

    variants = spec.plan()
    bridge_server = None
    url = store_url
    path_handle: Optional[Union[str, ProvenanceStore]] = None
    if store_path is not None:
        if spec.concurrency == 1:
            path_handle = store_path
        else:
            # Concurrent sinks on one local handle would race its
            # manifest; a loopback writable server serializes them.
            from repro.store.server import StoreServer

            if isinstance(store_path, ProvenanceStore):
                target = store_path.path
            else:
                target = store_path
                ProvenanceStore.open_or_create(target).close()
            bridge_server = StoreServer(target, writable=True)
            host, port = bridge_server.start()
            url = f"{host}:{port}"

    def replay(member: FleetVariant) -> FleetRun:
        record = FleetRun(
            variant=member.variant,
            workload=member.workload,
            threads=member.threads,
            seed=member.seed,
        )
        meta = dict(spec.run_meta)
        meta.update(
            {
                "fleet_variant": member.variant,
                "fleet_seed": member.seed,
                "fleet_threads": member.threads,
            }
        )
        started = time.monotonic()
        try:
            result = run_with_provenance(
                member.workload,
                num_threads=member.threads,
                size=spec.size,
                seed=member.seed,
                store_path=path_handle,
                store_url=url,
                run_meta=meta,
            )
            record.run_id = result.store_run_id
        except Exception as exc:  # noqa: BLE001 - recorded, not raised
            record.error = f"{type(exc).__name__}: {exc}"
        record.elapsed_s = time.monotonic() - started
        return record

    started = time.monotonic()
    result = FleetResult()
    try:
        if spec.concurrency == 1:
            result.runs = [replay(member) for member in variants]
        else:
            with ThreadPoolExecutor(max_workers=spec.concurrency) as pool:
                result.runs = list(pool.map(replay, variants))
    finally:
        if bridge_server is not None:
            bridge_server.close()
    result.elapsed_s = time.monotonic() - started
    result.runs.sort(key=lambda run: run.variant)
    return result


# ---------------------------------------------------------------------- #
# Population-level drift
# ---------------------------------------------------------------------- #


def _lineage_signature(engine: StoreQueryEngine, page: int, run_id: int) -> str:
    """Stable digest of one page's lineage in one run."""
    keys = sorted(node_key(node) for node in engine.lineage_of_pages((page,), run=run_id))
    return hashlib.sha1("\n".join(keys).encode("utf-8")).hexdigest()[:16]


def drift_report(
    store: ProvenanceStore,
    group_a: Sequence[int],
    group_b: Sequence[int],
    pages: Optional[Iterable[int]] = None,
    max_pages: Optional[int] = None,
) -> dict:
    """Compare two run populations' per-page lineage signatures.

    Args:
        store: The store holding both groups.
        group_a: Run ids of the reference population.
        group_b: Run ids of the compared population.
        pages: Pages to fingerprint; defaults to every page touched by
            *all* runs of both groups (the common denominator -- a page
            only some runs touch is a workload difference, not drift).
        max_pages: Cap the page list (smallest pages first) to bound cost.

    A page **diverges** when the *set* of distinct lineage signatures
    observed across group B differs from group A's -- some variant in one
    population computes the page a way no variant of the other does.
    The report is deterministic and independent of run order: groups are
    sorted, signatures are counted, and pages enumerate in page order.
    """
    group_a = sorted(dict.fromkeys(int(run) for run in group_a))
    group_b = sorted(dict.fromkeys(int(run) for run in group_b))
    if not group_a or not group_b:
        raise StoreError("drift_report needs two non-empty run groups")
    for run_id in group_a + group_b:
        store.manifest.run_info(run_id)  # validates existence
    if pages is None:
        common: Optional[Set[int]] = None
        for run_id in group_a + group_b:
            touched = store.indexes_for(run_id).pages_touched()
            common = set(touched) if common is None else (common & touched)
        page_list = sorted(common or ())
    else:
        page_list = sorted(set(int(page) for page in pages))
    truncated = False
    if max_pages is not None and len(page_list) > max_pages:
        page_list = page_list[:max_pages]
        truncated = True
    engine = StoreQueryEngine(store)
    diverged: List[dict] = []
    for page in page_list:
        signatures_a: Dict[str, int] = {}
        signatures_b: Dict[str, int] = {}
        for run_id in group_a:
            sig = _lineage_signature(engine, page, run_id)
            signatures_a[sig] = signatures_a.get(sig, 0) + 1
        for run_id in group_b:
            sig = _lineage_signature(engine, page, run_id)
            signatures_b[sig] = signatures_b.get(sig, 0) + 1
        if set(signatures_a) != set(signatures_b):
            diverged.append(
                {
                    "page": page,
                    "signatures_a": dict(sorted(signatures_a.items())),
                    "signatures_b": dict(sorted(signatures_b.items())),
                    "only_a": sorted(set(signatures_a) - set(signatures_b)),
                    "only_b": sorted(set(signatures_b) - set(signatures_a)),
                }
            )
    return {
        "ok": not diverged,
        "group_a": group_a,
        "group_b": group_b,
        "pages_checked": len(page_list),
        "pages_truncated": truncated,
        "diverged_pages": [entry["page"] for entry in diverged],
        "diverged": diverged,
    }

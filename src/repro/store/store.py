"""The persistent provenance store.

:class:`ProvenanceStore` owns one store directory: an append-only sequence
of compressed CPG segments plus per-run secondary indexes and the
manifest.  One store holds **many traced runs** -- each run is its own
node-id namespace (node ids ``(tid, index)`` are only unique within a
run).  Whole graphs are ingested with :meth:`ProvenanceStore.ingest`
(which mints a fresh run per call); running executions stream into the
store through :class:`repro.store.sink.StoreSink`; queries that only touch
the index-selected subgraph are served by
:class:`repro.store.query.StoreQueryEngine`.

Maintenance is run-scoped: :meth:`ProvenanceStore.compact` rewrites a
run's segments into fewer, denser ones (folding in the edge-only tail
segments a streamed ingest leaves behind) and :meth:`ProvenanceStore.gc`
drops superseded runs and reclaims their disk space.  Both are
crash-consistent through the store's single commit protocol: new files
first, manifest last (temp file + atomic rename), old files deleted only
after the manifest commit -- a crash at any point leaves the previous
consistent generation in place, and unreferenced files are swept by the
next maintenance operation.
"""

from __future__ import annotations

import datetime as _datetime
import json
import os
import re
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.cpg import ConcurrentProvenanceGraph
from repro.core.serialization import apply_edge, cpg_from_json, node_key
from repro.core.thunk import SubComputation
from repro.errors import StoreError

from repro.store.format import (
    DEFAULT_SEGMENT_NODES,
    INDEX_DIR,
    LEGACY_RUN_ID,
    MANIFEST_NAME,
    RUN_COMPLETE,
    SEGMENTS_DIR,
    STORE_FORMAT_VERSION,
    STORE_FORMAT_VERSION_V2,
    RunInfo,
    SegmentInfo,
    StoreManifest,
    run_index_dir_name,
    segment_file_name,
)
from repro.store.indexes import StoreIndexes
from repro.store.segment import EdgeTuple, SegmentPayload, decode_segment, encode_segment

_SEGMENT_FILE_RE = re.compile(r"^seg-(\d{8})\.seg$")
_RUN_DIR_RE = re.compile(r"^run-(\d{8})$")


def _utc_now_iso() -> str:
    """Wall-clock timestamp recorded for freshly minted runs."""
    return _datetime.datetime.now(_datetime.timezone.utc).isoformat(timespec="seconds")


@dataclass
class StoreReadStats:
    """Disk-read accounting (the out-of-core acceptance metric).

    Attributes:
        segments_read: Segment files decoded from disk (cache misses).
        bytes_read: Compressed bytes read from segment files.
    """

    segments_read: int = 0
    bytes_read: int = 0


@dataclass
class MaintenanceStats:
    """What one :meth:`ProvenanceStore.compact` or ``gc`` call reclaimed.

    Attributes:
        runs_dropped: Run ids removed from the store (gc only).
        segments_before: Referenced segments before the operation.
        segments_after: Referenced segments after the operation.
        bytes_reclaimed: Segment bytes deleted from disk.
    """

    runs_dropped: List[int] = field(default_factory=list)
    segments_before: int = 0
    segments_after: int = 0
    bytes_reclaimed: int = 0

    def to_dict(self) -> dict:
        return {
            "runs_dropped": list(self.runs_dropped),
            "segments_before": self.segments_before,
            "segments_after": self.segments_after,
            "bytes_reclaimed": self.bytes_reclaimed,
        }


#: Decoded segments kept in memory at once (LRU); queries over stores
#: larger than this stay out-of-core in memory, not just in I/O counts.
DEFAULT_CACHE_SEGMENTS = 64


class ProvenanceStore:
    """One store directory: segments + per-run indexes + manifest.

    Node ids are ``(tid, index)`` and therefore collide *across* runs of
    the same program; the run id minted at ingest is the namespace that
    keeps them apart.  Every query is answered within a run (resolved
    implicitly when the store holds exactly one).

    Use :meth:`create`, :meth:`open`, or :meth:`open_or_create` instead of
    the constructor.
    """

    def __init__(
        self, path: str, manifest: StoreManifest, run_indexes: Dict[int, StoreIndexes]
    ) -> None:
        self.path = path
        self.manifest = manifest
        self.run_indexes = run_indexes
        self.read_stats = StoreReadStats()
        self.max_cached_segments = DEFAULT_CACHE_SEGMENTS
        self._cache: Dict[int, SegmentPayload] = {}

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    @classmethod
    def create(cls, path: str, meta: Optional[dict] = None) -> "ProvenanceStore":
        """Initialise an empty store at ``path`` (must not already hold one)."""
        manifest_path = os.path.join(path, MANIFEST_NAME)
        if os.path.exists(manifest_path):
            raise StoreError(f"a provenance store already exists at {path}")
        os.makedirs(os.path.join(path, SEGMENTS_DIR), exist_ok=True)
        manifest = StoreManifest(meta=dict(meta or {}))
        store = cls(path, manifest, {})
        store.flush()
        return store

    @classmethod
    def open(cls, path: str) -> "ProvenanceStore":
        """Open an existing store directory (format version 2 or 3)."""
        manifest_path = os.path.join(path, MANIFEST_NAME)
        if not os.path.exists(manifest_path):
            raise StoreError(f"no provenance store at {path} (missing {MANIFEST_NAME})")
        with open(manifest_path, "r", encoding="utf-8") as handle:
            try:
                manifest = StoreManifest.from_dict(json.load(handle))
            except json.JSONDecodeError as exc:
                raise StoreError(f"corrupt manifest at {path}: {exc}") from exc
        run_indexes: Dict[int, StoreIndexes] = {}
        store = cls(path, manifest, run_indexes)
        for run in manifest.runs:
            if manifest.version == STORE_FORMAT_VERSION_V2:
                # PR-1 layout: one implicit run, flat index/ directory.
                index_dir = os.path.join(path, INDEX_DIR)
            else:
                index_dir = os.path.join(path, INDEX_DIR, run_index_dir_name(run.run_id))
            indexes = StoreIndexes.load(index_dir)
            # The manifest is the commit point: a crash mid-flush can leave
            # index files a generation ahead of it (appended to, or -- after
            # a compaction -- rewritten against replacement segments the
            # manifest never committed).  Whenever the loaded generation
            # does not match the manifest, rebuild from the committed
            # segments, which are the ground truth.
            valid = [info.segment_id for info in manifest.segments_of_run(run.run_id)]
            if not indexes.is_consistent_with(valid, run.nodes):
                indexes = store._rebuild_indexes_from_segments(run.run_id)
            run_indexes[run.run_id] = indexes
        return store

    def _rebuild_indexes_from_segments(self, run_id: int) -> StoreIndexes:
        """Reconstruct one run's indexes from its committed segments.

        Recovery path for torn index files (see :meth:`open`).  Exact by
        construction: a run's segments are appended -- and compaction
        rewrites them -- in topological order, and every ingest path
        assigns ranks sequentially from 0, so a node's rank is precisely
        its position in the run's segment-order traversal.
        """
        indexes = StoreIndexes()
        rank = 0
        for info in self.manifest.segments_of_run(run_id):
            payload = self.segment(info.segment_id)
            for node in payload.nodes.values():  # insertion order = encode order
                indexes.add_node(info.segment_id, node, rank)
                rank += 1
            for edge in payload.edges:
                indexes.add_edge(info.segment_id, edge)
        return indexes

    @classmethod
    def open_or_create(cls, path: str, meta: Optional[dict] = None) -> "ProvenanceStore":
        """Open ``path`` when it holds a store, initialise one otherwise."""
        if os.path.exists(os.path.join(path, MANIFEST_NAME)):
            return cls.open(path)
        return cls.create(path, meta=meta)

    def flush(self) -> None:
        """Write the manifest and every run's index files to disk.

        Index files are written first and the manifest last, each through a
        temp-file + atomic rename, so a crash mid-flush leaves the previous
        consistent manifest/index generation in place (the manifest is the
        commit point: new segments or runs it does not yet reference are
        ignored).  Flushing always writes the version-3 layout; a store
        opened as version 2 is upgraded in place by its first flush.
        """
        for run_id, indexes in self.run_indexes.items():
            indexes.save(os.path.join(self.path, INDEX_DIR, run_index_dir_name(run_id)))
        manifest_path = os.path.join(self.path, MANIFEST_NAME)
        scratch = manifest_path + ".tmp"
        with open(scratch, "w", encoding="utf-8") as handle:
            json.dump(self.manifest.to_dict(), handle, sort_keys=True, indent=2)
        os.replace(scratch, manifest_path)
        self.manifest.version = STORE_FORMAT_VERSION

    # ------------------------------------------------------------------ #
    # Runs
    # ------------------------------------------------------------------ #

    def run_ids(self) -> List[int]:
        """Every run id in the store, in mint order."""
        return self.manifest.run_ids()

    def new_run(
        self,
        workload: str = "",
        meta: Optional[dict] = None,
        created_at: Optional[str] = None,
    ) -> int:
        """Mint a fresh run (the namespace of one traced execution).

        The run id is recorded in the manifest together with the workload
        name and wall-clock/config metadata; it becomes durable at the next
        :meth:`flush`.  Callers can pass their own ``created_at`` timestamp
        (the session does); it defaults to the current UTC time.
        """
        run = self.manifest.mint_run(
            workload=workload,
            created_at=created_at if created_at is not None else _utc_now_iso(),
            meta=meta,
        )
        self.run_indexes[run.run_id] = StoreIndexes()
        return run.run_id

    def resolve_run(self, run: Optional[int] = None) -> int:
        """Resolve ``run`` to a run id, defaulting to the store's only run.

        Raises:
            StoreError: If ``run`` is unknown, the store is empty, or the
                store holds several runs and ``run`` was not given.
        """
        if run is not None:
            self.manifest.run_info(run)  # validates existence
            return run
        runs = self.run_ids()
        if len(runs) == 1:
            return runs[0]
        if not runs:
            raise StoreError(f"store at {self.path} holds no runs yet")
        raise StoreError(
            f"store at {self.path} holds {len(runs)} runs ({runs}); "
            f"pass run=<id> to pick one"
        )

    def indexes_for(self, run: Optional[int] = None) -> StoreIndexes:
        """The secondary indexes of ``run`` (default: the store's only run)."""
        return self.run_indexes[self.resolve_run(run)]

    @property
    def indexes(self) -> StoreIndexes:
        """Single-run convenience accessor (empty for an empty store).

        Raises:
            StoreError: When the store holds several runs -- use
                :meth:`indexes_for` with an explicit run id instead.
        """
        if not self.run_ids():
            return StoreIndexes()
        return self.indexes_for(None)

    # ------------------------------------------------------------------ #
    # Appending
    # ------------------------------------------------------------------ #

    def append_segment(
        self,
        nodes: Sequence[SubComputation],
        edges: Sequence[EdgeTuple],
        run: Optional[int] = None,
        topo_positions: Optional[Sequence[int]] = None,
    ) -> int:
        """Seal ``nodes`` + ``edges`` into a new segment of ``run``.

        Topological ranks default to arrival order (the run's ``next_topo``
        onwards); the whole-graph ingest path passes explicit ranks from
        :meth:`ConcurrentProvenanceGraph.topological_order` instead.

        The manifest and indexes are only updated in memory; call
        :meth:`flush` once the batch of appends is complete.
        """
        run_id = self.resolve_run(run)
        run_info = self.manifest.run_info(run_id)
        indexes = self.run_indexes[run_id]
        if topo_positions is None:
            topo_positions = range(run_info.next_topo, run_info.next_topo + len(nodes))
        elif len(topo_positions) != len(nodes):
            raise StoreError(
                f"got {len(topo_positions)} topological ranks for {len(nodes)} nodes"
            )
        # Check collisions (against the run and within the batch) before
        # any file is written, so a duplicate node cannot leave an orphan
        # segment or a half-updated index behind.
        batch_ids = set()
        for node in nodes:
            if indexes.has_node(node.node_id) or node.node_id in batch_ids:
                raise StoreError(
                    f"node {node_key(node.node_id)} ingested twice into run {run_id} -- "
                    f"each traced run is its own namespace; mint a new run instead"
                )
            batch_ids.add(node.node_id)
        segment_id = self.manifest.next_segment_id
        framed, raw_bytes = encode_segment(nodes, edges)
        with open(os.path.join(self.path, SEGMENTS_DIR, segment_file_name(segment_id)), "wb") as handle:
            handle.write(framed)
        self.manifest.next_segment_id += 1
        for node, topo in zip(nodes, topo_positions):
            indexes.add_node(segment_id, node, topo)
        for edge in edges:
            indexes.add_edge(segment_id, edge)
        self.manifest.segments.append(
            SegmentInfo(
                segment_id=segment_id,
                run=run_id,
                nodes=len(nodes),
                edges=len(edges),
                raw_bytes=raw_bytes,
                stored_bytes=len(framed),
            )
        )
        self.manifest.node_count += len(nodes)
        self.manifest.edge_count += len(edges)
        run_info.nodes += len(nodes)
        run_info.edges += len(edges)
        run_info.next_topo = max(
            run_info.next_topo, max(topo_positions, default=run_info.next_topo - 1) + 1
        )
        self._cache[segment_id] = SegmentPayload.build(nodes, edges)
        self._evict_cache_overflow()
        return segment_id

    def ingest(
        self,
        cpg: ConcurrentProvenanceGraph,
        segment_nodes: int = DEFAULT_SEGMENT_NODES,
        run_meta: Optional[dict] = None,
        workload: str = "",
    ) -> int:
        """Ingest a finalized CPG as a **new run**; returns segments written.

        Nodes are batched in topological order (so segment locality follows
        causality) and every edge is co-located with its target node.  The
        minted run id is ``store.manifest.runs[-1].run_id`` afterwards.
        """
        if segment_nodes <= 0:
            raise StoreError(f"segment_nodes must be positive, got {segment_nodes}")
        meta = dict(run_meta or {})
        run_id = self.new_run(
            workload=workload or str(meta.get("workload", "")),
            meta=meta,
            created_at=str(meta["created_at"]) if "created_at" in meta else None,
        )
        order = cpg.topological_order()
        topo_by_node = {node_id: rank for rank, node_id in enumerate(order)}
        edges_by_target: Dict[object, List[EdgeTuple]] = defaultdict(list)
        for source, target, attrs in cpg.edges():
            kind = attrs["kind"]
            extra = {key: value for key, value in attrs.items() if key != "kind"}
            edges_by_target[target].append((source, target, kind, extra))
        segments_written = 0
        for start in range(0, len(order), segment_nodes):
            batch = order[start : start + segment_nodes]
            nodes = [cpg.subcomputation(node_id) for node_id in batch]
            edges: List[EdgeTuple] = []
            for node_id in batch:
                edges.extend(edges_by_target.get(node_id, ()))
            self.append_segment(
                nodes, edges, run=run_id, topo_positions=[topo_by_node[n] for n in batch]
            )
            segments_written += 1
        self.manifest.run_info(run_id).status = RUN_COMPLETE
        self.flush()
        return segments_written

    def ingest_json_file(
        self,
        path: str,
        segment_nodes: int = DEFAULT_SEGMENT_NODES,
        run_meta: Optional[dict] = None,
        workload: str = "",
    ) -> int:
        """Ingest a CPG JSON file (v1 or v2) written with ``write_cpg``."""
        with open(path, "r", encoding="utf-8") as handle:
            cpg = cpg_from_json(handle.read())
        meta = {"source": os.path.basename(path)}
        meta.update(run_meta or {})
        return self.ingest(cpg, segment_nodes=segment_nodes, run_meta=meta, workload=workload)

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #

    def segment(self, segment_id: int) -> SegmentPayload:
        """Load one segment (LRU-cached up to ``max_cached_segments``)."""
        cached = self._cache.get(segment_id)
        if cached is not None:
            # Re-insert to refresh recency (dicts preserve insertion order).
            del self._cache[segment_id]
            self._cache[segment_id] = cached
            return cached
        info = self.manifest.segment_info(segment_id)
        path = os.path.join(self.path, SEGMENTS_DIR, info.file_name)
        if not os.path.exists(path):
            raise StoreError(f"segment file {info.file_name} is missing from {self.path}")
        with open(path, "rb") as handle:
            data = handle.read()
        payload = decode_segment(data)
        self.read_stats.segments_read += 1
        self.read_stats.bytes_read += len(data)
        self._cache[segment_id] = payload
        self._evict_cache_overflow()
        return payload

    def _evict_cache_overflow(self) -> None:
        while len(self._cache) > max(1, self.max_cached_segments):
            self._cache.pop(next(iter(self._cache)))

    def clear_cache(self) -> None:
        """Drop decoded segments (subsequent reads hit the disk again)."""
        self._cache.clear()

    def reset_read_stats(self) -> None:
        """Zero the read counters (used by benchmarks and tests)."""
        self.read_stats = StoreReadStats()

    def load_cpg(self, run: Optional[int] = None) -> ConcurrentProvenanceGraph:
        """Materialize one run's full graph (reads every segment of the run).

        This is the fallback path the query engine exists to avoid; the
        benchmarks use it as the baseline.
        """
        run_id = self.resolve_run(run)
        payloads = [self.segment(info.segment_id) for info in self.manifest.segments_of_run(run_id)]
        cpg = ConcurrentProvenanceGraph()
        for payload in payloads:
            for node in payload.nodes.values():
                cpg.add_subcomputation(node)
        for payload in payloads:
            for source, target, kind, attrs in payload.edges:
                apply_edge(cpg, source, target, kind, attrs)
        return cpg

    # ------------------------------------------------------------------ #
    # Maintenance: compaction and garbage collection
    # ------------------------------------------------------------------ #

    def compact(
        self, run: Optional[int] = None, segment_nodes: int = DEFAULT_SEGMENT_NODES
    ) -> MaintenanceStats:
        """Merge a run's small segments into dense ``segment_nodes`` batches.

        Streamed ingests leave two kinds of fragmentation behind: epochs
        shorter than a full segment, and the edge-only tail segments the
        sink appends for post-run data edges.  Compaction rewrites the
        run's segments in topological order (ranks are preserved), co-
        locates every edge with its target node again, and rebuilds the
        run's indexes.  With ``run=None`` every run is compacted.

        Crash-consistent: the new segments are written under fresh ids, the
        manifest is committed atomically, and only then are the old segment
        files deleted.  A crash before the commit leaves the old generation
        intact (the stray new files are swept by the next maintenance
        call); a crash after it leaves the new generation intact.

        Note: compacting a run materializes that run's nodes and edges in
        memory for re-batching (one run at a time, not the whole store).
        """
        if segment_nodes <= 0:
            raise StoreError(f"segment_nodes must be positive, got {segment_nodes}")
        targets = [self.resolve_run(run)] if run is not None else self.run_ids()
        stats = MaintenanceStats(segments_before=self.manifest.segment_count)
        old_ids: List[int] = []
        for run_id in targets:
            old_ids.extend(self._compact_run(run_id, segment_nodes))
        stats.segments_after = self.manifest.segment_count
        if old_ids:
            self.flush()
        stats.bytes_reclaimed = self._delete_segments(old_ids) + self._sweep_orphans()
        return stats

    def _compact_run(self, run_id: int, segment_nodes: int) -> List[int]:
        """Rewrite one run's segments; returns the superseded segment ids."""
        infos = self.manifest.segments_of_run(run_id)
        run_info = self.manifest.run_info(run_id)
        wanted = max(1, -(-run_info.nodes // segment_nodes)) if run_info.nodes else 1
        if len(infos) <= wanted and all(
            info.nodes >= min(segment_nodes, run_info.nodes) or info is infos[-1]
            for info in infos
        ):
            return []  # already compact (also covers the 0/1-segment runs)
        old_index = self.run_indexes[run_id]
        nodes: List[SubComputation] = []
        edges: List[EdgeTuple] = []
        for info in infos:
            payload = self.segment(info.segment_id)
            nodes.extend(payload.nodes.values())
            edges.extend(payload.edges)
        nodes.sort(key=lambda node: old_index.topo_of(node.node_id))
        batches = [nodes[start : start + segment_nodes] for start in range(0, len(nodes), segment_nodes)]
        if not batches:
            batches = [[]]
        batch_of_node = {
            node.node_id: position for position, batch in enumerate(batches) for node in batch
        }
        edges_by_batch: Dict[int, List[EdgeTuple]] = defaultdict(list)
        for edge in edges:
            # Co-locate with the target node; fall back to the source's
            # batch (then the first) for edges whose target is elsewhere.
            position = batch_of_node.get(edge[1], batch_of_node.get(edge[0], 0))
            edges_by_batch[position].append(edge)
        new_index = StoreIndexes()
        new_infos: List[SegmentInfo] = []
        for position, batch in enumerate(batches):
            segment_id = self.manifest.next_segment_id
            self.manifest.next_segment_id += 1
            batch_edges = edges_by_batch.get(position, [])
            framed, raw_bytes = encode_segment(batch, batch_edges)
            path = os.path.join(self.path, SEGMENTS_DIR, segment_file_name(segment_id))
            scratch = path + ".tmp"
            with open(scratch, "wb") as handle:
                handle.write(framed)
            os.replace(scratch, path)
            for node in batch:
                new_index.add_node(segment_id, node, old_index.topo_of(node.node_id))
            for edge in batch_edges:
                new_index.add_edge(segment_id, edge)
            new_infos.append(
                SegmentInfo(
                    segment_id=segment_id,
                    run=run_id,
                    nodes=len(batch),
                    edges=len(batch_edges),
                    raw_bytes=raw_bytes,
                    stored_bytes=len(framed),
                )
            )
        superseded = [info.segment_id for info in infos]
        self.manifest.segments = [
            info for info in self.manifest.segments if info.run != run_id
        ] + new_infos
        self.run_indexes[run_id] = new_index
        for segment_id in superseded:
            self._cache.pop(segment_id, None)
        return superseded

    def gc(
        self, keep_last: Optional[int] = None, runs: Optional[Sequence[int]] = None
    ) -> MaintenanceStats:
        """Drop superseded runs and reclaim their segments on disk.

        Exactly one selector must be given: ``keep_last=N`` keeps the N
        most recently minted runs and drops the rest; ``runs=[...]`` drops
        exactly the listed run ids.

        Crash-consistent like :meth:`compact`: the shrunk manifest is
        committed first, then the dropped runs' segment files and index
        directories are deleted; unreferenced files left by an earlier
        crash are swept as well.
        """
        if (keep_last is None) == (runs is None):
            raise StoreError("gc needs exactly one of keep_last= or runs=")
        if keep_last is not None:
            if keep_last < 0:
                raise StoreError(f"keep_last must be non-negative, got {keep_last}")
            ordered = self.run_ids()
            drop = ordered[: max(0, len(ordered) - keep_last)]
        else:
            drop = list(dict.fromkeys(runs or ()))  # dedupe, keep order
            for run_id in drop:
                self.manifest.run_info(run_id)  # validates existence
        stats = MaintenanceStats(segments_before=self.manifest.segment_count)
        if not drop:
            stats.segments_after = stats.segments_before
            return stats
        dropped_segments: List[int] = []
        for run_id in drop:
            dropped_segments.extend(
                info.segment_id for info in self.manifest.remove_run(run_id)
            )
            self.run_indexes.pop(run_id, None)
        dropped_set = set(dropped_segments)
        for segment_id in list(self._cache):
            if segment_id in dropped_set:
                del self._cache[segment_id]
        stats.runs_dropped = drop
        stats.segments_after = self.manifest.segment_count
        self.flush()  # the commit point: dropped runs are gone from here on
        stats.bytes_reclaimed = self._delete_segments(dropped_segments)
        for run_id in drop:
            self._delete_run_index_dir(run_id)
        stats.bytes_reclaimed += self._sweep_orphans()
        return stats

    def _delete_segments(self, segment_ids: Sequence[int]) -> int:
        """Remove segment files; returns the bytes freed (missing files ok)."""
        freed = 0
        for segment_id in segment_ids:
            path = os.path.join(self.path, SEGMENTS_DIR, segment_file_name(segment_id))
            try:
                freed += os.path.getsize(path)
                os.remove(path)
            except OSError:
                continue
        return freed

    def _delete_run_index_dir(self, run_id: int) -> None:
        run_dir = os.path.join(self.path, INDEX_DIR, run_index_dir_name(run_id))
        if not os.path.isdir(run_dir):
            return
        for name in os.listdir(run_dir):
            try:
                os.remove(os.path.join(run_dir, name))
            except OSError:
                continue
        try:
            os.rmdir(run_dir)
        except OSError:
            pass

    def _sweep_orphans(self) -> int:
        """Delete files the manifest does not reference; returns bytes freed.

        Only maintenance operations sweep (never :meth:`open`): a streaming
        sink with ``flush_every_epochs > 1`` legitimately leaves committed
        segment files briefly ahead of the manifest, and sweeping on every
        open would race it.  Running compact/gc concurrently with an active
        ingest is documented as unsupported.
        """
        freed = 0
        referenced = set(self.manifest.segment_ids())
        segments_dir = os.path.join(self.path, SEGMENTS_DIR)
        if os.path.isdir(segments_dir):
            for name in os.listdir(segments_dir):
                match = _SEGMENT_FILE_RE.match(name)
                if match is None or int(match.group(1)) in referenced:
                    continue
                path = os.path.join(segments_dir, name)
                try:
                    freed += os.path.getsize(path)
                    os.remove(path)
                except OSError:
                    continue
        index_dir = os.path.join(self.path, INDEX_DIR)
        known_runs = set(self.run_ids())
        if os.path.isdir(index_dir):
            for name in os.listdir(index_dir):
                match = _RUN_DIR_RE.match(name)
                if match is not None and int(match.group(1)) not in known_runs:
                    self._delete_run_index_dir(int(match.group(1)))
        return freed

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def run_summary(self, run_id: int) -> dict:
        """One run's manifest entry plus its on-disk footprint."""
        run = self.manifest.run_info(run_id)
        infos = self.manifest.segments_of_run(run_id)
        return {
            "id": run.run_id,
            "workload": run.workload,
            "status": run.status,
            "created_at": run.created_at,
            "nodes": run.nodes,
            "edges": run.edges,
            "segments": len(infos),
            "stored_bytes": sum(info.stored_bytes for info in infos),
            "meta": dict(run.meta),
        }

    def info(self) -> dict:
        """Summary of the store (the CLI's ``info`` output)."""
        manifest = self.manifest
        raw = sum(segment.raw_bytes for segment in manifest.segments)
        stored = sum(segment.stored_bytes for segment in manifest.segments)
        threads = sorted({tid for idx in self.run_indexes.values() for tid in idx.thread_indexes})
        pages = len(
            {
                page
                for idx in self.run_indexes.values()
                for page in set(idx.page_writers) | set(idx.page_readers)
            }
        )
        sync_objects = len({obj for idx in self.run_indexes.values() for obj in idx.sync_edges})
        return {
            "path": self.path,
            "format_version": manifest.version,
            "segments": manifest.segment_count,
            "nodes": manifest.node_count,
            "edges": manifest.edge_count,
            "threads": threads,
            "pages_indexed": pages,
            "sync_objects": sync_objects,
            "raw_bytes": raw,
            "stored_bytes": stored,
            "compression_ratio": round(raw / stored, 2) if stored else 1.0,
            "runs": [self.run_summary(run_id) for run_id in self.run_ids()],
        }

    def __len__(self) -> int:
        return self.manifest.node_count

"""The persistent provenance store.

:class:`ProvenanceStore` owns one store directory: an append-only sequence
of codec-encoded CPG segments plus per-run secondary indexes and the
manifest.  One store holds **many traced runs** -- each run is its own
node-id namespace (node ids ``(tid, index)`` are only unique within a
run).  Whole graphs are ingested with :meth:`ProvenanceStore.ingest`
(which mints a fresh run per call); running executions stream into the
store through :class:`repro.store.sink.StoreSink`; queries that only touch
the index-selected subgraph are served by
:class:`repro.store.query.StoreQueryEngine`.

Store format 6 keeps the write path incremental end to end: segment
payloads go through a pluggable codec (:mod:`repro.store.codecs`; the
zlib-compressed columnar ``binary-z`` codec is the default, the
uncompressed binary and JSON codecs remain readable and writable),
per-run indexes are loaded lazily and flushed as append-only
**delta files** (O(epoch), not O(index)), and the flush commit itself is
one framed record appended to ``segments.log`` (:mod:`repro.store.log`)
-- the manifest is a periodic *checkpoint* replayed over on open, so a
flush no longer pays an O(#segments) manifest rewrite.  A cross-run page
summary (``index/pages_runs.json``) lets ``*_across_runs`` queries skip
runs without opening their indexes.  The read path is cached: decoded segments
live in a byte-budgeted LRU (:mod:`repro.store.cache`) that can be shared
across handles, cold misses are single-flight (concurrent queries
missing the same segment collapse to one decode), merged index
generations can be pinned resident, and
:meth:`ProvenanceStore.segment_many` decodes cache misses concurrently --
on one *shared, lazily created* thread pool per store (shut down by
:meth:`ProvenanceStore.close`), escalating cold multi-segment sweeps to
a shared process pool when the miss count and the machine justify paying
the fork + pickle overhead (``decode_mode`` picks the strategy).

Maintenance is run-scoped: :meth:`ProvenanceStore.compact` rewrites a
run's segments **streaming, segment by segment** into fewer, denser ones
(folding in the edge-only tail segments a streamed ingest leaves behind,
and folding the run's index deltas into a fresh base file) and
:meth:`ProvenanceStore.gc` drops superseded runs and reclaims their disk
space.  Both are crash-consistent through the store's single commit
protocol: new files first, commit record last (temp file + atomic rename;
maintenance always commits as a full manifest checkpoint), old files
deleted only after the commit -- a crash at any point leaves the previous
consistent generation in place, and unreferenced files are swept by the
next maintenance operation.
"""

from __future__ import annotations

import datetime as _datetime
import json
import os
import re
import threading
import zlib
from collections import defaultdict
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.cpg import ConcurrentProvenanceGraph
from repro.core.serialization import (
    apply_edge,
    cpg_from_json,
    edge_from_dict,
    edge_to_dict,
    node_key,
    parse_node_key,
    FORMAT_VERSION_V2,
)
from repro.core.thunk import SubComputation
from repro.errors import CorruptSegmentError, StoreError

from repro.store.cache import IndexPinner, ReadScope, SegmentCache
from repro.store.codecs import DEFAULT_CODEC, codec_by_name
from repro.store.format import (
    DEFAULT_CHECKPOINT_INTERVAL,
    DEFAULT_SEGMENT_NODES,
    INDEX_DIR,
    MANIFEST_NAME,
    PAGES_RUNS_FILE,
    RUN_COMPLETE,
    SEGMENT_LOG_NAME,
    SEGMENTS_DIR,
    STORE_FORMAT_VERSION,
    STORE_FORMAT_VERSION_V2,
    STORE_FORMAT_VERSION_V4,
    STORE_FORMAT_VERSION_V5,
    RunInfo,
    SegmentInfo,
    StoreManifest,
    file_size_crc,
    index_base_file_name,
    index_delta_file_name,
    run_index_dir_name,
    segment_file_name,
)
from repro.store.indexes import LEGACY_INDEX_FILES, StoreIndexes
from repro.store.log import SegmentLog
from repro.store.segment import EdgeTuple, SegmentPayload, decode_segment, encode_segment

_SEGMENT_FILE_RE = re.compile(r"^seg-(\d{8})\.seg$")
_RUN_DIR_RE = re.compile(r"^run-(\d{8})$")
_INDEX_BASE_RE = re.compile(r"^base-(\d{8})\.bin$")
_INDEX_DELTA_RE = re.compile(r"^delta-(\d{8})\.bin$")

#: Scratch directory compaction spills per-batch edges into (inside the
#: store, so a crash leaves it visible to the next maintenance sweep).
_COMPACT_SPILL_DIR = "tmp-compact"

#: Cold misses in one ``segment_many`` call below which ``decode_mode
#: "auto"`` never escalates to the process pool: the fork + pickle
#: round-trip only pays for itself on multi-segment sweeps.
PROCESS_DECODE_THRESHOLD = 8


def _decode_segment_group(paths: Sequence[str]) -> List[Tuple[int, SegmentPayload]]:
    """Process-pool decode worker: read + decode one group of segment files.

    Module-level so it pickles into the worker.  Returns ``(file bytes,
    payload)`` per path; the parent handle does the cache admission and
    read accounting, so the child needs no store state beyond the paths.
    """
    results: List[Tuple[int, SegmentPayload]] = []
    for path in paths:
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except FileNotFoundError as exc:
            # A StoreError crosses the process boundary as a store fault,
            # not as pool breakage the parent would fall back from.
            raise StoreError(f"segment file {os.path.basename(path)} is missing") from exc
        results.append((len(data), decode_segment(data)))
    return results


def _utc_now_iso() -> str:
    """Wall-clock timestamp recorded for freshly minted runs."""
    return _datetime.datetime.now(_datetime.timezone.utc).isoformat(timespec="seconds")


@dataclass
class StoreReadStats:
    """Disk-read accounting (the out-of-core acceptance metric).

    Attributes:
        segments_read: Segment files decoded from disk (cache misses).
        bytes_read: Compressed bytes read from segment files.
    """

    segments_read: int = 0
    bytes_read: int = 0


@dataclass
class MaintenanceStats:
    """What one :meth:`ProvenanceStore.compact` or ``gc`` call reclaimed.

    Attributes:
        runs_dropped: Run ids removed from the store (gc only).
        segments_before: Referenced segments before the operation.
        segments_after: Referenced segments after the operation.
        bytes_reclaimed: Segment + index bytes deleted from disk.
        index_delta_files_reclaimed: Pending index delta files folded into
            a fresh base (compact only).
        peak_resident_nodes: Most node records the streaming compaction
            path held in memory at once (compact only) -- the acceptance
            metric that it no longer materializes whole runs.
    """

    runs_dropped: List[int] = field(default_factory=list)
    segments_before: int = 0
    segments_after: int = 0
    bytes_reclaimed: int = 0
    index_delta_files_reclaimed: int = 0
    peak_resident_nodes: int = 0

    def to_dict(self) -> dict:
        return {
            "runs_dropped": list(self.runs_dropped),
            "segments_before": self.segments_before,
            "segments_after": self.segments_after,
            "bytes_reclaimed": self.bytes_reclaimed,
            "index_delta_files_reclaimed": self.index_delta_files_reclaimed,
            "peak_resident_nodes": self.peak_resident_nodes,
        }


#: Decoded segments kept in memory at once (LRU); queries over stores
#: larger than this stay out-of-core in memory, not just in I/O counts.
DEFAULT_CACHE_SEGMENTS = 64


class _RunIndexMap(dict):
    """Run id -> :class:`StoreIndexes`, loading lazily on first access.

    Queries that never touch a run never pay for loading (or rebuilding)
    its indexes; the cross-run page summary relies on this to make
    ``*_across_runs`` skips worthwhile.  Loading is serialized per store
    so concurrent readers (the server) merge a run's generations once.
    """

    def __init__(self, store: "ProvenanceStore") -> None:
        super().__init__()
        self._store = store

    def __missing__(self, run_id: int) -> StoreIndexes:
        with self._store._index_lock:
            if run_id in self:  # a concurrent reader won the race
                return self[run_id]
            indexes = self._store._load_run_indexes(run_id)
            self[run_id] = indexes
        return indexes


class ProvenanceStore:
    """One store directory: segments + per-run indexes + manifest.

    Node ids are ``(tid, index)`` and therefore collide *across* runs of
    the same program; the run id minted at ingest is the namespace that
    keeps them apart.  Every query is answered within a run (resolved
    implicitly when the store holds exactly one).

    Use :meth:`create`, :meth:`open`, or :meth:`open_or_create` instead of
    the constructor.

    Attributes:
        default_codec: Codec name new segments are encoded with
            (``"binary-z"`` unless changed; see :mod:`repro.store.codecs`).
        decode_mode: How :meth:`segment_many` decodes a batch of cold
            misses: ``"auto"`` (the default) uses the store's shared
            thread pool and escalates to the shared process pool when the
            miss count reaches :data:`PROCESS_DECODE_THRESHOLD` on a
            multi-core machine; ``"thread"`` / ``"process"`` force one
            strategy.  The process path sidesteps the GIL entirely (the
            columnar decode is pure Python) at the price of one pickle
            round-trip per decode group; a broken pool (fork or pickling
            failure) permanently falls back to threads for the handle.
        index_full_rewrite: Benchmark/back-compat knob: when true, every
            flush folds the whole index instead of appending a delta --
            the v3 write-path cost profile.  Stores written this way stay
            correct (a reopen rebuilds their indexes from segments).
        manifest_full_rewrite: Benchmark knob: when true, every flush
            writes a full manifest checkpoint instead of a log record --
            the v4 write-path cost profile (O(#segments) per flush).
        checkpoint_interval: Log-append flushes between automatic
            manifest checkpoints (bounds open-time replay work).
        cache: The decoded-segment :class:`SegmentCache`.  Owned by this
            handle unless one was passed in (the warm server shares one
            across snapshot reopens).
        manifest_generation: In-memory generation of this handle's view;
            bumped by ``compact``/``gc`` so the cache cannot serve
            entries from before the maintenance rewrite.
    """

    def __init__(
        self,
        path: str,
        manifest: StoreManifest,
        segment_cache: Optional[SegmentCache] = None,
        index_pinner: Optional[IndexPinner] = None,
    ) -> None:
        self.path = path
        self.manifest = manifest
        self.run_indexes: Dict[int, StoreIndexes] = _RunIndexMap(self)
        self.read_stats = StoreReadStats()
        self.default_codec = DEFAULT_CODEC
        self.index_full_rewrite = False
        self.cache = (
            segment_cache
            if segment_cache is not None
            else SegmentCache(max_entries=DEFAULT_CACHE_SEGMENTS)
        )
        self.pinner = index_pinner
        #: Namespace of this handle's cache and pinner keys.  Defaults to
        #: the store path; the server moves a handle to a fresh namespace
        #: when it detects the directory was deleted and recreated, so
        #: entries admitted by in-flight queries against the dead store
        #: can never be served to the new one.
        self.cache_namespace = path
        self.manifest_generation = 0
        self._index_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._summary_lock = threading.Lock()
        #: Format version of the manifest currently on disk; < 6 until the
        #: first flush (or checkpoint) upgrades the layout in place.
        self._disk_version = manifest.version
        #: Log-append flushes between manifest checkpoints (v5); lower it
        #: to bound replay work, raise it to amortize checkpoints further.
        self.checkpoint_interval = DEFAULT_CHECKPOINT_INTERVAL
        #: Benchmark knob: when true every flush writes a full manifest
        #: checkpoint -- the v4 cost profile (O(#segments) per flush).
        self.manifest_full_rewrite = False
        self._log = SegmentLog(os.path.join(path, SEGMENT_LOG_NAME))
        #: Next log record sequence number (monotonic, never reused).
        self._log_next_seq = manifest.log_seq + 1
        #: Segments already durable (checkpointed or logged); the next log
        #: record carries ``manifest.segments[self._logged_segment_count:]``.
        self._logged_segment_count = len(manifest.segments)
        self._uncheckpointed_records = 0
        #: Set when only a checkpoint can represent the in-memory state
        #: (maintenance rewrote tables, or replay stopped at a bad record).
        self._needs_checkpoint = False
        #: Whether MANIFEST.json exists on disk (False for a store being
        #: created; forces the first flush to checkpoint).
        self._manifest_on_disk = False
        #: Decode strategy of :meth:`segment_many` ("auto"/"thread"/"process").
        self.decode_mode = "auto"
        #: Shared decode pools, created lazily on the first parallel read
        #: and shut down by :meth:`close` (after which reads degrade to
        #: the sequential path instead of erroring).
        self._pool_lock = threading.Lock()
        self._executor: Optional[ThreadPoolExecutor] = None
        self._process_pool: Optional[ProcessPoolExecutor] = None
        self._process_pool_broken = False
        self._closed = False
        self._pages_runs: Optional[Dict[int, Set[int]]] = None
        self._pages_runs_covered: Set[int] = set()
        #: Runs the on-disk summary file covers (always complete runs).
        self._pages_runs_disk: Set[int] = set()
        #: A disk-covered run's pages changed (a rare post-completion
        #: append); forces a summary rewrite at the next flush.
        self._pages_runs_force = False

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    @classmethod
    def create(cls, path: str, meta: Optional[dict] = None) -> "ProvenanceStore":
        """Initialise an empty store at ``path`` (must not already hold one)."""
        manifest_path = os.path.join(path, MANIFEST_NAME)
        if os.path.exists(manifest_path):
            raise StoreError(f"a provenance store already exists at {path}")
        os.makedirs(os.path.join(path, SEGMENTS_DIR), exist_ok=True)
        manifest = StoreManifest(meta=dict(meta or {}))
        store = cls(path, manifest)
        store.flush()
        return store

    @classmethod
    def open(
        cls,
        path: str,
        segment_cache: Optional[SegmentCache] = None,
        index_pinner: Optional[IndexPinner] = None,
    ) -> "ProvenanceStore":
        """Open an existing store directory (format version 2 through 6).

        Opening reads the manifest checkpoint, then (format 5+) replays the
        committed tail of ``segments.log`` on top of it -- each record
        appends the segments one flush sealed; a torn or invalid tail
        record stops the replay there, recovering exactly the flushes that
        committed.  The small cross-run page summary is read on demand and
        each run's secondary indexes are loaded lazily on first access,
        merging the run's index base with its pending delta files.  A run
        whose index generation files are missing, torn, or inconsistent
        with the manifest is rebuilt from its (committed, ground-truth)
        segments at that point.

        ``segment_cache`` / ``index_pinner`` share a warm read path
        between handles (see :mod:`repro.store.cache`); sharing is for
        read-only serving.
        """
        manifest = cls._read_manifest(path)
        attempts = 3
        for attempt in range(attempts):
            store = cls(path, manifest, segment_cache=segment_cache, index_pinner=index_pinner)
            store._manifest_on_disk = True
            # Versions 5 and 6 share the segment-log layout, so both
            # replay; comparing against the *current* version here would
            # silently skip a v5 store's logged flushes.
            if manifest.version < STORE_FORMAT_VERSION_V5:
                return store
            if store._replay_segment_log() or attempt == attempts - 1:
                # A persistent gap after retries still leaves a consistent
                # view: the checkpoint plus the contiguous log prefix.
                return store
            # The log's sequence numbers jumped past this manifest: a
            # concurrent writer checkpointed (folding those records into
            # a newer manifest) and re-appended after the reset, between
            # our manifest read and the log scan.  Re-read and replay.
            manifest = cls._read_manifest(path)
        raise AssertionError("unreachable")  # the loop always returns

    @staticmethod
    def _read_manifest(path: str) -> StoreManifest:
        manifest_path = os.path.join(path, MANIFEST_NAME)
        if not os.path.exists(manifest_path):
            raise StoreError(f"no provenance store at {path} (missing {MANIFEST_NAME})")
        with open(manifest_path, "r", encoding="utf-8") as handle:
            try:
                return StoreManifest.from_dict(json.load(handle))
            except json.JSONDecodeError as exc:
                raise StoreError(f"corrupt manifest at {path}: {exc}") from exc

    def _replay_segment_log(self) -> bool:
        """Apply the committed tail of ``segments.log`` to the manifest.

        Records whose ``seq`` the manifest checkpoint already covers are
        skipped (a crash between the checkpoint rename and the log reset
        leaves them behind); the rest must be contiguous from the
        checkpoint's ``log_seq`` and are applied in order.  Replay stops
        at the first record that fails validation -- framing tears are
        already cut by :meth:`SegmentLog.scan`, and a CRC-valid record
        with inconsistent content forces the next flush to checkpoint, so
        the bad record can never shadow live appends.

        Returns False when a record's ``seq`` jumped *past* the next
        expected one.  Applying across the gap would stack post-checkpoint
        records on a pre-checkpoint manifest, silently dropping every
        segment the checkpoint folded in -- so the gapped record and
        everything after it are refused, leaving the consistent prefix,
        and the caller re-reads the (newer) manifest and replays again.
        """
        if not self._log.exists():
            return True
        applied = 0
        contiguous = True
        for record in self._log.replay():
            try:
                seq = int(record.get("seq", 0))
            except (TypeError, ValueError):
                self._needs_checkpoint = True
                break
            if seq < self._log_next_seq:
                continue  # folded into the checkpoint already
            if seq > self._log_next_seq:
                contiguous = False  # a newer checkpoint reset the log
                break
            if not self._apply_log_record(record):
                self._needs_checkpoint = True
                break
            self._log_next_seq = seq + 1
            applied += 1
        self._logged_segment_count = len(self.manifest.segments)
        self._uncheckpointed_records = applied
        return contiguous

    def _apply_log_record(self, record: dict) -> bool:
        """Fold one log record into the manifest; False rejects it whole.

        Validates everything before mutating, so a rejected record leaves
        the manifest exactly as the previous record committed it.
        """
        try:
            segments = [SegmentInfo.from_dict(entry) for entry in record.get("segments", ())]
            runs = [RunInfo.from_dict(entry) for entry in record.get("runs", ())]
            next_segment_id = int(record["next_segment_id"])
            next_run_id = int(record["next_run_id"])
            node_count = int(record["node_count"])
            edge_count = int(record["edge_count"])
            pages_runs_checksum = record.get("pages_runs_checksum")
            if pages_runs_checksum is not None:
                pages_runs_checksum = [
                    int(pages_runs_checksum[0]), int(pages_runs_checksum[1])
                ]
            quarantined = (
                {
                    int(segment_id): str(reason)
                    for segment_id, reason in dict(record["quarantined"]).items()
                }
                if "quarantined" in record
                else None
            )
        except (StoreError, KeyError, TypeError, ValueError, AttributeError, IndexError):
            return False
        last = self.manifest.segments[-1].segment_id if self.manifest.segments else 0
        for info in segments:
            if info.segment_id <= last:  # ids are minted strictly increasing
                return False
            last = info.segment_id
        run_ids = {run.run_id for run in runs}
        if len(run_ids) != len(runs):
            return False
        if any(info.run not in run_ids for info in self.manifest.segments):
            return False
        if any(info.run not in run_ids for info in segments):
            return False
        self.manifest.segments.extend(segments)
        self.manifest.runs = runs
        self.manifest.next_segment_id = max(next_segment_id, last + 1)
        self.manifest.next_run_id = max(next_run_id, self.manifest.next_run_id)
        self.manifest.node_count = node_count
        self.manifest.edge_count = edge_count
        if pages_runs_checksum is not None:
            self.manifest.pages_runs_checksum = pages_runs_checksum
        if quarantined is not None:
            # Pre-integrity records carry no key at all (keep the
            # checkpoint's marks); new records carry the full table.
            known = {info.segment_id for info in self.manifest.segments}
            self.manifest.quarantined = {
                segment_id: reason
                for segment_id, reason in quarantined.items()
                if segment_id in known
            }
        return True

    def _run_index_dir(self, run_id: int) -> str:
        if self._disk_version == STORE_FORMAT_VERSION_V2:
            # PR-1 layout: one implicit run, flat index/ directory.
            return os.path.join(self.path, INDEX_DIR)
        return os.path.join(self.path, INDEX_DIR, run_index_dir_name(run_id))

    def _load_run_indexes(self, run_id: int) -> StoreIndexes:
        """Load (or rebuild) one run's indexes; the lazy-map miss path.

        With an :class:`IndexPinner` attached, a generation that was
        merged before -- by this handle or any other handle sharing the
        pinner -- is returned resident instead of re-merging its base +
        delta files; only v4 generation state is pinned (legacy JSON
        loads and rebuilds are not reproducible from named generations).
        """
        run = self.manifest.run_info(run_id)
        run_dir = self._run_index_dir(run_id)
        pinnable = self._disk_version >= STORE_FORMAT_VERSION_V4
        valid = [info.segment_id for info in self.manifest.segments_of_run(run_id)]
        if self.pinner is not None and pinnable:
            pinned = self.pinner.get(
                self.cache_namespace, run_id, run.index_base, run.index_deltas, run.nodes
            )
            if pinned is not None and pinned.is_consistent_with(valid, run.nodes):
                return pinned
        try:
            if pinnable:
                indexes = StoreIndexes.load_v4(run_dir, run.index_base, run.index_deltas)
            else:
                indexes = StoreIndexes.load(run_dir)
                # Loaded from the legacy JSON layout: not reproducible from
                # v4 generation files, so the next flush must write a base.
                indexes.needs_base = True
        except StoreError:
            return self._rebuild_indexes_from_segments(run_id)
        if not indexes.is_consistent_with(valid, run.nodes):
            return self._rebuild_indexes_from_segments(run_id)
        if self.pinner is not None and pinnable:
            self.pinner.put(
                self.cache_namespace, run_id, run.index_base, run.index_deltas, run.nodes, indexes
            )
        return indexes

    def _rebuild_indexes_from_segments(self, run_id: int) -> StoreIndexes:
        """Reconstruct one run's indexes from its committed segments.

        Recovery path for torn or missing index generations.  Exact by
        construction: a run's segments are appended -- and compaction
        rewrites them -- in topological order, and every ingest path
        assigns ranks sequentially from 0, so a node's rank is precisely
        its position in the run's segment-order traversal.
        """
        indexes = StoreIndexes()
        rank = 0
        for info in self.manifest.segments_of_run(run_id):
            payload = self.segment(info.segment_id)
            for node in payload.nodes.values():  # insertion order = encode order
                indexes.add_node(info.segment_id, node, rank)
                rank += 1
            for edge in payload.edges:
                indexes.add_edge(info.segment_id, edge)
        # The rebuilt state is not reproducible from any on-disk
        # generation files; fold it into a base at the next flush.
        indexes.clear_pending()
        indexes.needs_base = True
        return indexes

    @classmethod
    def open_or_create(cls, path: str, meta: Optional[dict] = None) -> "ProvenanceStore":
        """Open ``path`` when it holds a store, initialise one otherwise."""
        if os.path.exists(os.path.join(path, MANIFEST_NAME)):
            return cls.open(path)
        return cls.create(path, meta=meta)

    def flush(self, checkpoint: Optional[bool] = None) -> None:
        """Commit the in-memory state: index generations first, commit last.

        Each loaded run persists **only what changed**: the ops journalled
        since its last flush become one append-only ``delta-<gen>.bin``
        file (O(epoch)).  The commit point is then **one framed record
        appended to** ``segments.log`` -- the segments sealed since the
        last durable point plus the (small) run table -- so a flush costs
        O(epoch) regardless of how many segments the store holds.  Every
        ``checkpoint_interval`` appends (and whenever the in-memory state
        cannot be expressed as an append: store creation, a format
        upgrade, after compact/gc) the manifest is rewritten as a fresh
        checkpoint and the log is reset instead; pass ``checkpoint=True``
        / ``False`` to force either path.  Every file goes through a
        temp-file + atomic rename, so a crash mid-flush leaves the
        previous consistent generation in place.

        Flushing always writes the version-6 layout; a store opened as
        version 2 through 5 is upgraded in place by its first flush
        (legacy JSON indexes are folded into v4 base files; the manifest
        checkpoint and segment log appear alongside the v4 files; for a
        v5 store the upgrade is just the version stamp -- the layouts are
        identical).
        """
        if self._disk_version < STORE_FORMAT_VERSION_V4:
            # In-place upgrade: fold every run's legacy indexes into v4
            # bases now, so the upgraded manifest never references a run
            # without generation files.
            for run_id in self.run_ids():
                self.run_indexes[run_id]  # force the lazy load
        for run_id, indexes in self.run_indexes.items():
            run_info = self.manifest.run_info(run_id)
            run_dir = os.path.join(self.path, INDEX_DIR, run_index_dir_name(run_id))
            if self.index_full_rewrite:
                # v3 cost-profile emulation (see the class docstring).
                indexes.save(run_dir)
                indexes.clear_pending()
            elif indexes.needs_base:
                generation = run_info.next_index_gen
                run_info.next_index_gen += 1
                indexes.save_base(run_dir, generation)
                run_info.index_base = generation
                run_info.index_deltas = []
                base_name = index_base_file_name(generation)
                run_info.record_index_checksum(
                    base_name, *file_size_crc(os.path.join(run_dir, base_name))
                )
                run_info.prune_index_checksums()
                indexes.needs_base = False
                indexes.clear_pending()
            elif indexes.has_pending:
                generation = run_info.next_index_gen
                run_info.next_index_gen += 1
                indexes.save_delta(run_dir, generation)
                run_info.index_deltas.append(generation)
                delta_name = index_delta_file_name(generation)
                run_info.record_index_checksum(
                    delta_name, *file_size_crc(os.path.join(run_dir, delta_name))
                )
                indexes.clear_pending()
        self._cover_loaded_runs_in_pages_summary()
        self._write_pages_runs_if_dirty()
        if checkpoint is None:
            checkpoint = (
                self._needs_checkpoint
                or self.manifest_full_rewrite
                or not self._manifest_on_disk
                or self._disk_version != STORE_FORMAT_VERSION
                or self._uncheckpointed_records >= self.checkpoint_interval
            )
        if checkpoint:
            self._write_checkpoint()
        else:
            self._append_log_record()

    def _append_log_record(self) -> None:
        """The O(epoch) commit: one record to ``segments.log``.

        Carries only the segment entries sealed since the last durable
        point -- plus the full run table and store counters, which are
        small and make every record self-validating on replay.
        """
        record = {
            "seq": self._log_next_seq,
            "segments": [
                info.to_dict() for info in self.manifest.segments[self._logged_segment_count:]
            ],
            "runs": [run.to_dict() for run in self.manifest.runs],
            "next_segment_id": self.manifest.next_segment_id,
            "next_run_id": self.manifest.next_run_id,
            "node_count": self.manifest.node_count,
            "edge_count": self.manifest.edge_count,
            # Integrity state rides every commit record, so a replayed
            # store agrees with the files on disk without a checkpoint.
            "pages_runs_checksum": self.manifest.pages_runs_checksum,
            "quarantined": {
                str(segment_id): reason
                for segment_id, reason in self.manifest.quarantined.items()
            },
        }
        self._log.append(record)
        self._log_next_seq += 1
        self._logged_segment_count = len(self.manifest.segments)
        self._uncheckpointed_records += 1

    def _write_checkpoint(self) -> None:
        """Fold everything into a fresh manifest, then reset the log.

        The manifest rename is the commit point; a crash between it and
        the log reset is harmless (replay skips records whose ``seq`` the
        checkpoint's ``log_seq`` covers).
        """
        self.manifest.log_seq = self._log_next_seq - 1
        manifest_path = os.path.join(self.path, MANIFEST_NAME)
        scratch = manifest_path + ".tmp"
        with open(scratch, "w", encoding="utf-8") as handle:
            json.dump(self.manifest.to_dict(), handle, sort_keys=True, indent=2)
            handle.flush()
            # The rename below resets the log: without this fsync a power
            # loss could durably empty the log while the checkpoint that
            # folded it in evaporates from the page cache.
            os.fsync(handle.fileno())
        os.replace(scratch, manifest_path)
        self.manifest.version = STORE_FORMAT_VERSION
        self._disk_version = STORE_FORMAT_VERSION
        self._manifest_on_disk = True
        self._logged_segment_count = len(self.manifest.segments)
        self._uncheckpointed_records = 0
        self._needs_checkpoint = False
        self._log.reset()

    # ------------------------------------------------------------------ #
    # Cross-run page summary (index/pages_runs.json)
    # ------------------------------------------------------------------ #

    def _load_pages_runs_once(self) -> Dict[int, Set[int]]:
        """Parse the on-disk summary (cheap: no per-run index loading).

        Entries for runs the manifest does not know (a crash left the
        summary a generation ahead) are dropped; runs the summary does not
        cover are merged lazily from their indexes when needed.  For a
        covered run the summary is always a superset of the committed
        state (pages only ever grow within a run), so skipping based on it
        never loses results.
        """
        if self._pages_runs is not None:
            return self._pages_runs
        pages: Dict[int, Set[int]] = {}
        covered: Set[int] = set()
        known = set(self.run_ids())
        path = os.path.join(self.path, INDEX_DIR, PAGES_RUNS_FILE)
        if os.path.exists(path):
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    data = json.load(handle)
                covered = {int(run_id) for run_id in data.get("runs", ())} & known
                for page_text, run_list in data.get("pages", {}).items():
                    runs = {int(run_id) for run_id in run_list} & covered
                    if runs:
                        pages[int(page_text)] = runs
            except (ValueError, OSError, AttributeError, TypeError):
                # The summary is a non-authoritative cache: any malformed
                # shape (torn write, hand edit) degrades to "covers
                # nothing" and runs are merged from their own indexes.
                pages, covered = {}, set()
        self._pages_runs = pages
        self._pages_runs_covered = covered
        self._pages_runs_disk = set(covered)
        self._pages_runs_force = False
        return pages

    def _cover_run_in_pages_summary(self, run_id: int) -> None:
        """Merge one run's touched pages into the summary (from its indexes)."""
        pages = self._load_pages_runs_once()
        if run_id in self._pages_runs_covered:
            return
        for page in self.run_indexes[run_id].pages_touched():
            pages.setdefault(page, set()).add(run_id)
        self._pages_runs_covered.add(run_id)

    def _cover_loaded_runs_in_pages_summary(self) -> None:
        # Only runs whose indexes are already in memory: flushing must not
        # force-load every run of a large store.
        self._load_pages_runs_once()
        for run_id in list(self.run_indexes.keys()):
            self._cover_run_in_pages_summary(run_id)

    def _write_pages_runs_if_dirty(self) -> None:
        """Rewrite the on-disk summary only when its content would change.

        The file covers **complete** runs only: a streaming run's pages
        keep growing, and rewriting the (whole-store-sized) summary per
        epoch flush would defeat the O(epoch) flush path.  A run enters
        the file with the first flush after it completes; until then --
        and after any crash -- uncovered runs are merged lazily from
        their own indexes, so skipping is always sound.
        """
        if self._pages_runs is None:
            return
        complete = {
            run.run_id for run in self.manifest.runs if run.status == RUN_COMPLETE
        }
        want = self._pages_runs_covered & complete
        if want == self._pages_runs_disk and not self._pages_runs_force:
            return
        document = {
            "kind": "inspector-pages-runs",
            "runs": sorted(want),
            "pages": {
                str(page): sorted(runs & want)
                for page, runs in sorted(self._pages_runs.items())
                if runs & want
            },
        }
        index_dir = os.path.join(self.path, INDEX_DIR)
        os.makedirs(index_dir, exist_ok=True)
        path = os.path.join(index_dir, PAGES_RUNS_FILE)
        scratch = path + ".tmp"
        with open(scratch, "w", encoding="utf-8") as handle:
            json.dump(document, handle, sort_keys=True)
        os.replace(scratch, path)
        self.manifest.pages_runs_checksum = file_size_crc(path)
        self._pages_runs_disk = want
        self._pages_runs_force = False

    def runs_touching_pages(self, pages: Iterable[int]) -> Set[int]:
        """Run ids whose stored graph read or wrote any of ``pages``.

        Served from the cross-run summary: runs the summary covers are
        answered without touching their per-run indexes, which is what
        lets ``*_across_runs`` queries skip irrelevant runs entirely.
        """
        with self._summary_lock:
            # Serialized: concurrent readers (the server) must not merge
            # uncovered runs into the summary dicts while another query
            # iterates them.
            summary = self._load_pages_runs_once()
            for run_id in self.run_ids():
                if run_id not in self._pages_runs_covered:
                    self._cover_run_in_pages_summary(run_id)
            touched: Set[int] = set()
            for page in pages:
                touched |= set(summary.get(int(page), ()))
        return touched & set(self.run_ids())

    # ------------------------------------------------------------------ #
    # Runs
    # ------------------------------------------------------------------ #

    def run_ids(self) -> List[int]:
        """Every run id in the store, in mint order."""
        return self.manifest.run_ids()

    def new_run(
        self,
        workload: str = "",
        meta: Optional[dict] = None,
        created_at: Optional[str] = None,
    ) -> int:
        """Mint a fresh run (the namespace of one traced execution).

        The run id is recorded in the manifest together with the workload
        name and wall-clock/config metadata; it becomes durable at the next
        :meth:`flush`.  Callers can pass their own ``created_at`` timestamp
        (the session does); it defaults to the current UTC time.
        """
        run = self.manifest.mint_run(
            workload=workload,
            created_at=created_at if created_at is not None else _utc_now_iso(),
            meta=meta,
        )
        self.run_indexes[run.run_id] = StoreIndexes()
        return run.run_id

    def resolve_run(self, run: Optional[int] = None) -> int:
        """Resolve ``run`` to a run id, defaulting to the store's only run.

        Raises:
            StoreError: If ``run`` is unknown, the store is empty, or the
                store holds several runs and ``run`` was not given.
        """
        if run is not None:
            self.manifest.run_info(run)  # validates existence
            return run
        runs = self.run_ids()
        if len(runs) == 1:
            return runs[0]
        if not runs:
            raise StoreError(f"store at {self.path} holds no runs yet")
        raise StoreError(
            f"store at {self.path} holds {len(runs)} runs ({runs}); "
            f"pass run=<id> to pick one"
        )

    def indexes_for(self, run: Optional[int] = None) -> StoreIndexes:
        """The secondary indexes of ``run`` (default: the store's only run)."""
        return self.run_indexes[self.resolve_run(run)]

    @property
    def indexes(self) -> StoreIndexes:
        """Single-run convenience accessor (empty for an empty store).

        Raises:
            StoreError: When the store holds several runs -- use
                :meth:`indexes_for` with an explicit run id instead.
        """
        if not self.run_ids():
            return StoreIndexes()
        return self.indexes_for(None)

    # ------------------------------------------------------------------ #
    # Appending
    # ------------------------------------------------------------------ #

    def append_segment(
        self,
        nodes: Sequence[SubComputation],
        edges: Sequence[EdgeTuple],
        run: Optional[int] = None,
        topo_positions: Optional[Sequence[int]] = None,
        codec: Optional[str] = None,
    ) -> int:
        """Seal ``nodes`` + ``edges`` into a new segment of ``run``.

        The payload is encoded with ``codec`` (default: the store's
        ``default_codec``).  Topological ranks default to arrival order
        (the run's ``next_topo`` onwards); the whole-graph ingest path
        passes explicit ranks from
        :meth:`ConcurrentProvenanceGraph.topological_order` instead.

        The manifest and indexes are only updated in memory; call
        :meth:`flush` once the batch of appends is complete.
        """
        run_id = self.resolve_run(run)
        run_info = self.manifest.run_info(run_id)
        indexes = self.run_indexes[run_id]
        codec_name = codec if codec is not None else self.default_codec
        codec_by_name(codec_name)  # validates before any file is written
        if topo_positions is None:
            topo_positions = range(run_info.next_topo, run_info.next_topo + len(nodes))
        elif len(topo_positions) != len(nodes):
            raise StoreError(
                f"got {len(topo_positions)} topological ranks for {len(nodes)} nodes"
            )
        # Check collisions (against the run and within the batch) before
        # any file is written, so a duplicate node cannot leave an orphan
        # segment or a half-updated index behind.
        batch_ids = set()
        for node in nodes:
            if indexes.has_node(node.node_id) or node.node_id in batch_ids:
                raise StoreError(
                    f"node {node_key(node.node_id)} ingested twice into run {run_id} -- "
                    f"each traced run is its own namespace; mint a new run instead"
                )
            batch_ids.add(node.node_id)
        segment_id = self.manifest.next_segment_id
        framed, raw_bytes = encode_segment(nodes, edges, codec=codec_name)
        with open(os.path.join(self.path, SEGMENTS_DIR, segment_file_name(segment_id)), "wb") as handle:
            handle.write(framed)
        self.manifest.next_segment_id += 1
        for node, topo in zip(nodes, topo_positions):
            indexes.add_node(segment_id, node, topo)
        for edge in edges:
            indexes.add_edge(segment_id, edge)
        self.manifest.segments.append(
            SegmentInfo(
                segment_id=segment_id,
                run=run_id,
                nodes=len(nodes),
                edges=len(edges),
                raw_bytes=raw_bytes,
                stored_bytes=len(framed),
                codec=codec_name,
                crc=zlib.crc32(framed) & 0xFFFFFFFF,
            )
        )
        self.manifest.node_count += len(nodes)
        self.manifest.edge_count += len(edges)
        run_info.nodes += len(nodes)
        run_info.edges += len(edges)
        run_info.next_topo = max(
            run_info.next_topo, max(topo_positions, default=run_info.next_topo - 1) + 1
        )
        # Keep the in-memory cross-run page summary current (O(batch)).
        # Appends to a *complete* run must force a summary rewrite: the
        # on-disk file already covers the run and would under-report it.
        self._cover_run_in_pages_summary(run_id)
        pages_runs = self._load_pages_runs_once()
        for node in nodes:
            for page in node.read_set | node.write_set:
                runs = pages_runs.setdefault(page, set())
                if run_id not in runs:
                    runs.add(run_id)
                    if run_id in self._pages_runs_disk:
                        self._pages_runs_force = True
        self.cache.put(
            self.cache_namespace, self.manifest_generation, segment_id, SegmentPayload.build(nodes, edges)
        )
        return segment_id

    def ingest(
        self,
        cpg: ConcurrentProvenanceGraph,
        segment_nodes: int = DEFAULT_SEGMENT_NODES,
        run_meta: Optional[dict] = None,
        workload: str = "",
        codec: Optional[str] = None,
    ) -> int:
        """Ingest a finalized CPG as a **new run**; returns segments written.

        Nodes are batched in topological order (so segment locality follows
        causality) and every edge is co-located with its target node.  The
        minted run id is ``store.manifest.runs[-1].run_id`` afterwards.
        """
        if segment_nodes <= 0:
            raise StoreError(f"segment_nodes must be positive, got {segment_nodes}")
        meta = dict(run_meta or {})
        run_id = self.new_run(
            workload=workload or str(meta.get("workload", "")),
            meta=meta,
            created_at=str(meta["created_at"]) if "created_at" in meta else None,
        )
        order = cpg.topological_order()
        topo_by_node = {node_id: rank for rank, node_id in enumerate(order)}
        edges_by_target: Dict[object, List[EdgeTuple]] = defaultdict(list)
        for source, target, attrs in cpg.edges():
            kind = attrs["kind"]
            extra = {key: value for key, value in attrs.items() if key != "kind"}
            edges_by_target[target].append((source, target, kind, extra))
        segments_written = 0
        for start in range(0, len(order), segment_nodes):
            batch = order[start : start + segment_nodes]
            nodes = [cpg.subcomputation(node_id) for node_id in batch]
            edges: List[EdgeTuple] = []
            for node_id in batch:
                edges.extend(edges_by_target.get(node_id, ()))
            self.append_segment(
                nodes,
                edges,
                run=run_id,
                topo_positions=[topo_by_node[n] for n in batch],
                codec=codec,
            )
            segments_written += 1
        self.manifest.run_info(run_id).status = RUN_COMPLETE
        # Run completion is a natural checkpoint: the manifest on disk
        # names every segment of the finished run without a replay.
        self.flush(checkpoint=True)
        return segments_written

    def ingest_json_file(
        self,
        path: str,
        segment_nodes: int = DEFAULT_SEGMENT_NODES,
        run_meta: Optional[dict] = None,
        workload: str = "",
        codec: Optional[str] = None,
    ) -> int:
        """Ingest a CPG JSON file (v1 or v2) written with ``write_cpg``."""
        with open(path, "r", encoding="utf-8") as handle:
            cpg = cpg_from_json(handle.read())
        meta = {"source": os.path.basename(path)}
        meta.update(run_meta or {})
        return self.ingest(
            cpg, segment_nodes=segment_nodes, run_meta=meta, workload=workload, codec=codec
        )

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #

    @property
    def max_cached_segments(self) -> Optional[int]:
        """Entry-count bound of the segment cache (back-compat knob).

        The byte budget (``store.cache.max_bytes``) is the primary limit;
        this mirrors the cache's additional entry bound for callers of the
        pre-cache API.
        """
        return self.cache.max_entries

    @max_cached_segments.setter
    def max_cached_segments(self, value: Optional[int]) -> None:
        self.cache.max_entries = value

    @property
    def _cache(self) -> Dict[int, SegmentPayload]:
        """This handle's cached payloads by segment id (back-compat view)."""
        return self.cache.cached_segments(self.cache_namespace, self.manifest_generation)

    # ------------------------------------------------------------------ #
    # Quarantine
    # ------------------------------------------------------------------ #

    def is_quarantined(self, segment_id: int) -> bool:
        """Whether queries currently skip ``segment_id`` as damaged."""
        return self.manifest.is_quarantined(segment_id)

    def quarantined_segments(self) -> Dict[int, str]:
        """Quarantined segment ids -> reason (a snapshot copy)."""
        return dict(self.manifest.quarantined)

    def quarantine_segment(
        self, segment_id: int, reason: str, durable: bool = False
    ) -> None:
        """Mark a segment damaged so queries skip it instead of decoding it.

        The mark is in-memory (every reader of *this* handle sees it
        immediately); pass ``durable=True`` -- scrub does -- to commit it
        through a manifest checkpoint so every future open sees it too.
        """
        self.manifest.quarantine(segment_id, reason)
        if durable:
            self.flush(checkpoint=True)

    def clear_quarantine(self, segment_id: int, durable: bool = False) -> bool:
        """Unmark a repaired segment; returns whether it was marked."""
        cleared = self.manifest.clear_quarantine(segment_id)
        if cleared and durable:
            self.flush(checkpoint=True)
        return cleared

    def _quarantined_error(self, segment_id: int) -> CorruptSegmentError:
        reason = self.manifest.quarantined.get(int(segment_id), "unknown reason")
        return CorruptSegmentError(
            f"segment {segment_id} is quarantined: {reason}",
            segment_id=segment_id,
            quarantined=True,
        )

    def _segment_fault(self, segment_id: int, exc: StoreError) -> StoreError:
        """Convert a read/decode fault into quarantine plus a typed error.

        The in-memory mark makes every later read through this handle
        skip the segment (degrading the answer) instead of re-hitting the
        fault; persisting the mark is scrub's (or the next checkpoint's)
        job.  Unknown segment ids pass through untyped -- that is a bad
        request, not corruption.
        """
        if isinstance(exc, CorruptSegmentError):
            return exc
        try:
            self.manifest.quarantine(segment_id, str(exc))
        except StoreError:
            return exc
        return CorruptSegmentError(
            f"segment {segment_id} is corrupt: {exc}", segment_id=segment_id
        )

    def _read_segment_file(self, segment_id: int) -> bytes:
        info = self.manifest.segment_info(segment_id)
        path = os.path.join(self.path, SEGMENTS_DIR, info.file_name)
        if not os.path.exists(path):
            raise StoreError(f"segment file {info.file_name} is missing from {self.path}")
        with open(path, "rb") as handle:
            data = handle.read()
        with self._stats_lock:
            self.read_stats.segments_read += 1
            self.read_stats.bytes_read += len(data)
        return data

    def segment(self, segment_id: int, scope: Optional[ReadScope] = None) -> SegmentPayload:
        """Load one segment through the byte-budgeted decoded-segment cache.

        Cold misses are single-flight: a concurrent reader already
        decoding this segment is joined (blocking for its result) instead
        of decoding the same bytes again.  ``scope`` collects per-query
        read accounting (the server's per-query stats); the store-wide
        :attr:`read_stats` is updated either way.

        Raises:
            CorruptSegmentError: The segment is quarantined, or its bytes
                failed an integrity check just now (which quarantines it
                in memory for the rest of this handle's life).
        """
        if self.manifest.is_quarantined(segment_id):
            raise self._quarantined_error(segment_id)
        handle = self.cache.begin_fill(
            self.cache_namespace, self.manifest_generation, segment_id
        )
        if handle.status == "hit":
            if scope is not None:
                scope.record_hit()
            return handle.payload
        if handle.status == "waiter":
            payload = handle.wait()
            if scope is not None:
                scope.record_hit()
            return payload
        try:
            data = self._read_segment_file(segment_id)
            payload = decode_segment(data)
        except StoreError as exc:
            fault = self._segment_fault(segment_id, exc)
            handle.fail(fault)
            raise fault from exc
        except BaseException as exc:
            handle.fail(exc)
            raise
        if scope is not None:
            scope.record_miss(len(data))
        handle.complete(payload)
        return payload

    def segment_many(
        self,
        segment_ids: Sequence[int],
        parallelism: int = 1,
        scope: Optional[ReadScope] = None,
        executor: Optional[ThreadPoolExecutor] = None,
    ) -> Dict[int, SegmentPayload]:
        """Load many segments, decoding cache misses concurrently.

        Single-flight claims happen up front: cached segments come back
        immediately, misses another thread is already decoding are waited
        for at the end, and the misses *this* call owns are decoded per
        :attr:`decode_mode` -- stride-partitioned into ``parallelism``
        groups, one task per group, on the store's shared thread pool
        (created lazily, shut down by :meth:`close`) or, for cold
        multi-segment sweeps on a multi-core machine, the shared process
        pool, which sidesteps the GIL the pure-Python columnar decode
        holds.  ``parallelism <= 1``, or a single miss, degrades to the
        plain sequential path; pass ``executor`` to decode on an injected
        pool instead of the store's own.  Returns ``{segment_id:
        payload}`` -- **all** requested payloads at once, so the caller's
        resident set is the request size regardless of the cache budget;
        callers that scan more than they can hold (the query engine)
        iterate bounded chunks instead of passing the whole list here.
        """
        wanted = list(dict.fromkeys(segment_ids))
        for segment_id in wanted:
            if self.manifest.is_quarantined(segment_id):
                raise self._quarantined_error(segment_id)
        payloads: Dict[int, SegmentPayload] = {}
        owned: List[Tuple[int, "FillHandle"]] = []
        waiting: List[Tuple[int, "FillHandle"]] = []
        hits = 0
        for segment_id in wanted:
            handle = self.cache.begin_fill(
                self.cache_namespace, self.manifest_generation, segment_id
            )
            if handle.status == "hit":
                payloads[segment_id] = handle.payload
                hits += 1
            elif handle.status == "waiter":
                waiting.append((segment_id, handle))
            else:
                owned.append((segment_id, handle))
        if scope is not None and hits:
            scope.record_hit(hits)
        if owned:
            misses = [segment_id for segment_id, _ in owned]
            try:
                decoded = self._decode_misses(misses, parallelism, executor)
            except BaseException as exc:
                for _, handle in owned:
                    handle.fail(exc)
                raise
            for (segment_id, handle), (data_len, payload) in zip(owned, decoded):
                if scope is not None:
                    scope.record_miss(data_len)
                handle.complete(payload)
                payloads[segment_id] = payload
        for segment_id, handle in waiting:
            payloads[segment_id] = handle.wait()
            if scope is not None:
                scope.record_hit()
        return payloads

    def _decode_misses(
        self,
        misses: List[int],
        parallelism: int,
        executor: Optional[ThreadPoolExecutor],
    ) -> List[Tuple[int, SegmentPayload]]:
        """Read + decode ``misses``; returns ``(file bytes, payload)`` each.

        The concurrency bound is exactly ``parallelism`` regardless of
        pool size: misses are stride-partitioned into that many groups,
        one task per group (which also amortizes the process pool's
        pickle round-trip over the group).
        """

        def load(segment_id: int) -> Tuple[int, SegmentPayload]:
            try:
                data = self._read_segment_file(segment_id)
                return len(data), decode_segment(data)
            except StoreError as exc:
                raise self._segment_fault(segment_id, exc) from exc

        def load_group(group: List[int]) -> List[Tuple[int, SegmentPayload]]:
            return [load(segment_id) for segment_id in group]

        if executor is not None and len(misses) > 1:
            return list(executor.map(load, misses))
        if parallelism <= 1 or len(misses) <= 1:
            return load_group(misses)
        workers = min(parallelism, len(misses))
        groups = [misses[offset::workers] for offset in range(workers)]
        results = None
        if self._use_process_decode(len(misses)):
            try:
                results = self._decode_groups_on_processes(groups)
            except StoreError:
                # A fault somewhere inside a group: re-read sequentially
                # so the damaged segment is attributed (and quarantined)
                # precisely instead of failing the sweep anonymously.
                return load_group(misses)
        if results is None:
            pool = self._shared_executor()
            if pool is None:  # closed handle: stay correct, go sequential
                return load_group(misses)
            futures = [pool.submit(load_group, group) for group in groups]
            results = [future.result() for future in futures]
        by_id = {
            segment_id: item
            for group, result in zip(groups, results)
            for segment_id, item in zip(group, result)
        }
        return [by_id[segment_id] for segment_id in misses]

    def _use_process_decode(self, miss_count: int) -> bool:
        if self.decode_mode == "thread" or self._process_pool_broken:
            return False
        if self.decode_mode == "process":
            return True
        return miss_count >= PROCESS_DECODE_THRESHOLD and (os.cpu_count() or 1) >= 2

    def _decode_groups_on_processes(
        self, groups: List[List[int]]
    ) -> Optional[List[List[Tuple[int, SegmentPayload]]]]:
        """Decode groups on the shared process pool; ``None`` = fall back.

        The children read the segment files themselves (only paths cross
        the boundary going in), so the parent accounts the store-wide
        read stats from the returned byte counts.  Pool breakage -- fork
        failure, a killed worker, unpicklable payloads -- marks the pool
        broken for the life of the handle and falls back to threads;
        store faults (:class:`StoreError`) propagate.
        """
        pool = self._shared_process_pool()
        if pool is None:
            return None
        paths = [
            [
                os.path.join(
                    self.path, SEGMENTS_DIR, self.manifest.segment_info(segment_id).file_name
                )
                for segment_id in group
            ]
            for group in groups
        ]
        try:
            futures = [pool.submit(_decode_segment_group, group_paths) for group_paths in paths]
            results = [future.result() for future in futures]
        except StoreError:
            raise
        except BrokenExecutor:
            self._mark_process_pool_broken()
            return None
        except Exception:
            # Submission/transport failures (pickling, a dying
            # interpreter, OS limits) -- not store faults.
            self._mark_process_pool_broken()
            return None
        with self._stats_lock:
            for result in results:
                for data_len, _ in result:
                    self.read_stats.segments_read += 1
                    self.read_stats.bytes_read += data_len
        return results

    def _mark_process_pool_broken(self) -> None:
        with self._pool_lock:
            self._process_pool_broken = True
            pool, self._process_pool = self._process_pool, None
        if pool is not None:
            pool.shutdown(wait=False)

    def _shared_executor(self) -> Optional[ThreadPoolExecutor]:
        """The store's lazily created decode thread pool (None when closed).

        Decode tasks never submit to (or wait on) this pool themselves,
        so sizing it above any single call's ``parallelism`` cannot
        deadlock -- it just lets concurrent queries overlap.
        """
        with self._pool_lock:
            if self._closed:
                return None
            if self._executor is None:
                workers = max(4, min(16, 2 * (os.cpu_count() or 1)))
                self._executor = ThreadPoolExecutor(
                    max_workers=workers, thread_name_prefix="store-decode"
                )
            return self._executor

    def _shared_process_pool(self) -> Optional[ProcessPoolExecutor]:
        with self._pool_lock:
            if self._closed or self._process_pool_broken:
                return None
            if self._process_pool is None:
                try:
                    import multiprocessing

                    try:
                        context = multiprocessing.get_context("fork")
                    except ValueError:  # platforms without fork
                        context = multiprocessing.get_context()
                    self._process_pool = ProcessPoolExecutor(
                        max_workers=max(2, min(8, os.cpu_count() or 1)),
                        mp_context=context,
                    )
                except (OSError, ValueError, NotImplementedError):
                    self._process_pool_broken = True
                    return None
            return self._process_pool

    def close(self) -> None:
        """Shut down the store's shared decode pools (idempotent).

        The handle stays usable for reads and writes afterwards -- a
        parallel read on a closed handle just decodes sequentially
        instead of resurrecting a pool.  Injected executors are the
        caller's to shut down.
        """
        with self._pool_lock:
            self._closed = True
            executor, self._executor = self._executor, None
            process_pool, self._process_pool = self._process_pool, None
        if executor is not None:
            executor.shutdown(wait=True)
        if process_pool is not None:
            process_pool.shutdown(wait=True)

    def __enter__(self) -> "ProvenanceStore":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def _segment_uncached(self, segment_id: int) -> SegmentPayload:
        """Decode one segment without touching the cache.

        The streaming compaction path reads every old segment exactly
        once (twice across its two passes) and must not evict the cache's
        working set -- nor keep a whole run resident through it.
        """
        if self.manifest.is_quarantined(segment_id):
            raise self._quarantined_error(segment_id)
        cached = self.cache.peek(self.cache_namespace, self.manifest_generation, segment_id)
        if cached is not None:
            return cached
        try:
            return decode_segment(self._read_segment_file(segment_id))
        except StoreError as exc:
            raise self._segment_fault(segment_id, exc) from exc

    def clear_cache(self) -> None:
        """Drop this store's decoded segments (reads hit the disk again)."""
        self.cache.invalidate(self.cache_namespace)

    def reset_read_stats(self) -> None:
        """Zero the read counters (used by benchmarks and tests)."""
        self.read_stats = StoreReadStats()

    def load_cpg(
        self, run: Optional[int] = None, parallelism: int = 1
    ) -> ConcurrentProvenanceGraph:
        """Materialize one run's full graph (reads every segment of the run).

        This is the fallback path the query engine exists to avoid; the
        benchmarks use it as the baseline.  ``parallelism`` fans the
        segment decode out over a thread pool.
        """
        run_id = self.resolve_run(run)
        ordered = [info.segment_id for info in self.manifest.segments_of_run(run_id)]
        by_id = self.segment_many(ordered, parallelism=parallelism)
        payloads = [by_id[segment_id] for segment_id in ordered]
        cpg = ConcurrentProvenanceGraph()
        for payload in payloads:
            for node in payload.nodes.values():
                cpg.add_subcomputation(node)
        for payload in payloads:
            for source, target, kind, attrs in payload.edges:
                apply_edge(cpg, source, target, kind, attrs)
        return cpg

    # ------------------------------------------------------------------ #
    # Maintenance: compaction and garbage collection
    # ------------------------------------------------------------------ #

    def compact(
        self, run: Optional[int] = None, segment_nodes: int = DEFAULT_SEGMENT_NODES
    ) -> MaintenanceStats:
        """Merge a run's small segments into dense ``segment_nodes`` batches.

        Streamed ingests leave two kinds of fragmentation behind: epochs
        shorter than a full segment, and the edge-only tail segments the
        sink appends for post-run data edges.  Compaction rewrites the
        run's segments in topological order (ranks are preserved), co-
        locates every edge with its target node again, re-encodes every
        segment with the store's ``default_codec``, and **folds the run's
        pending index deltas into a fresh base file**.  With ``run=None``
        every run is compacted.

        The rewrite is *streaming*: old segments are decoded one at a time
        through the codec layer, edges are spilled to per-batch scratch
        files, and each new segment is sealed as soon as its nodes have
        arrived -- peak memory is one old segment plus one output batch
        (``MaintenanceStats.peak_resident_nodes`` reports the observed
        peak), not the whole run.

        Crash-consistent: the new segments and the folded index base are
        written under fresh ids/generations, the manifest is committed
        atomically, and only then are the old files deleted.  A crash
        before the commit leaves the old generation intact (the stray new
        files are swept by the next maintenance call); a crash after it
        leaves the new generation intact.
        """
        if segment_nodes <= 0:
            raise StoreError(f"segment_nodes must be positive, got {segment_nodes}")
        targets = [self.resolve_run(run)] if run is not None else self.run_ids()
        stats = MaintenanceStats(segments_before=self.manifest.segment_count)
        old_ids: List[int] = []
        dirty = False
        for run_id in targets:
            superseded, peak = self._compact_run(run_id, segment_nodes)
            old_ids.extend(superseded)
            stats.peak_resident_nodes = max(stats.peak_resident_nodes, peak)
            run_info = self.manifest.run_info(run_id)
            loaded = dict.get(self.run_indexes, run_id)
            if superseded or run_info.index_deltas or (loaded is not None and loaded.needs_base):
                # Fold the run's pending deltas (and any legacy/rebuilt
                # state) into a fresh base at the flush below.
                stats.index_delta_files_reclaimed += len(run_info.index_deltas)
                self.run_indexes[run_id].needs_base = True
                if self.pinner is not None:
                    self.pinner.invalidate(self.cache_namespace, run_id)
                dirty = True
        stats.segments_after = self.manifest.segment_count
        if dirty or self._disk_version < STORE_FORMAT_VERSION:
            # Compaction rewrote the segment table: only a checkpoint can
            # express that (the log is append-only).
            self.flush(checkpoint=True)
        if dirty:
            self._bump_generation()
        stats.bytes_reclaimed = self._delete_segments(old_ids) + self._sweep_orphans()
        return stats

    def _bump_generation(self) -> None:
        """Advance the cache generation after a maintenance rewrite.

        Every decoded-segment cache key carries the generation, so no
        entry cached before the rewrite can be served after it -- the
        whole namespace is dropped as well, which is what frees the
        superseded payloads (the old keys would otherwise just be
        unreachable).
        """
        self.manifest_generation += 1
        self.cache.invalidate(self.cache_namespace)

    def _compact_run(self, run_id: int, segment_nodes: int) -> Tuple[List[int], int]:
        """Stream-rewrite one run's segments.

        Returns:
            ``(superseded segment ids, peak resident node records)``.
        """
        infos = self.manifest.segments_of_run(run_id)
        run_info = self.manifest.run_info(run_id)
        wanted = max(1, -(-run_info.nodes // segment_nodes)) if run_info.nodes else 1
        if (
            len(infos) <= wanted
            and all(
                info.nodes >= min(segment_nodes, run_info.nodes) or info is infos[-1]
                for info in infos
            )
            and all(info.codec == self.default_codec for info in infos)
        ):
            return [], 0  # already compact (also covers the 0/1-segment runs)
        old_index = self.run_indexes[run_id]
        # Batch assignment from the (small, in-memory) node index alone:
        # node payloads are never materialized run-wide.
        in_topo_order = sorted(old_index.node_topo.items(), key=lambda item: item[1])
        batch_of_node = {
            parse_node_key(key): position // segment_nodes
            for position, (key, _) in enumerate(in_topo_order)
        }
        batch_count = max(1, -(-len(in_topo_order) // segment_nodes))
        batch_sizes = [
            min(segment_nodes, len(in_topo_order) - position * segment_nodes)
            for position in range(batch_count)
        ]
        spill_dir = os.path.join(self.path, _COMPACT_SPILL_DIR)
        self._remove_spill_dir()
        os.makedirs(spill_dir, exist_ok=True)
        peak = 0
        try:
            # Pass 1: scatter every edge to its destination batch's spill
            # file (an edge is co-located with its target node; edges whose
            # target lives elsewhere fall back to the source's batch, then
            # the first).
            for info in infos:
                payload = self._segment_uncached(info.segment_id)
                peak = max(peak, len(payload.nodes))
                lines_by_batch: Dict[int, List[str]] = defaultdict(list)
                for edge in payload.edges:
                    position = batch_of_node.get(edge[1], batch_of_node.get(edge[0], 0))
                    lines_by_batch[position].append(
                        json.dumps(
                            edge_to_dict(
                                edge[0], edge[1], {"kind": edge[2], **edge[3]},
                                version=FORMAT_VERSION_V2,
                            ),
                            sort_keys=True,
                        )
                    )
                for position, lines in lines_by_batch.items():
                    with open(
                        os.path.join(spill_dir, f"batch-{position:08d}.jsonl"),
                        "a",
                        encoding="utf-8",
                    ) as handle:
                        handle.write("\n".join(lines) + "\n")
            # Pass 2: stream nodes in topological order, sealing each new
            # segment as soon as its batch is complete.
            new_index = StoreIndexes()
            new_infos: List[SegmentInfo] = []
            buffers: Dict[int, List[SubComputation]] = defaultdict(list)
            emitted: Set[int] = set()

            def emit(position: int) -> None:
                batch = sorted(
                    buffers.pop(position, []), key=lambda node: old_index.topo_of(node.node_id)
                )
                batch_edges: List[EdgeTuple] = []
                spill_path = os.path.join(spill_dir, f"batch-{position:08d}.jsonl")
                if os.path.exists(spill_path):
                    with open(spill_path, "r", encoding="utf-8") as handle:
                        for line in handle:
                            if line.strip():
                                batch_edges.append(edge_from_dict(json.loads(line)))
                segment_id = self.manifest.next_segment_id
                self.manifest.next_segment_id += 1
                framed, raw_bytes = encode_segment(batch, batch_edges, codec=self.default_codec)
                path = os.path.join(self.path, SEGMENTS_DIR, segment_file_name(segment_id))
                scratch = path + ".tmp"
                with open(scratch, "wb") as handle:
                    handle.write(framed)
                os.replace(scratch, path)
                for node in batch:
                    new_index.add_node(segment_id, node, old_index.topo_of(node.node_id))
                for edge in batch_edges:
                    new_index.add_edge(segment_id, edge)
                new_infos.append(
                    SegmentInfo(
                        segment_id=segment_id,
                        run=run_id,
                        nodes=len(batch),
                        edges=len(batch_edges),
                        raw_bytes=raw_bytes,
                        stored_bytes=len(framed),
                        codec=self.default_codec,
                        # Transcoding backfills the checksum column: after
                        # one compact() every segment of the run is covered.
                        crc=zlib.crc32(framed) & 0xFFFFFFFF,
                    )
                )
                emitted.add(position)

            for info in infos:
                payload = self._segment_uncached(info.segment_id)
                for node in payload.nodes.values():
                    buffers[batch_of_node[node.node_id]].append(node)
                # The decoded payload's nodes now live in the buffers, so
                # the buffered total *is* the resident node count.
                peak = max(peak, sum(len(pending) for pending in buffers.values()))
                for position in [
                    position
                    for position, pending in buffers.items()
                    if len(pending) >= batch_sizes[position]
                ]:
                    emit(position)
            for position in sorted(buffers):
                emit(position)
            for position in range(batch_count):
                if position not in emitted:
                    emit(position)  # nodeless batch (edge-only runs)
        finally:
            self._remove_spill_dir()
        new_index.clear_pending()
        new_index.needs_base = True
        superseded = [info.segment_id for info in infos]
        self.manifest.segments = [
            info for info in self.manifest.segments if info.run != run_id
        ] + new_infos
        self.run_indexes[run_id] = new_index
        # The superseded payloads are dropped by the generation bump in
        # compact() once the new manifest generation is committed.
        return superseded, peak

    def _remove_spill_dir(self) -> None:
        spill_dir = os.path.join(self.path, _COMPACT_SPILL_DIR)
        if not os.path.isdir(spill_dir):
            return
        for name in os.listdir(spill_dir):
            try:
                os.remove(os.path.join(spill_dir, name))
            except OSError:
                continue
        try:
            os.rmdir(spill_dir)
        except OSError:
            pass

    def _run_fully_quarantined(self, run_id: int) -> bool:
        """True when every segment of ``run_id`` is quarantined.

        Such a run is damage awaiting repair (scrub/anti-entropy), so
        retention accounting treats it as neither live nor superseded.
        """
        infos = self.manifest.segments_of_run(run_id)
        return bool(infos) and all(
            self.manifest.is_quarantined(info.segment_id) for info in infos
        )

    def gc(
        self, keep_last: Optional[int] = None, runs: Optional[Sequence[int]] = None
    ) -> MaintenanceStats:
        """Drop superseded runs and reclaim their segments on disk.

        Exactly one selector must be given: ``keep_last=N`` keeps the N
        most recently minted **live** runs and drops the older live ones;
        ``runs=[...]`` drops exactly the listed run ids.

        A run whose every segment is quarantined is damage awaiting
        repair, not superseded data: it neither consumes a keep slot nor
        gets dropped by ``keep_last`` (an explicit ``runs=[...]`` still
        removes it once the operator gives up on repair).

        Crash-consistent like :meth:`compact`: the shrunk manifest is
        committed first, then the dropped runs' segment files and index
        directories are deleted; unreferenced files left by an earlier
        crash are swept as well.
        """
        if (keep_last is None) == (runs is None):
            raise StoreError("gc needs exactly one of keep_last= or runs=")
        if keep_last is not None:
            if keep_last < 0:
                raise StoreError(f"keep_last must be non-negative, got {keep_last}")
            live = [
                run_id
                for run_id in self.run_ids()
                if not self._run_fully_quarantined(run_id)
            ]
            drop = live[: max(0, len(live) - keep_last)]
        else:
            drop = list(dict.fromkeys(runs or ()))  # dedupe, keep order
            for run_id in drop:
                self.manifest.run_info(run_id)  # validates existence
        stats = MaintenanceStats(segments_before=self.manifest.segment_count)
        if not drop:
            stats.segments_after = stats.segments_before
            return stats
        dropped_segments: List[int] = []
        self._load_pages_runs_once()
        for run_id in drop:
            dropped_segments.extend(
                info.segment_id for info in self.manifest.remove_run(run_id)
            )
            self.run_indexes.pop(run_id, None)
            self._pages_runs_covered.discard(run_id)
        if self._pages_runs:
            dropped_set_runs = set(drop)
            for page in list(self._pages_runs):
                remaining = self._pages_runs[page] - dropped_set_runs
                if remaining != self._pages_runs[page]:
                    if remaining:
                        self._pages_runs[page] = remaining
                    else:
                        del self._pages_runs[page]
        if self.pinner is not None:
            for run_id in drop:
                self.pinner.invalidate(self.cache_namespace, run_id)
        stats.runs_dropped = drop
        stats.segments_after = self.manifest.segment_count
        # The commit point: dropped runs are gone from here on.  Removal
        # shrinks the segment table, so it must be a checkpoint.
        self.flush(checkpoint=True)
        self._bump_generation()
        stats.bytes_reclaimed = self._delete_segments(dropped_segments)
        for run_id in drop:
            self._delete_run_index_dir(run_id)
        stats.bytes_reclaimed += self._sweep_orphans()
        return stats

    def _delete_segments(self, segment_ids: Sequence[int]) -> int:
        """Remove segment files; returns the bytes freed (missing files ok)."""
        freed = 0
        for segment_id in segment_ids:
            path = os.path.join(self.path, SEGMENTS_DIR, segment_file_name(segment_id))
            try:
                freed += os.path.getsize(path)
                os.remove(path)
            except OSError:
                continue
        return freed

    def _delete_run_index_dir(self, run_id: int) -> None:
        run_dir = os.path.join(self.path, INDEX_DIR, run_index_dir_name(run_id))
        if not os.path.isdir(run_dir):
            return
        for name in os.listdir(run_dir):
            try:
                os.remove(os.path.join(run_dir, name))
            except OSError:
                continue
        try:
            os.rmdir(run_dir)
        except OSError:
            pass

    def _sweep_orphans(self) -> int:
        """Delete files the manifest does not reference; returns bytes freed.

        Covers segment files, index base/delta generations no run
        references (superseded by a fold, or strays from a crashed
        flush/compaction), the legacy JSON index files of runs that have a
        v4 base, and stale compaction spill directories.  Only maintenance
        operations sweep (never :meth:`open`): a streaming sink with
        ``flush_every_epochs > 1`` legitimately leaves committed segment
        files briefly ahead of the manifest, and sweeping on every open
        would race it.  Running compact/gc concurrently with an active
        ingest is documented as unsupported.
        """
        freed = 0

        def remove(path: str) -> int:
            try:
                size = os.path.getsize(path)
                os.remove(path)
                return size
            except OSError:
                return 0

        referenced = set(self.manifest.segment_ids())
        segments_dir = os.path.join(self.path, SEGMENTS_DIR)
        if os.path.isdir(segments_dir):
            for name in os.listdir(segments_dir):
                if name.endswith(".tmp"):
                    # Scratch left by a crash between write and rename;
                    # maintenance is single-writer, so nothing races this.
                    freed += remove(os.path.join(segments_dir, name))
                    continue
                match = _SEGMENT_FILE_RE.match(name)
                if match is None or int(match.group(1)) in referenced:
                    continue
                freed += remove(os.path.join(segments_dir, name))
        index_dir = os.path.join(self.path, INDEX_DIR)
        known_runs = set(self.run_ids())
        if os.path.isdir(index_dir):
            for name in os.listdir(index_dir):
                match = _RUN_DIR_RE.match(name)
                if match is None:
                    # v2 leftovers: the flat index files of an upgraded
                    # single-run store (never the cross-run summary) --
                    # and crashed-rename scratch files.
                    stray = name.endswith(".tmp") or (
                        name in LEGACY_INDEX_FILES
                        and self._disk_version >= STORE_FORMAT_VERSION_V4
                    )
                    if stray:
                        freed += remove(os.path.join(index_dir, name))
                    continue
                run_id = int(match.group(1))
                if run_id not in known_runs:
                    self._delete_run_index_dir(run_id)
                    continue
                freed += self._sweep_run_index_dir(run_id, os.path.join(index_dir, name))
        self._remove_spill_dir()
        return freed

    def _sweep_run_index_dir(self, run_id: int, run_dir: str) -> int:
        """Drop index generations (and superseded legacy files) of one run."""
        run_info = self.manifest.run_info(run_id)
        freed = 0
        for name in os.listdir(run_dir):
            path = os.path.join(run_dir, name)
            base_match = _INDEX_BASE_RE.match(name)
            delta_match = _INDEX_DELTA_RE.match(name)
            stale = name.endswith(".tmp")  # crashed-rename scratch
            if base_match is not None:
                stale = int(base_match.group(1)) != run_info.index_base
            elif delta_match is not None:
                stale = int(delta_match.group(1)) not in run_info.index_deltas
            elif name in LEGACY_INDEX_FILES and run_info.index_base > 0:
                # The run's state lives in v4 generation files now; the
                # JSON files it was upgraded from are superseded.
                stale = True
            if stale:
                try:
                    freed += os.path.getsize(path)
                    os.remove(path)
                except OSError:
                    continue
        return freed

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def run_index_delta_bytes(self, run_id: int) -> int:
        """On-disk size of the run's pending (un-folded) index delta files."""
        run_info = self.manifest.run_info(run_id)
        run_dir = os.path.join(self.path, INDEX_DIR, run_index_dir_name(run_id))
        total = 0
        for generation in run_info.index_deltas:
            try:
                total += os.path.getsize(os.path.join(run_dir, index_delta_file_name(generation)))
            except OSError:
                continue
        return total

    def run_summary(self, run_id: int) -> dict:
        """One run's manifest entry plus its on-disk footprint."""
        run = self.manifest.run_info(run_id)
        infos = self.manifest.segments_of_run(run_id)
        codecs: Dict[str, int] = {}
        for info in infos:
            codecs[info.codec] = codecs.get(info.codec, 0) + 1
        return {
            "id": run.run_id,
            "workload": run.workload,
            "status": run.status,
            "created_at": run.created_at,
            "nodes": run.nodes,
            "edges": run.edges,
            "segments": len(infos),
            "quarantined_segments": sorted(
                info.segment_id for info in infos
                if self.manifest.is_quarantined(info.segment_id)
            ),
            "stored_bytes": sum(info.stored_bytes for info in infos),
            "codecs": codecs,
            "index_base_gen": run.index_base,
            "index_delta_files": len(run.index_deltas),
            "index_delta_bytes": self.run_index_delta_bytes(run_id),
            "meta": dict(run.meta),
        }

    def log_state(self) -> dict:
        """Segment-log state (the CLI's ``info`` segment-log block).

        ``checkpoint_seq`` is the last record the manifest checkpoint
        folded in; ``last_seq`` the last record this handle committed
        (checkpointed or logged); their gap is the replay a cold open of
        the current on-disk state would perform.
        """
        return {
            "records": self._log.record_count if self._log.exists() else 0,
            "bytes": self._log.size_bytes(),
            "checkpoint_seq": self.manifest.log_seq,
            "last_seq": self._log_next_seq - 1,
            "uncheckpointed_records": self._uncheckpointed_records,
            "checkpoint_interval": self.checkpoint_interval,
        }

    def info(self) -> dict:
        """Summary of the store (the CLI's ``info`` output)."""
        manifest = self.manifest
        raw = sum(segment.raw_bytes for segment in manifest.segments)
        stored = sum(segment.stored_bytes for segment in manifest.segments)
        codecs: Dict[str, int] = {}
        codec_bytes: Dict[str, Dict[str, int]] = {}
        for segment in manifest.segments:
            codecs[segment.codec] = codecs.get(segment.codec, 0) + 1
            per = codec_bytes.setdefault(
                segment.codec, {"segments": 0, "raw_bytes": 0, "stored_bytes": 0}
            )
            per["segments"] += 1
            per["raw_bytes"] += segment.raw_bytes
            per["stored_bytes"] += segment.stored_bytes
        for run_id in self.run_ids():
            self.indexes_for(run_id)  # info is the diagnostic full view
        loaded = list(self.run_indexes.values())
        threads = sorted({tid for idx in loaded for tid in idx.thread_indexes})
        pages = len({page for idx in loaded for page in idx.pages_touched()})
        sync_objects = len({obj for idx in loaded for obj in idx.sync_edges})
        runs = [self.run_summary(run_id) for run_id in self.run_ids()]
        return {
            "path": self.path,
            "format_version": manifest.version,
            "segments": manifest.segment_count,
            "quarantined_segments": sorted(manifest.quarantined),
            "codecs": codecs,
            "codec_bytes": codec_bytes,
            "nodes": manifest.node_count,
            "edges": manifest.edge_count,
            "threads": threads,
            "pages_indexed": pages,
            "sync_objects": sync_objects,
            "raw_bytes": raw,
            "stored_bytes": stored,
            "compression_ratio": round(raw / stored, 2) if stored else 1.0,
            "index_delta_files": sum(len(run.index_deltas) for run in manifest.runs),
            "index_delta_bytes": sum(self.run_index_delta_bytes(run_id) for run_id in self.run_ids()),
            "segment_log": self.log_state(),
            "runs": runs,
        }

    def cache_info(self) -> dict:
        """Read-path cache configuration + counters (``info --stats``)."""
        report = {
            "segment_cache": self.cache.to_dict(),
            "manifest_generation": self.manifest_generation,
            "index_pinner": self.pinner.to_dict() if self.pinner is not None else None,
        }
        return report

    def __len__(self) -> int:
        return self.manifest.node_count

"""The persistent provenance store.

:class:`ProvenanceStore` owns one store directory: an append-only sequence
of compressed CPG segments plus the secondary indexes and the manifest.
Whole graphs are ingested with :meth:`ProvenanceStore.ingest`; running
executions stream into the store through :class:`repro.store.sink.StoreSink`;
queries that only touch the index-selected subgraph are served by
:class:`repro.store.query.StoreQueryEngine`.
"""

from __future__ import annotations

import json
import os
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.cpg import ConcurrentProvenanceGraph
from repro.core.serialization import apply_edge, cpg_from_json, node_key
from repro.core.thunk import SubComputation
from repro.errors import StoreError

from repro.store.format import (
    DEFAULT_SEGMENT_NODES,
    MANIFEST_NAME,
    SEGMENTS_DIR,
    SegmentInfo,
    StoreManifest,
    segment_file_name,
)
from repro.store.indexes import StoreIndexes
from repro.store.segment import EdgeTuple, SegmentPayload, decode_segment, encode_segment


@dataclass
class StoreReadStats:
    """Disk-read accounting (the out-of-core acceptance metric).

    Attributes:
        segments_read: Segment files decoded from disk (cache misses).
        bytes_read: Compressed bytes read from segment files.
    """

    segments_read: int = 0
    bytes_read: int = 0


#: Decoded segments kept in memory at once (LRU); queries over stores
#: larger than this stay out-of-core in memory, not just in I/O counts.
DEFAULT_CACHE_SEGMENTS = 64


class ProvenanceStore:
    """One store directory: segments + indexes + manifest.

    A store holds **one** graph namespace: node ids are ``(tid, index)``,
    so two traced runs would collide -- stream each run into its own
    directory (ingestion fails fast on the first duplicate node).

    Use :meth:`create`, :meth:`open`, or :meth:`open_or_create` instead of
    the constructor.
    """

    def __init__(self, path: str, manifest: StoreManifest, indexes: StoreIndexes) -> None:
        self.path = path
        self.manifest = manifest
        self.indexes = indexes
        self.read_stats = StoreReadStats()
        self.max_cached_segments = DEFAULT_CACHE_SEGMENTS
        self._cache: Dict[int, SegmentPayload] = {}

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    @classmethod
    def create(cls, path: str, meta: Optional[dict] = None) -> "ProvenanceStore":
        """Initialise an empty store at ``path`` (must not already hold one)."""
        manifest_path = os.path.join(path, MANIFEST_NAME)
        if os.path.exists(manifest_path):
            raise StoreError(f"a provenance store already exists at {path}")
        os.makedirs(os.path.join(path, SEGMENTS_DIR), exist_ok=True)
        manifest = StoreManifest(meta=dict(meta or {}))
        store = cls(path, manifest, StoreIndexes())
        store.flush()
        return store

    @classmethod
    def open(cls, path: str) -> "ProvenanceStore":
        """Open an existing store directory."""
        manifest_path = os.path.join(path, MANIFEST_NAME)
        if not os.path.exists(manifest_path):
            raise StoreError(f"no provenance store at {path} (missing {MANIFEST_NAME})")
        with open(manifest_path, "r", encoding="utf-8") as handle:
            try:
                manifest = StoreManifest.from_dict(json.load(handle))
            except json.JSONDecodeError as exc:
                raise StoreError(f"corrupt manifest at {path}: {exc}") from exc
        indexes = StoreIndexes.load(path)
        # The manifest is the commit point: a crash mid-flush can leave
        # index files one segment generation ahead of it.
        indexes.clamp_to_segments(manifest.segment_count)
        return cls(path, manifest, indexes)

    @classmethod
    def open_or_create(cls, path: str, meta: Optional[dict] = None) -> "ProvenanceStore":
        """Open ``path`` when it holds a store, initialise one otherwise."""
        if os.path.exists(os.path.join(path, MANIFEST_NAME)):
            return cls.open(path)
        return cls.create(path, meta=meta)

    def flush(self) -> None:
        """Write the manifest and every index file to disk.

        Index files are written first and the manifest last, each through a
        temp-file + atomic rename, so a crash mid-flush leaves the previous
        consistent manifest/index generation in place (the manifest is the
        commit point: new segments it does not yet reference are ignored).
        """
        self.indexes.save(self.path)
        manifest_path = os.path.join(self.path, MANIFEST_NAME)
        scratch = manifest_path + ".tmp"
        with open(scratch, "w", encoding="utf-8") as handle:
            json.dump(self.manifest.to_dict(), handle, sort_keys=True, indent=2)
        os.replace(scratch, manifest_path)

    # ------------------------------------------------------------------ #
    # Appending
    # ------------------------------------------------------------------ #

    def append_segment(
        self,
        nodes: Sequence[SubComputation],
        edges: Sequence[EdgeTuple],
        topo_positions: Optional[Sequence[int]] = None,
    ) -> int:
        """Seal ``nodes`` + ``edges`` into a new segment and return its id.

        Topological ranks default to arrival order (``manifest.next_topo``
        onwards); the whole-graph ingest path passes explicit ranks from
        :meth:`ConcurrentProvenanceGraph.topological_order` instead.

        The manifest and indexes are only updated in memory; call
        :meth:`flush` once the batch of appends is complete.
        """
        if topo_positions is None:
            topo_positions = range(self.manifest.next_topo, self.manifest.next_topo + len(nodes))
        elif len(topo_positions) != len(nodes):
            raise StoreError(
                f"got {len(topo_positions)} topological ranks for {len(nodes)} nodes"
            )
        # Check collisions (against the store and within the batch) before
        # any file is written, so a duplicate node cannot leave an orphan
        # segment or a half-updated index behind.
        batch_ids = set()
        for node in nodes:
            if self.indexes.has_node(node.node_id) or node.node_id in batch_ids:
                raise StoreError(
                    f"node {node_key(node.node_id)} ingested twice -- a store holds one "
                    f"graph; stream each run into a fresh directory"
                )
            batch_ids.add(node.node_id)
        segment_id = self.manifest.segment_count + 1
        framed, raw_bytes = encode_segment(nodes, edges)
        with open(os.path.join(self.path, SEGMENTS_DIR, segment_file_name(segment_id)), "wb") as handle:
            handle.write(framed)
        for node, topo in zip(nodes, topo_positions):
            self.indexes.add_node(segment_id, node, topo)
        for edge in edges:
            self.indexes.add_edge(segment_id, edge)
        self.manifest.segments.append(
            SegmentInfo(
                segment_id=segment_id,
                nodes=len(nodes),
                edges=len(edges),
                raw_bytes=raw_bytes,
                stored_bytes=len(framed),
            )
        )
        self.manifest.node_count += len(nodes)
        self.manifest.edge_count += len(edges)
        self.manifest.next_topo = max(
            self.manifest.next_topo, max(topo_positions, default=self.manifest.next_topo - 1) + 1
        )
        self._cache[segment_id] = SegmentPayload.build(nodes, edges)
        while len(self._cache) > max(1, self.max_cached_segments):
            self._cache.pop(next(iter(self._cache)))
        return segment_id

    def ingest(
        self,
        cpg: ConcurrentProvenanceGraph,
        segment_nodes: int = DEFAULT_SEGMENT_NODES,
        run_meta: Optional[dict] = None,
    ) -> int:
        """Ingest a finalized CPG and return the number of segments written.

        Nodes are batched in topological order (so segment locality follows
        causality) and every edge is co-located with its target node.
        """
        if segment_nodes <= 0:
            raise StoreError(f"segment_nodes must be positive, got {segment_nodes}")
        order = cpg.topological_order()
        collisions = [node_id for node_id in order if self.indexes.has_node(node_id)]
        if collisions:
            raise StoreError(
                f"store at {self.path} already holds {len(collisions)} of these nodes "
                f"(first: {node_key(collisions[0])}) -- ingest each graph into a fresh store"
            )
        base_topo = self.manifest.next_topo
        topo_by_node = {node_id: base_topo + rank for rank, node_id in enumerate(order)}
        edges_by_target: Dict[object, List[EdgeTuple]] = defaultdict(list)
        for source, target, attrs in cpg.edges():
            kind = attrs["kind"]
            extra = {key: value for key, value in attrs.items() if key != "kind"}
            edges_by_target[target].append((source, target, kind, extra))
        segments_written = 0
        for start in range(0, len(order), segment_nodes):
            batch = order[start : start + segment_nodes]
            nodes = [cpg.subcomputation(node_id) for node_id in batch]
            edges: List[EdgeTuple] = []
            for node_id in batch:
                edges.extend(edges_by_target.get(node_id, ()))
            self.append_segment(nodes, edges, topo_positions=[topo_by_node[n] for n in batch])
            segments_written += 1
        if run_meta is not None:
            self.manifest.runs.append(dict(run_meta))
        self.flush()
        return segments_written

    def ingest_json_file(
        self,
        path: str,
        segment_nodes: int = DEFAULT_SEGMENT_NODES,
        run_meta: Optional[dict] = None,
    ) -> int:
        """Ingest a CPG JSON file (v1 or v2) written with ``write_cpg``."""
        with open(path, "r", encoding="utf-8") as handle:
            cpg = cpg_from_json(handle.read())
        meta = {"source": os.path.basename(path)}
        meta.update(run_meta or {})
        return self.ingest(cpg, segment_nodes=segment_nodes, run_meta=meta)

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #

    def segment(self, segment_id: int) -> SegmentPayload:
        """Load one segment (LRU-cached up to ``max_cached_segments``)."""
        cached = self._cache.get(segment_id)
        if cached is not None:
            # Re-insert to refresh recency (dicts preserve insertion order).
            del self._cache[segment_id]
            self._cache[segment_id] = cached
            return cached
        info = self.manifest.segment_info(segment_id)
        path = os.path.join(self.path, SEGMENTS_DIR, info.file_name)
        if not os.path.exists(path):
            raise StoreError(f"segment file {info.file_name} is missing from {self.path}")
        with open(path, "rb") as handle:
            data = handle.read()
        payload = decode_segment(data)
        self.read_stats.segments_read += 1
        self.read_stats.bytes_read += len(data)
        self._cache[segment_id] = payload
        while len(self._cache) > max(1, self.max_cached_segments):
            self._cache.pop(next(iter(self._cache)))
        return payload

    def clear_cache(self) -> None:
        """Drop decoded segments (subsequent reads hit the disk again)."""
        self._cache.clear()

    def reset_read_stats(self) -> None:
        """Zero the read counters (used by benchmarks and tests)."""
        self.read_stats = StoreReadStats()

    def load_cpg(self) -> ConcurrentProvenanceGraph:
        """Materialize the full graph (reads every segment).

        This is the fallback path the query engine exists to avoid; the
        benchmarks use it as the baseline.
        """
        payloads = [self.segment(segment_id) for segment_id in range(1, self.manifest.segment_count + 1)]
        cpg = ConcurrentProvenanceGraph()
        for payload in payloads:
            for node in payload.nodes.values():
                cpg.add_subcomputation(node)
        for payload in payloads:
            for source, target, kind, attrs in payload.edges:
                apply_edge(cpg, source, target, kind, attrs)
        return cpg

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def info(self) -> dict:
        """Summary of the store (the CLI's ``info`` output)."""
        manifest = self.manifest
        raw = sum(segment.raw_bytes for segment in manifest.segments)
        stored = sum(segment.stored_bytes for segment in manifest.segments)
        return {
            "path": self.path,
            "format_version": manifest.version,
            "segments": manifest.segment_count,
            "nodes": manifest.node_count,
            "edges": manifest.edge_count,
            "threads": sorted(self.indexes.thread_indexes),
            "pages_indexed": len(set(self.indexes.page_writers) | set(self.indexes.page_readers)),
            "sync_objects": len(self.indexes.sync_edges),
            "raw_bytes": raw,
            "stored_bytes": stored,
            "compression_ratio": round(raw / stored, 2) if stored else 1.0,
            "runs": list(manifest.runs),
        }

    def __len__(self) -> int:
        return self.manifest.node_count

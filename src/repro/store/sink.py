"""Incremental ingestion of a running execution into a store.

:class:`StoreSink` subscribes to the provenance tracker's publication
stream (:meth:`repro.core.algorithm.ProvenanceTracker.add_listener`) and
buffers sub-computations as they are closed, together with the control and
synchronization edges recorded with them.  Every ``segment_nodes``
publications -- one ingest *epoch* -- the buffer is sealed into a segment,
so a long run streams to disk instead of accumulating in memory and the
store stays readable mid-run up to the last committed epoch.

Each sink owns one **run**: a run id is minted when the sink attaches (or
lazily at its first commit), recorded in the manifest with the workload
name and wall-clock metadata, and marked complete by :meth:`StoreSink.finish`.
Because runs are separate node-id namespaces, any number of traced runs --
of the same workload or different ones -- can stream into one store, each
through its own sink.

Data edges are derived only after the run (they need the full happens-
before order), so :meth:`StoreSink.finish` appends them at the end, grouped
by the segment of their target node to preserve the locality the query
engine expects.  (These edge-only tail segments are what
:meth:`~repro.store.store.ProvenanceStore.compact` later folds back into
the node segments.)

:class:`RemoteStoreSink` is the same listener protocol pointed at a
**writable store server** instead of a local directory: epochs travel as
codec-framed segments over the server's JSON-line protocol
(``begin_run`` / ``append_epoch`` / ``commit_run``), so the traced
process needs no filesystem access to the store at all -- and each
``append_epoch`` reply arrives only after the server flushed the epoch,
so a slow store back-pressures the sink instead of silently lagging it.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Union

from repro.core.cpg import ConcurrentProvenanceGraph, EdgeKind
from repro.core.thunk import NodeId, SubComputation

from repro.store.format import DEFAULT_SEGMENT_NODES, RUN_COMPLETE
from repro.store.segment import EdgeTuple
from repro.store.store import ProvenanceStore


class StoreSink:
    """Streams published sub-computations into one run of a :class:`ProvenanceStore`.

    Args:
        store: The destination store (may already hold other runs).
        segment_nodes: Epoch length -- sub-computations per sealed segment.
        flush_every_epochs: How often the store state is committed.  1
            (the default) makes every committed epoch durable; since
            store format 4 a flush appends one O(epoch) index delta file
            instead of rewriting the whole index, and since format 5 the
            commit itself is one O(epoch) record appended to the segment
            log -- the flush cost no longer grows with the run or the
            store at all.  Raising it still amortizes the per-record
            overhead when mid-run durability matters less than ingest
            throughput.  ``finish`` always flushes.
        workload: Workload name recorded in the minted run's manifest entry.
        run_meta: Initial run metadata (config, wall-clock args, ...);
            merged with whatever ``finish`` supplies.
    """

    def __init__(
        self,
        store: ProvenanceStore,
        segment_nodes: int = DEFAULT_SEGMENT_NODES,
        flush_every_epochs: int = 1,
        workload: str = "",
        run_meta: Optional[dict] = None,
    ) -> None:
        if segment_nodes <= 0:
            raise ValueError(f"segment_nodes must be positive, got {segment_nodes}")
        if flush_every_epochs <= 0:
            raise ValueError(f"flush_every_epochs must be positive, got {flush_every_epochs}")
        self.store = store
        self.segment_nodes = segment_nodes
        self.flush_every_epochs = flush_every_epochs
        self.workload = workload
        self.run_meta = dict(run_meta or {})
        self.epochs_committed = 0
        self.run_id: Optional[int] = None
        self._nodes: List[SubComputation] = []
        self._edges: List[EdgeTuple] = []
        self._finished = False

    def attach(self, tracker) -> None:
        """Subscribe to ``tracker``'s publication stream and mint the run.

        Minting up front (rather than at the first epoch) records the run's
        wall-clock start; the run entry becomes durable with the first
        flushed epoch.
        """
        self._ensure_run()
        tracker.add_listener(self)

    def _ensure_run(self) -> int:
        if self.run_id is None:
            self.run_id = self.store.new_run(
                workload=self.workload,
                meta=self.run_meta,
                created_at=(
                    str(self.run_meta["created_at"]) if "created_at" in self.run_meta else None
                ),
            )
        return self.run_id

    # Called by the tracker (listener protocol).
    def subcomputation_published(self, node: SubComputation, edges: List[EdgeTuple]) -> None:
        """Buffer one published sub-computation and its recorded edges."""
        self._nodes.append(node)
        self._edges.extend(edges)
        if len(self._nodes) >= self.segment_nodes:
            self.commit_epoch()

    def commit_epoch(self) -> Optional[int]:
        """Seal the current buffer into a segment; returns its id (or None).

        The manifest and indexes are flushed every ``flush_every_epochs``
        epochs (default: every epoch), so the store stays readable -- up to
        the last flushed epoch -- even if the traced process dies mid-run.
        """
        if not self._nodes and not self._edges:
            return None
        segment_id = self.store.append_segment(self._nodes, self._edges, run=self._ensure_run())
        self._nodes = []
        self._edges = []
        self.epochs_committed += 1
        if self.epochs_committed % self.flush_every_epochs == 0:
            self.store.flush()
        return segment_id

    def finish(
        self, cpg: Optional[ConcurrentProvenanceGraph] = None, run_meta: Optional[dict] = None
    ) -> None:
        """Commit the final epoch, append derived data edges, and flush.

        Args:
            cpg: The finalized graph; its data edges (derived after the run)
                are appended as edge-only segments grouped by the segment of
                their target node.
            run_meta: Additional run metadata merged into the manifest entry.
        """
        if self._finished:
            return
        run_id = self._ensure_run()
        self.commit_epoch()
        if cpg is not None:
            indexes = self.store.indexes_for(run_id)
            by_segment: Dict[int, List[EdgeTuple]] = defaultdict(list)
            for source, target, attrs in cpg.edges(EdgeKind.DATA):
                segment_id = indexes.segment_of(target)
                by_segment[segment_id].append(
                    (source, target, EdgeKind.DATA, {"pages": attrs.get("pages", frozenset())})
                )
            for segment_id in sorted(by_segment):
                self.store.append_segment([], by_segment[segment_id], run=run_id)
        run_info = self.store.manifest.run_info(run_id)
        if run_meta is not None:
            run_info.meta.update(run_meta)
            if "workload" in run_meta and not run_info.workload:
                run_info.workload = str(run_meta["workload"])
        run_info.meta.setdefault("epochs", self.epochs_committed)
        run_info.status = RUN_COMPLETE
        # Run completion is a checkpoint: the manifest alone then names
        # every segment of the finished run (no replay needed to read it).
        self.store.flush(checkpoint=True)
        self._finished = True


class RemoteStoreSink:
    """Streams a run into a **writable store server** over TCP.

    Same listener protocol as :class:`StoreSink` (``attach`` /
    ``subcomputation_published`` / ``finish``), but the destination is a
    :class:`~repro.store.server.StoreClient` instead of a local store
    handle -- the traced process never touches the store directory.

    Args:
        client: A ``StoreClient`` pointed at a writable server, or a
            ``host:port`` / ``store://host:port`` URL string.
        segment_nodes: Epoch length -- sub-computations per shipped segment.
        workload: Workload name recorded with the minted run.
        run_meta: Initial run metadata sent with ``begin_run``.
        codec: Codec name epochs are encoded with on the wire (and stored
            with server-side); ``None`` uses the defaults on both ends.
    """

    def __init__(
        self,
        client: Union["StoreClient", str],
        segment_nodes: int = DEFAULT_SEGMENT_NODES,
        workload: str = "",
        run_meta: Optional[dict] = None,
        codec: Optional[str] = None,
    ) -> None:
        from repro.store.server import StoreClient  # cycle: server imports store

        if segment_nodes <= 0:
            raise ValueError(f"segment_nodes must be positive, got {segment_nodes}")
        self.client = StoreClient.from_url(client) if isinstance(client, str) else client
        self.segment_nodes = segment_nodes
        self.workload = workload
        self.run_meta = dict(run_meta or {})
        self.codec = codec
        self.epochs_committed = 0
        self.run_id: Optional[int] = None
        self._nodes: List[SubComputation] = []
        self._edges: List[EdgeTuple] = []
        #: Which shipped segment holds each published node -- what lets
        #: ``finish`` group the derived data edges by their target's
        #: segment exactly like the local sink does.
        self._segment_of: Dict[NodeId, int] = {}
        self._finished = False

    def attach(self, tracker) -> None:
        """Subscribe to ``tracker`` and mint the remote run up front."""
        self._ensure_run()
        tracker.add_listener(self)

    def _ensure_run(self) -> int:
        if self.run_id is None:
            self.run_id = self.client.begin_run(workload=self.workload, meta=self.run_meta)
        return self.run_id

    # Called by the tracker (listener protocol).
    def subcomputation_published(self, node: SubComputation, edges: List[EdgeTuple]) -> None:
        """Buffer one published sub-computation and its recorded edges."""
        self._nodes.append(node)
        self._edges.extend(edges)
        if len(self._nodes) >= self.segment_nodes:
            self.commit_epoch()

    def commit_epoch(self) -> Optional[int]:
        """Ship the current buffer as one epoch; returns its segment id.

        Synchronous: returns only once the server flushed the epoch
        durably, so the traced run can never get more than one buffered
        epoch ahead of the store.
        """
        if not self._nodes and not self._edges:
            return None
        run_id = self._ensure_run()
        reply = self.client.append_epoch(run_id, self._nodes, self._edges, codec=self.codec)
        segment_id = int(reply["segment"])
        for node in self._nodes:
            self._segment_of[node.node_id] = segment_id
        self._nodes = []
        self._edges = []
        self.epochs_committed += 1
        return segment_id

    def finish(
        self, cpg: Optional[ConcurrentProvenanceGraph] = None, run_meta: Optional[dict] = None
    ) -> None:
        """Ship the final epoch and derived data edges, then commit the run.

        Mirrors :meth:`StoreSink.finish`: the finalized graph's data edges
        go out as edge-only epochs grouped by the segment of their target
        node (tracked client-side from the ``append_epoch`` replies), and
        ``commit_run`` marks the run complete -- the server checkpoints.
        """
        if self._finished:
            return
        run_id = self._ensure_run()
        self.commit_epoch()
        if cpg is not None:
            by_segment: Dict[int, List[EdgeTuple]] = defaultdict(list)
            for source, target, attrs in cpg.edges(EdgeKind.DATA):
                segment_id = self._segment_of.get(target, self._segment_of.get(source, -1))
                by_segment[segment_id].append(
                    (source, target, EdgeKind.DATA, {"pages": attrs.get("pages", frozenset())})
                )
            for segment_id in sorted(by_segment):
                self.client.append_epoch(run_id, [], by_segment[segment_id], codec=self.codec)
        meta = dict(run_meta or {})
        meta.setdefault("epochs", self.epochs_committed)
        self.client.commit_run(run_id, meta=meta)
        self._finished = True

"""Policy-driven store maintenance: the autopilot daemon.

A store that ingests a fleet of runs accumulates operational debt --
fragmented segments and pending index deltas from streamed epochs,
superseded runs eating disk, quarantined segments waiting for a scrub to
re-verify them.  The autopilot turns the manual ``compact``/``gc``/
``scrub`` maintenance surface into a declarative loop:

* :class:`AutopilotPolicy` states the thresholds (fragmentation, pending
  index deltas, run-count and byte budgets, scrub cadence, quarantine
  response) plus the safety rails (protected runs, dry-run mode);
* :class:`Autopilot` inspects the store (:meth:`Autopilot.plan` is pure
  -- it only reads manifest state) and executes the resulting
  :class:`Decision` list under a caller-supplied lock, recording every
  action in a structured decision log;
* :class:`AutopilotDaemon` runs that cycle on an interval until stopped.

Warm readers are part of the contract, not an afterthought: actions only
ever touch runs whose status is complete, runs a persisted baseline
blesses (see :mod:`repro.store.gate`) or the policy protects are never
garbage-collected, and maintenance work performed inside a
:class:`~repro.store.server.StoreServer` (the ``serve --maintenance``
flag) serializes with remote ingest through the server's write lock and
refreshes the served snapshot after every mutation, so follow-mode
readers move forward instead of faulting on rewritten files.

``python -m repro.store autopilot`` drives the same loop from the
command line; ``--dry-run`` prints what would happen without mutating
anything.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.errors import StoreError

from repro.store.format import DEFAULT_SEGMENT_NODES, RUN_COMPLETE
from repro.store.integrity import scrub
from repro.store.store import ProvenanceStore

#: Actions the autopilot knows how to take, in the order one cycle
#: considers them (compact first -- it shrinks what gc and scrub scan).
ACTIONS = ("compact", "gc", "scrub")


@dataclass
class AutopilotPolicy:
    """Declarative maintenance thresholds (``None`` disables a trigger).

    Attributes:
        compact_min_delta_files: Compact a run once this many index delta
            files are pending (streamed flushes append one per epoch).
        compact_fragmentation: Compact a run whose segment count exceeds
            this multiple of its ideal count (``ceil(nodes /
            segment_nodes)``) -- the fragmentation streamed epochs and
            edge-only tail segments leave behind.
        segment_nodes: The ideal-segment yardstick (and the size compact
            rewrites to).
        gc_keep_last: Drop completed runs beyond the most recent N.
            Quarantined-only and protected runs never consume keep slots
            and are never dropped.
        gc_max_store_bytes: Drop oldest completed runs until the stored
            segment bytes fit the budget.
        scrub_interval_s: Deep-scrub cadence; ``None`` scrubs only in
            response to quarantine.
        scrub_on_quarantine: Scrub whenever quarantined segments exist
            (a clean re-verify lifts the mark after an in-place repair).
        protect_runs: Run ids gc must never touch.
        protect_baselines: Also protect every run a persisted baseline
            blesses (:func:`repro.store.gate.baseline_runs`).
        dry_run: Plan and log decisions without executing anything.
    """

    compact_min_delta_files: Optional[int] = 8
    compact_fragmentation: Optional[float] = 2.0
    segment_nodes: int = DEFAULT_SEGMENT_NODES
    gc_keep_last: Optional[int] = None
    gc_max_store_bytes: Optional[int] = None
    scrub_interval_s: Optional[float] = None
    scrub_on_quarantine: bool = True
    protect_runs: Tuple[int, ...] = ()
    protect_baselines: bool = True
    dry_run: bool = False

    def __post_init__(self) -> None:
        if self.compact_min_delta_files is not None and self.compact_min_delta_files < 1:
            raise StoreError("compact_min_delta_files must be >= 1 (or None)")
        if self.compact_fragmentation is not None and self.compact_fragmentation < 1.0:
            raise StoreError("compact_fragmentation must be >= 1.0 (or None)")
        if self.segment_nodes < 1:
            raise StoreError("segment_nodes must be >= 1")
        if self.gc_keep_last is not None and self.gc_keep_last < 0:
            raise StoreError("gc_keep_last must be >= 0 (or None)")
        if self.gc_max_store_bytes is not None and self.gc_max_store_bytes < 0:
            raise StoreError("gc_max_store_bytes must be >= 0 (or None)")
        if self.scrub_interval_s is not None and self.scrub_interval_s <= 0:
            raise StoreError("scrub_interval_s must be positive (or None)")
        self.protect_runs = tuple(int(run) for run in self.protect_runs)

    def to_dict(self) -> dict:
        return {
            "compact_min_delta_files": self.compact_min_delta_files,
            "compact_fragmentation": self.compact_fragmentation,
            "segment_nodes": self.segment_nodes,
            "gc_keep_last": self.gc_keep_last,
            "gc_max_store_bytes": self.gc_max_store_bytes,
            "scrub_interval_s": self.scrub_interval_s,
            "scrub_on_quarantine": self.scrub_on_quarantine,
            "protect_runs": list(self.protect_runs),
            "protect_baselines": self.protect_baselines,
            "dry_run": self.dry_run,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AutopilotPolicy":
        known = {
            "compact_min_delta_files",
            "compact_fragmentation",
            "segment_nodes",
            "gc_keep_last",
            "gc_max_store_bytes",
            "scrub_interval_s",
            "scrub_on_quarantine",
            "protect_runs",
            "protect_baselines",
            "dry_run",
        }
        unknown = set(data) - known
        if unknown:
            raise StoreError(
                f"unknown autopilot policy key(s): {', '.join(sorted(unknown))}"
            )
        return cls(**data)


@dataclass
class Decision:
    """One planned (and possibly executed) maintenance action."""

    action: str
    reason: str
    params: dict = field(default_factory=dict)
    run: Optional[int] = None
    dry_run: bool = False
    executed: bool = False
    result: Optional[dict] = None
    error: Optional[str] = None
    at: str = ""

    def to_dict(self) -> dict:
        return {
            "action": self.action,
            "reason": self.reason,
            "params": self.params,
            "run": self.run,
            "dry_run": self.dry_run,
            "executed": self.executed,
            "result": self.result,
            "error": self.error,
            "at": self.at,
        }


class Autopilot:
    """Plans and executes maintenance for one store handle.

    Args:
        store: A writable store handle the autopilot owns maintenance of
            (callers keep ownership: the autopilot never closes it).
        policy: The thresholds; defaults to :class:`AutopilotPolicy`'s
            conservative defaults (compact-only).
        lock: Mutex every executed action is taken under.  A server
            passes its write lock here so maintenance serializes with
            remote ingest; standalone use gets a private lock.
        after_action: Called with each executed :class:`Decision` (the
            server hook: refresh the served snapshot).
        log_path: Optional JSONL file every decision is appended to --
            the durable half of the decision log.
        clock: Monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        store: ProvenanceStore,
        policy: Optional[AutopilotPolicy] = None,
        lock: Optional[threading.Lock] = None,
        after_action: Optional[Callable[[Decision], None]] = None,
        log_path: Optional[str] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.store = store
        self.policy = policy if policy is not None else AutopilotPolicy()
        self._lock = lock if lock is not None else threading.Lock()
        self._after_action = after_action
        self._log_path = log_path
        self._clock = clock
        self._log: List[Decision] = []
        self._log_lock = threading.Lock()
        self._last_scrub: Optional[float] = None
        self.cycles = 0

    # ------------------------------------------------------------------ #
    # Planning (pure: reads manifest state, mutates nothing)
    # ------------------------------------------------------------------ #

    def _protected_runs(self) -> set:
        protected = set(self.policy.protect_runs)
        if self.policy.protect_baselines:
            from repro.store.gate import baseline_runs  # cycle: gate imports store

            protected |= baseline_runs(self.store)
        return protected

    def _run_fragmented(self, run_id: int) -> Optional[str]:
        """A reason string when the run needs compaction, else ``None``."""
        policy = self.policy
        run_info = self.store.manifest.run_info(run_id)
        if (
            policy.compact_min_delta_files is not None
            and len(run_info.index_deltas) >= policy.compact_min_delta_files
        ):
            return (
                f"{len(run_info.index_deltas)} pending index delta file(s) "
                f">= {policy.compact_min_delta_files}"
            )
        if policy.compact_fragmentation is not None:
            segments = len(self.store.manifest.segments_of_run(run_id))
            ideal = max(1, -(-run_info.nodes // policy.segment_nodes))
            if segments > ideal and segments >= policy.compact_fragmentation * ideal:
                return (
                    f"{segments} segment(s) vs {ideal} ideal "
                    f"(>= {policy.compact_fragmentation}x fragmented)"
                )
        return None

    def _gc_victims(self, protected: set) -> Tuple[List[int], List[str]]:
        """Completed, unprotected runs the byte/count budgets condemn."""
        policy = self.policy
        manifest = self.store.manifest
        eligible = []
        for run_id in self.store.run_ids():
            if run_id in protected:
                continue
            if manifest.run_info(run_id).status != RUN_COMPLETE:
                continue
            infos = manifest.segments_of_run(run_id)
            if infos and all(manifest.is_quarantined(info.segment_id) for info in infos):
                continue  # damage awaiting repair, not superseded data
            eligible.append(run_id)
        victims: List[int] = []
        reasons: List[str] = []
        if policy.gc_keep_last is not None and len(eligible) > policy.gc_keep_last:
            over = eligible[: len(eligible) - policy.gc_keep_last]
            victims.extend(over)
            reasons.append(
                f"{len(eligible)} eligible run(s) > keep_last={policy.gc_keep_last}"
            )
        if policy.gc_max_store_bytes is not None:
            stored = {
                info.run: 0 for info in manifest.segments
            }  # bytes per run, oldest-first drop order below
            for info in manifest.segments:
                stored[info.run] += info.stored_bytes
            total = sum(stored.values())
            if total > policy.gc_max_store_bytes:
                projected = total - sum(stored.get(run, 0) for run in victims)
                for run_id in eligible:
                    if projected <= policy.gc_max_store_bytes:
                        break
                    if run_id in victims:
                        continue
                    victims.append(run_id)
                    projected -= stored.get(run_id, 0)
                reasons.append(
                    f"{total} stored byte(s) > budget {policy.gc_max_store_bytes}"
                )
        return sorted(set(victims)), reasons

    def plan(self) -> List[Decision]:
        """Decide what this cycle would do.  Reads state; mutates nothing."""
        policy = self.policy
        manifest = self.store.manifest
        protected = self._protected_runs()
        decisions: List[Decision] = []
        for run_id in self.store.run_ids():
            run_info = manifest.run_info(run_id)
            if run_info.status != RUN_COMPLETE:
                continue  # never rewrite under an active ingest
            infos = manifest.segments_of_run(run_id)
            if any(manifest.is_quarantined(info.segment_id) for info in infos):
                continue  # damaged runs are scrub's business, not compact's
            reason = self._run_fragmented(run_id)
            if reason is not None:
                decisions.append(
                    Decision(
                        action="compact",
                        run=run_id,
                        reason=f"run {run_id}: {reason}",
                        params={"run": run_id, "segment_nodes": policy.segment_nodes},
                    )
                )
        victims, reasons = self._gc_victims(protected)
        if victims:
            decisions.append(
                Decision(
                    action="gc",
                    reason="; ".join(reasons),
                    params={"runs": victims},
                )
            )
        quarantined = sorted(manifest.quarantined)
        now = self._clock()
        scrub_reason = None
        if policy.scrub_on_quarantine and quarantined:
            scrub_reason = f"{len(quarantined)} quarantined segment(s): {quarantined}"
        elif policy.scrub_interval_s is not None and (
            self._last_scrub is None or now - self._last_scrub >= policy.scrub_interval_s
        ):
            scrub_reason = (
                "scrub interval elapsed"
                if self._last_scrub is not None
                else "no scrub performed yet"
            )
        if scrub_reason is not None:
            decisions.append(Decision(action="scrub", reason=scrub_reason, params={}))
        return decisions

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def _execute(self, decision: Decision) -> None:
        with self._lock:
            if decision.action == "compact":
                stats = self.store.compact(
                    run=decision.params["run"],
                    segment_nodes=decision.params["segment_nodes"],
                )
                decision.result = stats.to_dict()
            elif decision.action == "gc":
                stats = self.store.gc(runs=decision.params["runs"])
                decision.result = stats.to_dict()
            elif decision.action == "scrub":
                report = scrub(self.store)
                self._last_scrub = self._clock()
                decision.result = {
                    "ok": report["ok"],
                    "files_scanned": report["files_scanned"],
                    "bytes_verified": report["bytes_verified"],
                    "quarantined": report["quarantined"],
                    "unquarantined": report["unquarantined"],
                }
            else:  # pragma: no cover - plan() only emits known actions
                raise StoreError(f"unknown autopilot action {decision.action!r}")
        decision.executed = True

    def _record(self, decision: Decision) -> None:
        decision.at = time.strftime("%Y-%m-%dT%H:%M:%S")
        with self._log_lock:
            self._log.append(decision)
        if self._log_path is not None:
            line = json.dumps(decision.to_dict(), sort_keys=True)
            with self._log_lock:
                with open(self._log_path, "a", encoding="utf-8") as handle:
                    handle.write(line + "\n")

    def run_once(self) -> List[Decision]:
        """One maintenance cycle: plan, execute (unless dry-run), log."""
        decisions = self.plan()
        for decision in decisions:
            decision.dry_run = self.policy.dry_run
            if not self.policy.dry_run:
                try:
                    self._execute(decision)
                except (StoreError, OSError) as exc:
                    # A failed action must not kill the daemon: the store
                    # is crash-consistent, the next cycle retries.
                    decision.error = str(exc)
            self._record(decision)
            if decision.executed and self._after_action is not None:
                self._after_action(decision)
        self.cycles += 1
        return decisions

    @property
    def decisions(self) -> List[Decision]:
        """Snapshot of the in-memory decision log, oldest first."""
        with self._log_lock:
            return list(self._log)

    def decisions_dict(self) -> List[dict]:
        return [decision.to_dict() for decision in self.decisions]


class AutopilotDaemon:
    """Runs :meth:`Autopilot.run_once` every ``interval_s`` until stopped."""

    def __init__(self, autopilot: Autopilot, interval_s: float = 5.0) -> None:
        if interval_s <= 0:
            raise StoreError(f"interval_s must be positive, got {interval_s}")
        self.autopilot = autopilot
        self.interval_s = interval_s
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "AutopilotDaemon":
        if self._thread is None:
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._loop, name="store-autopilot", daemon=True
            )
            self._thread.start()
        return self

    def _loop(self) -> None:
        while not self._stop.is_set():
            self.autopilot.run_once()
            # Event-based pacing: stop() wakes the loop immediately
            # instead of letting it sleep out the rest of the interval.
            self._stop.wait(self.interval_s)

    def stop(self, timeout: float = 30.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None

    def __enter__(self) -> "AutopilotDaemon":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()

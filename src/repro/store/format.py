"""On-disk layout of the persistent provenance store.

A store is a directory (format version 6)::

    <store>/
        MANIFEST.json                   # periodic checkpoint: run table, segment table
        segments.log                    # append-only per-flush commit records
        segments/seg-<id>.seg           # immutable segments (codec per segment)
        index/pages_runs.json           # cross-run summary: page -> run ids
        index/run-<id>/base-<gen>.bin   # folded secondary indexes of the run
        index/run-<id>/delta-<gen>.bin  # append-only per-flush index deltas

One store holds **many traced runs**.  Every run gets a :class:`RunInfo`
entry in the manifest (minted at ingest, carrying workload name, config and
wall-clock metadata), every segment belongs to exactly one run, and every
run owns its own index directory -- node ids ``(tid, index)`` are only
unique *within* a run, so the run id is the namespace that lets two
executions of the same program coexist.

Segments are immutable once written; ingestion appends new segments, one
small *index delta* file per flush, and -- since format 5 -- one framed
commit record to the append-only **segment log** (``segments.log``, see
:mod:`repro.store.log`), so the per-flush cost is O(epoch) instead of the
O(#segments) whole-manifest rewrite format 4 paid.  The manifest is
demoted to a periodic *checkpoint*: it carries ``log_seq``, the sequence
number of the last log record folded into it, and opening a store replays
the committed log tail (records with a higher sequence number) on top of
the checkpoint.  A torn tail record -- the crash window of an append --
is detected by the log's framing and simply truncated.
Maintenance rewrites are run-scoped:
:meth:`~repro.store.store.ProvenanceStore.compact` replaces a run's
segments with fewer, denser ones (streaming, segment by segment) and folds
its index deltas into a fresh base file;
:meth:`~repro.store.store.ProvenanceStore.gc` drops whole runs.  Both
commit through the manifest (temp file + atomic rename) before any old
file is deleted, so a crash at any point leaves a consistent store.
Segment ids and index generations are minted from monotonic counters and
never reused, which is what makes "the manifest is the commit point"
recovery sound.

Segment payloads are produced by a pluggable codec
(:mod:`repro.store.codecs`): ``"json"`` is the lz-compressed v2 CPG
serialization every store version up to 3 wrote; ``"binary"`` is the
columnar struct-packed encoding v4/v5 writes defaulted to; ``"binary-z"``
(format 6) is the same columnar payload zlib-compressed inside the frame
-- the new default, winning the disk back without giving up C-speed,
GIL-releasing decode.  The manifest records each segment's codec, so
mixed stores decode correctly.  Older layouts remain readable: a
version-2 store (one implicit run, flat ``index/*.json``) is mapped to a
single run with id 1 on open, and a version-3 store (per-run
``index/run-<id>/*.json`` rewritten wholesale per flush) loads its JSON
indexes as each run's starting point.  A version-4 store opens unchanged
(its manifest simply has no ``log_seq`` and no ``segments.log`` exists),
and a version-5 store differs from 6 only in its default codec, so it
opens -- segment log replayed and all -- without rewriting a byte.  Any
older layout is upgraded to the version-6 layout in place by its first
flush, which always writes a checkpoint.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import StoreError

#: Version of the store directory layout (6 = compressed columnar
#: ``binary-z`` default codec; layout otherwise identical to 5).
STORE_FORMAT_VERSION = 6

#: The PR-6 layout (append-only segment log; the manifest is a periodic
#: checkpoint).  Identical to 6 on disk except for the default codec, so
#: log replay applies to both.
STORE_FORMAT_VERSION_V5 = 5

#: The PR-3 layout (codecs + index deltas, whole-manifest rewrite per flush).
STORE_FORMAT_VERSION_V4 = 4

#: The PR-2 multi-run layout (whole-index JSON rewrites per flush).
STORE_FORMAT_VERSION_V3 = 3

#: The PR-1 single-run layout; still readable, mapped to one run on open.
STORE_FORMAT_VERSION_V2 = 2

#: Every manifest version :meth:`StoreManifest.from_dict` understands.
SUPPORTED_STORE_VERSIONS = (
    STORE_FORMAT_VERSION_V2,
    STORE_FORMAT_VERSION_V3,
    STORE_FORMAT_VERSION_V4,
    STORE_FORMAT_VERSION_V5,
    STORE_FORMAT_VERSION,
)

#: Identifies a manifest as belonging to this subsystem.
STORE_KIND = "inspector-provenance-store"

MANIFEST_NAME = "MANIFEST.json"
SEGMENTS_DIR = "segments"
INDEX_DIR = "index"

#: The append-only segment log (format 5): one framed commit record per
#: flush, replayed on top of the manifest checkpoint at open.
SEGMENT_LOG_NAME = "segments.log"

#: How many log records accumulate before a flush folds them into a fresh
#: manifest checkpoint (and resets the log).  Bounds both replay work at
#: open and the log's disk footprint; maintenance and run completion
#: checkpoint eagerly regardless.
DEFAULT_CHECKPOINT_INTERVAL = 64

#: Cross-run page summary (page -> run ids that touched it), inside
#: :data:`INDEX_DIR`; lets ``*_across_runs`` queries skip runs without
#: opening their per-run indexes.
PAGES_RUNS_FILE = "pages_runs.json"

#: Common prefix of every segment frame; the byte that follows identifies
#: the payload codec (see :mod:`repro.store.codecs`).
SEGMENT_MAGIC_PREFIX = b"ISEG"

#: The full frame magic of a JSON-codec segment (every pre-v4 segment);
#: kept for back-compat with callers that framed segments by hand.
SEGMENT_MAGIC = SEGMENT_MAGIC_PREFIX + b"\x02"

#: The codec every pre-v4 segment was written with (manifest entries
#: without a ``codec`` column decode as this).
LEGACY_SEGMENT_CODEC = "json"

#: Number of sub-computations per segment unless the caller overrides it;
#: also the epoch length of the incremental ingest sink.
DEFAULT_SEGMENT_NODES = 64

#: The run id a version-2 (single-run) store is mapped to on open.
LEGACY_RUN_ID = 1


def segment_file_name(segment_id: int) -> str:
    """File name of segment ``segment_id`` inside :data:`SEGMENTS_DIR`."""
    return f"seg-{segment_id:08d}.seg"


def run_index_dir_name(run_id: int) -> str:
    """Directory name of run ``run_id``'s indexes inside :data:`INDEX_DIR`."""
    return f"run-{run_id:08d}"


def index_base_file_name(generation: int) -> str:
    """File name of a run's folded index base at ``generation``."""
    return f"base-{generation:08d}.bin"


def index_delta_file_name(generation: int) -> str:
    """File name of one append-only index delta at ``generation``."""
    return f"delta-{generation:08d}.bin"


def file_size_crc(path: str) -> List[int]:
    """``[size, CRC32]`` of the file at ``path``, streamed in 1 MiB chunks.

    The pair is what the manifest records per store file and what fsck,
    scrub, and replica repair compare against.  I/O errors propagate as
    :class:`OSError` -- the caller decides whether an unreadable file is
    damage (scrub) or a bad request (repair).
    """
    size = 0
    crc = 0
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(1 << 20)
            if not chunk:
                break
            size += len(chunk)
            crc = zlib.crc32(chunk, crc)
    return [size, crc & 0xFFFFFFFF]


@dataclass
class SegmentInfo:
    """Manifest entry describing one sealed segment.

    Attributes:
        segment_id: Id minted from ``StoreManifest.next_segment_id``; also
            determines the file name.  Ids are never reused, even after the
            segment is compacted or garbage-collected away.
        run: Id of the run the segment belongs to.
        nodes: Number of sub-computations stored in the segment.
        edges: Number of edges stored in the segment.
        raw_bytes: Size of the uncompressed payload.
        stored_bytes: Size of the segment file on disk (frame + body).
        codec: Name of the payload codec the segment was encoded with
            (pre-v4 manifest entries default to :data:`LEGACY_SEGMENT_CODEC`).
        crc: CRC32 of the segment *file* (frame header included), recorded
            at append/compact time so fsck, scrub, and replica repair can
            diff files without decoding them.  ``None`` for segments
            written before the integrity layer (reported ``unverified``).
    """

    segment_id: int
    run: int
    nodes: int
    edges: int
    raw_bytes: int
    stored_bytes: int
    codec: str = LEGACY_SEGMENT_CODEC
    crc: Optional[int] = None

    @property
    def file_name(self) -> str:
        """The segment's file name."""
        return segment_file_name(self.segment_id)

    def to_dict(self) -> dict:
        entry = {
            "id": self.segment_id,
            "run": self.run,
            "nodes": self.nodes,
            "edges": self.edges,
            "raw_bytes": self.raw_bytes,
            "stored_bytes": self.stored_bytes,
            "codec": self.codec,
        }
        if self.crc is not None:
            entry["crc"] = self.crc
        return entry

    @classmethod
    def from_dict(cls, data: dict, default_run: int = LEGACY_RUN_ID) -> "SegmentInfo":
        missing = [key for key in ("id", "nodes", "edges") if key not in data]
        if missing:
            raise StoreError(f"segment entry is missing field(s) {missing}: {data!r}")
        crc = data.get("crc")
        return cls(
            segment_id=int(data["id"]),
            run=int(data.get("run", default_run)),
            nodes=int(data["nodes"]),
            edges=int(data["edges"]),
            raw_bytes=int(data.get("raw_bytes", 0)),
            stored_bytes=int(data.get("stored_bytes", 0)),
            codec=str(data.get("codec", LEGACY_SEGMENT_CODEC)),
            crc=int(crc) if crc is not None else None,
        )


#: A run whose ingest is still streaming (or died mid-stream); readable up
#: to its last committed epoch.
RUN_RUNNING = "running"

#: A run whose ingest finished cleanly.
RUN_COMPLETE = "complete"


@dataclass
class RunInfo:
    """Manifest entry describing one traced run (the node-id namespace).

    Attributes:
        run_id: Id minted from ``StoreManifest.next_run_id``; never reused.
        workload: Name of the workload that produced the run.
        status: :data:`RUN_RUNNING` while streaming, :data:`RUN_COMPLETE`
            once the ingest finished.
        created_at: Wall-clock timestamp (ISO 8601) supplied by the ingest
            path, or whatever the caller passed as run metadata.
        nodes: Sub-computations ingested for the run so far.
        edges: Edges ingested for the run so far.
        next_topo: Next topological rank to hand out within the run; ranks
            are assigned in ingest order, which every ingest path keeps a
            linear extension of the run's happens-before order.
        index_base: Generation of the run's folded index base file
            (``base-<gen>.bin``); 0 while no base has been written.
        index_deltas: Generations of the append-only index delta files
            pending on top of the base, in flush order.
        next_index_gen: Next index generation to mint (monotonic, never
            reused -- the same recovery argument as segment ids).
        index_checksums: ``(size, crc)`` per index file of the run, keyed
            by file name (``base-<gen>.bin`` / ``delta-<gen>.bin``),
            recorded when the file is written.  Files written before the
            integrity layer have no entry and verify as ``unverified``.
        meta: Free-form run metadata (thread count, config, input size...).
    """

    run_id: int
    workload: str = ""
    status: str = RUN_RUNNING
    created_at: str = ""
    nodes: int = 0
    edges: int = 0
    next_topo: int = 0
    index_base: int = 0
    index_deltas: List[int] = field(default_factory=list)
    next_index_gen: int = 1
    index_checksums: Dict[str, List[int]] = field(default_factory=dict)
    meta: Dict[str, object] = field(default_factory=dict)

    def record_index_checksum(self, file_name: str, size: int, crc: int) -> None:
        """Remember ``(size, crc)`` of one just-written index file."""
        self.index_checksums[file_name] = [int(size), int(crc)]

    def prune_index_checksums(self) -> None:
        """Drop checksum entries for files the run no longer references."""
        live = {index_base_file_name(self.index_base)} if self.index_base else set()
        live.update(index_delta_file_name(gen) for gen in self.index_deltas)
        self.index_checksums = {
            name: pair for name, pair in self.index_checksums.items() if name in live
        }

    def to_dict(self) -> dict:
        entry = {
            "id": self.run_id,
            "workload": self.workload,
            "status": self.status,
            "created_at": self.created_at,
            "nodes": self.nodes,
            "edges": self.edges,
            "next_topo": self.next_topo,
            "index_base": self.index_base,
            "index_deltas": list(self.index_deltas),
            "next_index_gen": self.next_index_gen,
            "meta": dict(self.meta),
        }
        if self.index_checksums:
            entry["index_checksums"] = {
                name: list(pair) for name, pair in self.index_checksums.items()
            }
        return entry

    @classmethod
    def from_dict(cls, data: dict) -> "RunInfo":
        if "id" not in data:
            raise StoreError(f"run entry is missing its id: {data!r}")
        return cls(
            run_id=int(data["id"]),
            workload=str(data.get("workload", "")),
            status=str(data.get("status", RUN_COMPLETE)),
            created_at=str(data.get("created_at", "")),
            nodes=int(data.get("nodes", 0)),
            edges=int(data.get("edges", 0)),
            next_topo=int(data.get("next_topo", 0)),
            index_base=int(data.get("index_base", 0)),
            index_deltas=[int(gen) for gen in data.get("index_deltas", ())],
            next_index_gen=int(data.get("next_index_gen", 1)),
            index_checksums={
                str(name): [int(pair[0]), int(pair[1])]
                for name, pair in dict(data.get("index_checksums", {})).items()
            },
            meta=dict(data.get("meta", {})),
        )


@dataclass
class StoreManifest:
    """The store's root metadata document (``MANIFEST.json``).

    Up to format 4 the manifest was the store's sole *commit point*:
    segment and index files are written first, the manifest last (each
    through a temp-file + atomic rename), so whatever generation the
    manifest describes is the store's content.  Format 5 splits that role:
    ordinary flushes commit through an appended segment-log record and the
    manifest becomes a periodic **checkpoint** of the replayed state --
    still the commit point for maintenance rewrites (compact/gc), which
    always write one.  Either way, files neither the checkpoint nor the
    committed log tail reference are ignored on open and swept by the next
    maintenance operation.

    Attributes:
        version: Store format version the manifest was **loaded** as (2,
            3, 4, or 5); writing always emits version 5.
        segments: Sealed segments in append order (per run this is
            topological order).
        runs: One entry per ingested run, in mint order.
        next_segment_id: Next segment id to mint (monotonic, never reused).
        next_run_id: Next run id to mint (monotonic, never reused).
        node_count: Total sub-computations across every run.
        edge_count: Total edges across every run.
        log_seq: Sequence number of the last segment-log record folded
            into this checkpoint (format 5); records with a higher
            sequence number are replayed on open, lower ones skipped.
        quarantined: Segments known to be damaged, id -> reason.  A
            quarantined segment's entry stays in :attr:`segments` (its id
            and accounting are still real); queries skip it and report a
            degraded answer instead of decoding garbage.  Repairing the
            file (anti-entropy from a replica) clears the mark.
        pages_runs_checksum: ``[size, crc]`` of the cross-run page summary
            (``index/pages_runs.json``) as of its last write; ``None``
            until the integrity layer first writes it.
        meta: Free-form store metadata supplied at creation time.
    """

    version: int = STORE_FORMAT_VERSION
    segments: List[SegmentInfo] = field(default_factory=list)
    runs: List[RunInfo] = field(default_factory=list)
    next_segment_id: int = 1
    next_run_id: int = 1
    node_count: int = 0
    edge_count: int = 0
    log_seq: int = 0
    quarantined: Dict[int, str] = field(default_factory=dict)
    pages_runs_checksum: Optional[List[int]] = None
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def segment_count(self) -> int:
        """Number of sealed segments."""
        return len(self.segments)

    def segment_info(self, segment_id: int) -> SegmentInfo:
        """Manifest entry of ``segment_id``."""
        for segment in self.segments:
            if segment.segment_id == segment_id:
                return segment
        raise StoreError(f"no segment {segment_id} (store has {len(self.segments)})")

    def segment_ids(self) -> List[int]:
        """Every referenced segment id, in append order."""
        return [segment.segment_id for segment in self.segments]

    def segments_of_run(self, run_id: int) -> List[SegmentInfo]:
        """The run's segments, in append (= per-run topological) order."""
        return [segment for segment in self.segments if segment.run == run_id]

    def run_ids(self) -> List[int]:
        """Every run id, in mint order."""
        return [run.run_id for run in self.runs]

    def run_info(self, run_id: int) -> RunInfo:
        """Manifest entry of run ``run_id``."""
        for run in self.runs:
            if run.run_id == run_id:
                return run
        known = self.run_ids()
        raise StoreError(f"no run {run_id} in the store (runs: {known or 'none'})")

    def mint_run(self, workload: str = "", created_at: str = "", meta: Optional[dict] = None) -> RunInfo:
        """Append a fresh :class:`RunInfo` and return it."""
        run = RunInfo(
            run_id=self.next_run_id,
            workload=workload,
            created_at=created_at,
            meta=dict(meta or {}),
        )
        self.next_run_id += 1
        self.runs.append(run)
        return run

    def remove_run(self, run_id: int) -> List[SegmentInfo]:
        """Drop a run and its segment entries; returns the dropped segments."""
        run = self.run_info(run_id)
        dropped = self.segments_of_run(run_id)
        self.runs = [entry for entry in self.runs if entry.run_id != run_id]
        self.segments = [segment for segment in self.segments if segment.run != run_id]
        self.node_count -= run.nodes
        self.edge_count -= run.edges
        for segment in dropped:
            self.quarantined.pop(segment.segment_id, None)
        return dropped

    # -------------------------------------------------------------- #
    # Quarantine
    # -------------------------------------------------------------- #

    def quarantine(self, segment_id: int, reason: str) -> None:
        """Mark a segment damaged (must be a known segment id)."""
        self.segment_info(segment_id)  # raises for unknown ids
        self.quarantined[int(segment_id)] = str(reason)

    def clear_quarantine(self, segment_id: int) -> bool:
        """Unmark a repaired segment; returns whether it was marked."""
        return self.quarantined.pop(int(segment_id), None) is not None

    def is_quarantined(self, segment_id: int) -> bool:
        """Whether ``segment_id`` is currently quarantined."""
        return int(segment_id) in self.quarantined

    def to_dict(self) -> dict:
        data = {
            "kind": STORE_KIND,
            "version": STORE_FORMAT_VERSION,
            "segments": [segment.to_dict() for segment in self.segments],
            "runs": [run.to_dict() for run in self.runs],
            "next_segment_id": self.next_segment_id,
            "next_run_id": self.next_run_id,
            "node_count": self.node_count,
            "edge_count": self.edge_count,
            "log_seq": self.log_seq,
            "meta": dict(self.meta),
        }
        if self.quarantined:
            data["quarantined"] = {
                str(segment_id): reason for segment_id, reason in self.quarantined.items()
            }
        if self.pages_runs_checksum is not None:
            data["pages_runs_checksum"] = list(self.pages_runs_checksum)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "StoreManifest":
        if not isinstance(data, dict) or data.get("kind") != STORE_KIND:
            raise StoreError(f"not a provenance-store manifest: {data!r}")
        version = data.get("version")
        if version not in SUPPORTED_STORE_VERSIONS:
            supported = ", ".join(str(v) for v in SUPPORTED_STORE_VERSIONS)
            raise StoreError(
                f"unsupported store format version {version!r} "
                f"(this build reads versions {supported})"
            )
        manifest = cls(version=int(version))
        manifest.segments = [SegmentInfo.from_dict(entry) for entry in data.get("segments", ())]
        manifest.node_count = int(data.get("node_count", 0))
        manifest.edge_count = int(data.get("edge_count", 0))
        manifest.meta = dict(data.get("meta", {}))
        if version == STORE_FORMAT_VERSION_V2:
            manifest._upgrade_from_v2(data)
        else:
            manifest.runs = [RunInfo.from_dict(entry) for entry in data.get("runs", ())]
            manifest.next_segment_id = int(data.get("next_segment_id", 1))
            manifest.next_run_id = int(data.get("next_run_id", 1))
            manifest.log_seq = int(data.get("log_seq", 0))
            known = {segment.segment_id for segment in manifest.segments}
            manifest.quarantined = {
                int(segment_id): str(reason)
                for segment_id, reason in dict(data.get("quarantined", {})).items()
                if int(segment_id) in known
            }
            checksum = data.get("pages_runs_checksum")
            if checksum is not None:
                manifest.pages_runs_checksum = [int(checksum[0]), int(checksum[1])]
        ids = manifest.segment_ids()
        if sorted(set(ids)) != ids:
            raise StoreError(f"segment table is not strictly increasing: {ids}")
        if any(segment_id >= manifest.next_segment_id for segment_id in ids):
            raise StoreError(
                f"segment id {max(ids)} is not below next_segment_id "
                f"{manifest.next_segment_id}"
            )
        known_runs = set(manifest.run_ids())
        orphaned = [s.segment_id for s in manifest.segments if s.run not in known_runs]
        if orphaned:
            raise StoreError(f"segment(s) {orphaned} reference unknown runs")
        return manifest

    def _upgrade_from_v2(self, data: dict) -> None:
        """Map a PR-1 single-run manifest to one run with :data:`LEGACY_RUN_ID`.

        The v2 segment table was contiguous ``1..N`` and the run log was a
        list of free-form dicts (at most one entry: a second ingest failed
        fast).  Everything becomes run 1; the legacy run dicts become the
        run's metadata.
        """
        expected = [index + 1 for index in range(len(self.segments))]
        if self.segment_ids() != expected:
            raise StoreError(f"v2 segment table is not contiguous: {self.segment_ids()}")
        legacy_runs = list(data.get("runs", ()))
        first = legacy_runs[0] if legacy_runs else {}
        run = RunInfo(
            run_id=LEGACY_RUN_ID,
            workload=str(first.get("workload", "")),
            status=RUN_COMPLETE,
            nodes=self.node_count,
            edges=self.edge_count,
            next_topo=int(data.get("next_topo", 0)),
            meta=dict(first),
        )
        if len(legacy_runs) > 1:
            run.meta["legacy_runs"] = legacy_runs
        for segment in self.segments:
            segment.run = LEGACY_RUN_ID
        self.runs = [run]
        self.next_run_id = LEGACY_RUN_ID + 1
        self.next_segment_id = len(self.segments) + 1

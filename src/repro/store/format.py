"""On-disk layout of the persistent provenance store.

A store is a directory::

    <store>/
        MANIFEST.json            # format version, segment table, run log
        segments/seg-<id>.seg    # append-only, lz-compressed CPG segments
        index/nodes.json         # node -> owning segment + topological rank
        index/pages.json         # page -> writer/reader nodes
        index/threads.json       # thread -> node indexes + segments
        index/sync.json          # sync object -> recorded release->acquire edges
        index/edges.json         # node -> segments holding its in-/out-edges

Segments are immutable once written; ingestion only appends new segments
and rewrites the (small) manifest and index files.  Segment payloads use
the v2 CPG serialization (:mod:`repro.core.serialization`) compressed with
the :mod:`repro.compression.lz` codec behind a tiny framed header.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import StoreError

#: Version of the store directory layout (matches the v2 CPG serialization).
STORE_FORMAT_VERSION = 2

#: Identifies a manifest as belonging to this subsystem.
STORE_KIND = "inspector-provenance-store"

MANIFEST_NAME = "MANIFEST.json"
SEGMENTS_DIR = "segments"
INDEX_DIR = "index"

#: Framing magic of a segment file: "ISEG" + format version byte.
SEGMENT_MAGIC = b"ISEG\x02"

#: Number of sub-computations per segment unless the caller overrides it;
#: also the epoch length of the incremental ingest sink.
DEFAULT_SEGMENT_NODES = 64


def segment_file_name(segment_id: int) -> str:
    """File name of segment ``segment_id`` inside :data:`SEGMENTS_DIR`."""
    return f"seg-{segment_id:08d}.seg"


@dataclass
class SegmentInfo:
    """Manifest entry describing one sealed segment.

    Attributes:
        segment_id: 1-based id; also determines the file name.
        nodes: Number of sub-computations stored in the segment.
        edges: Number of edges stored in the segment.
        raw_bytes: Size of the uncompressed JSON payload.
        stored_bytes: Size of the segment file on disk (header + lz data).
    """

    segment_id: int
    nodes: int
    edges: int
    raw_bytes: int
    stored_bytes: int

    @property
    def file_name(self) -> str:
        """The segment's file name."""
        return segment_file_name(self.segment_id)

    def to_dict(self) -> dict:
        return {
            "id": self.segment_id,
            "nodes": self.nodes,
            "edges": self.edges,
            "raw_bytes": self.raw_bytes,
            "stored_bytes": self.stored_bytes,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SegmentInfo":
        missing = [key for key in ("id", "nodes", "edges") if key not in data]
        if missing:
            raise StoreError(f"segment entry is missing field(s) {missing}: {data!r}")
        return cls(
            segment_id=int(data["id"]),
            nodes=int(data["nodes"]),
            edges=int(data["edges"]),
            raw_bytes=int(data.get("raw_bytes", 0)),
            stored_bytes=int(data.get("stored_bytes", 0)),
        )


@dataclass
class StoreManifest:
    """The store's root metadata document (``MANIFEST.json``).

    Attributes:
        version: Store format version.
        segments: Sealed segments in append order.
        node_count: Total sub-computations across every segment.
        edge_count: Total edges across every segment.
        next_topo: Next topological sequence number to hand out; node ranks
            are assigned in ingest order, which every ingest path keeps a
            linear extension of the CPG's happens-before order.
        runs: One entry per ingested run (workload name, threads, ...).
        meta: Free-form store metadata supplied at creation time.
    """

    version: int = STORE_FORMAT_VERSION
    segments: List[SegmentInfo] = field(default_factory=list)
    node_count: int = 0
    edge_count: int = 0
    next_topo: int = 0
    runs: List[dict] = field(default_factory=list)
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def segment_count(self) -> int:
        """Number of sealed segments."""
        return len(self.segments)

    def segment_info(self, segment_id: int) -> SegmentInfo:
        """Manifest entry of ``segment_id``."""
        if not 1 <= segment_id <= len(self.segments):
            raise StoreError(f"no segment {segment_id} (store has {len(self.segments)})")
        return self.segments[segment_id - 1]

    def to_dict(self) -> dict:
        return {
            "kind": STORE_KIND,
            "version": self.version,
            "segments": [segment.to_dict() for segment in self.segments],
            "node_count": self.node_count,
            "edge_count": self.edge_count,
            "next_topo": self.next_topo,
            "runs": list(self.runs),
            "meta": dict(self.meta),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "StoreManifest":
        if not isinstance(data, dict) or data.get("kind") != STORE_KIND:
            raise StoreError(f"not a provenance-store manifest: {data!r}")
        version = data.get("version")
        if version != STORE_FORMAT_VERSION:
            raise StoreError(
                f"unsupported store format version {version!r} "
                f"(this build reads version {STORE_FORMAT_VERSION})"
            )
        manifest = cls(version=int(version))
        manifest.segments = [SegmentInfo.from_dict(entry) for entry in data.get("segments", ())]
        manifest.node_count = int(data.get("node_count", 0))
        manifest.edge_count = int(data.get("edge_count", 0))
        manifest.next_topo = int(data.get("next_topo", 0))
        manifest.runs = list(data.get("runs", ()))
        manifest.meta = dict(data.get("meta", {}))
        expected = [index + 1 for index in range(len(manifest.segments))]
        actual = [segment.segment_id for segment in manifest.segments]
        if actual != expected:
            raise StoreError(f"segment table is not contiguous: {actual}")
        return manifest

"""A scatter-gather query router over sharded provenance stores.

:class:`StoreCluster` makes N independent :class:`~repro.store.server.
StoreServer` processes answer like one big :class:`~repro.store.query.
StoreQueryEngine`.  Runs are mapped onto shards by a
:class:`~repro.store.shard.ClusterManifest`; single-run queries
(``slice``/``lineage``/``taint``) route to exactly the shard holding the
run, cross-run queries (``*_across_runs``) fan out over every shard
concurrently, and ``compare_lineage`` fetches both runs' lineages in
parallel (possibly from two different shards) and diffs them through the
same :func:`~repro.store.query.diff_lineage` helper the single-store
engine uses.  **Equivalence is the contract**: for any sharding of a
store's runs, every cluster answer -- values, types, and the mint-order
enumeration of ``*_across_runs`` dicts -- is identical to the unsharded
engine's (the property suite in ``tests/property`` holds the router to
it).

**Failure handling.**  Each shard lists a primary and read replicas; a
request tries them in manifest order and moves on only for *transport*
failure (:class:`~repro.errors.StoreUnreachableError` -- a shard that
answered with an error is a query error, not a dead shard).  When every
endpoint of a shard is down, the degraded-read policy decides: ``fail``
(default) raises :class:`ShardDownError` naming the shard, ``partial``
lets cross-run queries return the live shards' runs and records the dead
shard (and, when the manifest knows them, its runs) in the fan-out
report.  Single-run queries and ``compare_lineage`` always raise -- a
partial answer to "what is this run's lineage" does not exist.

**Telemetry.**  Every query leaves a fan-out report
(:attr:`StoreCluster.last_fanout`): per shard, the endpoint that
answered, wall time, and the server's per-query read stats; cluster-wide
totals are folded into one :class:`~repro.store.cache.ReadScope` via
``ReadScope.absorb``, so a scatter-gathered query accounts its reads in
exactly the shape a single-store query does.

Shards are reached through :class:`~repro.store.server.StoreClient`s by
default; anything with the same ``request``/``result`` surface plugs in
-- :class:`InProcessShardClient` wraps a :class:`StoreServer` without a
socket, which is what the equivalence property uses to shard-test cheap.
"""

from __future__ import annotations

import base64
import binascii
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.queries import TaintResult
from repro.core.serialization import node_key, parse_node_key
from repro.core.thunk import NodeId
from repro.errors import StoreError, StoreUnreachableError

from repro.store.cache import DEFAULT_CACHE_BYTES, ReadScope
from repro.store.format import MANIFEST_NAME, SEGMENT_LOG_NAME, file_size_crc
from repro.store.query import LineageDiff, diff_lineage, normalize_pages, order_across_runs, untouched_taint
from repro.store.server import StoreClient, StoreServer
from repro.store.shard import ClusterManifest, Endpoint, ShardInfo

#: Degraded-read policies: what a dead shard does to a cross-run query.
DEGRADED_POLICIES = ("fail", "partial")


class ShardDownError(StoreError):
    """Every endpoint of a shard was unreachable when a query needed it.

    Attributes:
        shard_id: The dead shard.
        endpoints: The addresses that were tried, in failover order.
    """

    def __init__(self, shard_id: str, endpoints: Sequence[str], last_error: object) -> None:
        self.shard_id = shard_id
        self.endpoints = list(endpoints)
        tried = ", ".join(self.endpoints) or "no endpoints"
        super().__init__(
            f"shard {shard_id!r} is down: every endpoint unreachable "
            f"({tried}); last error: {last_error}"
        )


class InProcessShardClient:
    """A :class:`StoreClient` stand-in that calls a server without a socket.

    Wraps :meth:`StoreServer.handle_request` behind the client's
    ``request``/``result`` surface, so a :class:`StoreCluster` (or a
    test) can treat an in-process server exactly like a remote one --
    same response shapes, same error mapping, no TCP.  A wrapped server
    that has been closed raises :class:`~repro.errors.
    StoreUnreachableError`, which is how a test kills a shard.
    """

    def __init__(self, server: StoreServer, address: str = "in-process") -> None:
        self.server = server
        self.address = address
        self.down = False

    def request(self, op: str, **params) -> dict:
        if self.down:
            raise StoreUnreachableError(
                f"store server at {self.address} unreachable after 1 attempt: "
                f"shard marked down"
            )
        response = self.server.handle_request({"op": op, **params})
        if not response.get("ok"):
            error = StoreError(str(response.get("error", "unknown server error")))
            # Same error-class surfacing as StoreClient: the ``code`` field
            # is the stable machine-readable part of an error reply.
            error.code = str(response.get("code", "bad_request"))
            raise error
        return response

    def result(self, op: str, **params):
        return self.request(op, **params)["result"]


def _parse_nodes(keys: Iterable[str]) -> Set[NodeId]:
    return {parse_node_key(key) for key in keys}


def _parse_taint(entry: dict) -> TaintResult:
    return TaintResult(
        source_pages=set(entry["source_pages"]),
        tainted_pages=set(entry["tainted_pages"]),
        tainted_nodes=_parse_nodes(entry["tainted_nodes"]),
    )


class StoreCluster:
    """Routes queries over the shards a :class:`ClusterManifest` describes.

    Answers carry the engine's types -- node-id sets,
    :class:`~repro.core.queries.TaintResult`,
    :class:`~repro.store.query.LineageDiff` -- not wire dicts: the
    cluster is an engine-alike, and equivalence with
    :class:`~repro.store.query.StoreQueryEngine` is its contract.

    Args:
        manifest: The cluster layout (or a path ``ClusterManifest.load``
            accepts).
        parallelism: Concurrent shard requests per scattered query.
        on_shard_down: ``"fail"`` (default) or ``"partial"`` -- see the
            module docstring.
        client_factory: Builds a client from an address; defaults to
            ``StoreClient.from_url``.  Tests inject
            :class:`InProcessShardClient` factories here.
        client_options: Extra keyword arguments for the default factory
            (``timeout``, ``retries``, ``backoff`` ...).
    """

    def __init__(
        self,
        manifest,
        parallelism: int = 4,
        on_shard_down: str = "fail",
        client_factory: Optional[Callable[[str], object]] = None,
        client_options: Optional[dict] = None,
    ) -> None:
        if isinstance(manifest, str):
            manifest = ClusterManifest.load(manifest)
        if on_shard_down not in DEGRADED_POLICIES:
            raise StoreError(
                f"unknown degraded-read policy {on_shard_down!r} "
                f"(known: {', '.join(DEGRADED_POLICIES)})"
            )
        if parallelism < 1:
            raise ValueError(f"parallelism must be >= 1, got {parallelism}")
        self.manifest: ClusterManifest = manifest
        self.parallelism = parallelism
        self.on_shard_down = on_shard_down
        options = dict(client_options or {})
        self._client_factory = client_factory or (
            lambda address: StoreClient.from_url(address, **options)
        )
        self._clients: Dict[str, object] = {}
        self._lock = threading.Lock()
        #: Fan-out report of the most recent query (see module docstring).
        self.last_fanout: Optional[dict] = None
        self._totals = ReadScope()
        self._shard_requests: Dict[str, int] = {}
        self._shard_failovers: Dict[str, int] = {}
        self.queries_served = 0
        self.repairs_run = 0
        self._repair_files = 0
        self._repair_bytes = 0

    # ------------------------------------------------------------------ #
    # Shard transport
    # ------------------------------------------------------------------ #

    def _client(self, address: str):
        with self._lock:
            client = self._clients.get(address)
            if client is None:
                client = self._client_factory(address)
                self._clients[address] = client
        return client

    def _shard_request(self, shard: ShardInfo, op: str, params: dict, reports: List[dict]) -> dict:
        """One request to one shard, failing over primary -> replicas.

        Only transport exhaustion (:class:`StoreUnreachableError`) moves
        to the next endpoint; an answered error is the query's error.
        Appends one report entry (which endpoint answered, elapsed, the
        server's stats) to ``reports`` and raises :class:`ShardDownError`
        when the whole endpoint list is down.
        """
        endpoints = [e for e in shard.endpoints() if e.address]
        last_error: Optional[Exception] = None
        start = time.perf_counter()
        for index, endpoint in enumerate(endpoints):
            client = self._client(endpoint.address)
            try:
                response = client.request(op, **params)
            except StoreUnreachableError as exc:
                last_error = exc
                with self._lock:
                    if index + 1 < len(endpoints):
                        self._shard_failovers[shard.shard_id] = (
                            self._shard_failovers.get(shard.shard_id, 0) + 1
                        )
                continue
            elapsed_ms = (time.perf_counter() - start) * 1e3
            entry = {
                "shard": shard.shard_id,
                "address": endpoint.address,
                "ok": True,
                "failovers": index,
                "elapsed_ms": round(elapsed_ms, 3),
                "stats": response.get("stats", {}),
            }
            with self._lock:
                reports.append(entry)
                self._shard_requests[shard.shard_id] = (
                    self._shard_requests.get(shard.shard_id, 0) + 1
                )
                self._totals.absorb(entry["stats"])
            return response
        elapsed_ms = (time.perf_counter() - start) * 1e3
        with self._lock:
            reports.append(
                {
                    "shard": shard.shard_id,
                    "address": None,
                    "ok": False,
                    "failovers": max(len(endpoints) - 1, 0),
                    "elapsed_ms": round(elapsed_ms, 3),
                    "stats": {},
                }
            )
        raise ShardDownError(shard.shard_id, [e.address for e in endpoints], last_error)

    def _finish(self, op: str, reports: List[dict], missing: List[dict]) -> None:
        scope = ReadScope()
        for entry in reports:
            scope.absorb(entry.get("stats", {}))
        with self._lock:
            self.queries_served += 1
            self.last_fanout = {
                "op": op,
                "shards": list(reports),
                "missing_shards": list(missing),
                "stats": scope.to_dict(),
            }

    # ------------------------------------------------------------------ #
    # Run routing
    # ------------------------------------------------------------------ #

    def run_ids(self) -> List[int]:
        """The cluster's run set, ascending (= mint order; see shard.py).

        Manual policy reads it off the manifest; run-hash discovers it by
        asking every shard for its runs (a manifest-only op).  Discovery
        honors the degraded-read policy: under ``partial`` a dead shard's
        runs are simply absent.
        """
        if self.manifest.policy == "manual":
            return self.manifest.run_ids()
        reports: List[dict] = []
        discovered, _missing = self._scatter(
            "runs", {}, self.manifest.shards, reports, op_label="runs"
        )
        runs: Set[int] = set()
        for shard, response in discovered.items():
            for summary in response["result"]:
                runs.add(int(summary["id"]))
        return sorted(runs)

    def resolve_run(self, run: Optional[int]) -> int:
        """Mirror of ``ProvenanceStore.resolve_run`` over the cluster."""
        runs = self.run_ids()
        if run is None:
            if not runs:
                raise StoreError("this cluster holds no runs yet")
            if len(runs) > 1:
                listed = ", ".join(str(r) for r in runs)
                raise StoreError(
                    f"this cluster holds {len(runs)} runs ({listed}); pass run=<id>"
                )
            return runs[0]
        if int(run) not in runs:
            listed = ", ".join(str(r) for r in runs) or "none"
            raise StoreError(f"cluster has no run {run} (runs: {listed})")
        return int(run)

    def _route(self, run: Optional[int]) -> Tuple[ShardInfo, int, int]:
        """(shard, local run id, cluster run id) for one single-run query.

        An explicit run id routes straight off the manifest -- no
        cluster-wide discovery, so a query against a live shard works
        while an unrelated shard is down (the point of sharding).  The
        owning shard validates existence itself under ``run-hash``; the
        manual table validates here.  Only ``run=None`` (default-run
        resolution) needs the full run set.
        """
        cluster_run = self.resolve_run(run) if run is None else int(run)
        shard, local_run = self.manifest.shard_for_run(cluster_run)
        return shard, local_run, cluster_run

    # ------------------------------------------------------------------ #
    # Single-run queries (route to one shard)
    # ------------------------------------------------------------------ #

    def lineage(self, pages: Iterable[int], run: Optional[int] = None) -> Set[NodeId]:
        """:meth:`StoreQueryEngine.lineage_of_pages` on the owning shard."""
        shard, local_run, _ = self._route(run)
        reports: List[dict] = []
        try:
            response = self._shard_request(
                shard, "lineage", {"pages": [int(p) for p in pages], "run": local_run}, reports
            )
        finally:
            self._finish("lineage", reports, [])
        return _parse_nodes(response["result"]["nodes"])

    def backward_slice(
        self,
        node: NodeId,
        run: Optional[int] = None,
        kinds: Optional[Iterable[str]] = None,
    ) -> Set[NodeId]:
        return self._slice(node, run, kinds, forward=False)

    def forward_slice(
        self,
        node: NodeId,
        run: Optional[int] = None,
        kinds: Optional[Iterable[str]] = None,
    ) -> Set[NodeId]:
        return self._slice(node, run, kinds, forward=True)

    def _slice(self, node, run, kinds, forward: bool) -> Set[NodeId]:
        shard, local_run, _ = self._route(run)
        params = {"node": node_key(tuple(node)), "run": local_run, "forward": forward}
        if kinds is not None:
            params["kinds"] = list(kinds)
        reports: List[dict] = []
        try:
            response = self._shard_request(shard, "slice", params, reports)
        finally:
            self._finish("slice", reports, [])
        return _parse_nodes(response["result"]["nodes"])

    def taint(
        self,
        pages: Iterable[int],
        run: Optional[int] = None,
        through_thread_state: bool = False,
    ) -> TaintResult:
        """:meth:`StoreQueryEngine.propagate_taint` on the owning shard."""
        shard, local_run, _ = self._route(run)
        params = {
            "pages": [int(p) for p in pages],
            "run": local_run,
            "through_thread_state": through_thread_state,
        }
        reports: List[dict] = []
        try:
            response = self._shard_request(shard, "taint", params, reports)
        finally:
            self._finish("taint", reports, [])
        return _parse_taint(response["result"])

    # ------------------------------------------------------------------ #
    # Cross-run queries (scatter over every shard, gather, merge)
    # ------------------------------------------------------------------ #

    def _scatter(
        self,
        op: str,
        params: dict,
        shards: Sequence[ShardInfo],
        reports: List[dict],
        op_label: Optional[str] = None,
    ) -> Tuple[Dict[str, dict], List[ShardInfo]]:
        """Fan one request out; returns (shard id -> response, dead shards).

        A dead shard raises :class:`ShardDownError` under ``fail``;
        under ``partial`` it lands in the dead list for the caller's
        merge to account.  Any *answered* error cancels the query.
        """

        def ask(shard: ShardInfo):
            return self._shard_request(shard, op, params, reports)

        answers: Dict[str, dict] = {}
        dead: List[ShardInfo] = []
        outcomes: List[Tuple[ShardInfo, object, Optional[Exception]]] = []
        if len(shards) > 1 and self.parallelism > 1:
            with ThreadPoolExecutor(max_workers=min(self.parallelism, len(shards))) as pool:
                futures = [(shard, pool.submit(ask, shard)) for shard in shards]
                for shard, future in futures:
                    try:
                        outcomes.append((shard, future.result(), None))
                    except Exception as exc:  # sorted out below, by type
                        outcomes.append((shard, None, exc))
        else:
            for shard in shards:
                try:
                    outcomes.append((shard, ask(shard), None))
                except Exception as exc:
                    outcomes.append((shard, None, exc))
        first_error: Optional[Exception] = None
        for shard, response, error in outcomes:
            if error is None:
                answers[shard.shard_id] = response
            elif isinstance(error, ShardDownError) and self.on_shard_down == "partial":
                dead.append(shard)
            elif first_error is None:
                first_error = error
        if first_error is not None:
            self._finish(op_label or op, reports, [{"shard": s.shard_id} for s in dead])
            raise first_error
        return answers, dead

    def _missing_entries(self, dead: Sequence[ShardInfo]) -> List[dict]:
        """What the fan-out report says about shards a partial read skipped."""
        entries = []
        for shard in dead:
            runs: Optional[List[int]] = None
            if self.manifest.policy == "manual":
                runs = sorted(self.manifest.assigned_runs(shard.shard_id))
            entries.append({"shard": shard.shard_id, "runs": runs})
        return entries

    def _across_runs(
        self,
        op: str,
        pages: List[int],
        params: dict,
        parse: Callable[[object], object],
        default: Callable[[int], object],
    ) -> Dict[int, object]:
        """Shared scatter-gather-merge of both ``*_across_runs`` queries.

        Shards whose declared page-hash range excludes every queried page
        are not sent the query -- their runs take the untouched default,
        exactly as the single-store engine answers runs the cross-run
        page summary proves untouched.  (Their run *sets* must still be
        known: the manifest's table under ``manual``, a cheap ``runs``
        probe under ``run-hash``.)
        """
        reports: List[dict] = []
        queried = [s for s in self.manifest.shards if s.may_touch_pages(pages)]
        pruned = [s for s in self.manifest.shards if not s.may_touch_pages(pages)]
        answers, dead = self._scatter(op, params, queried, reports, op_label=op)

        answered: Dict[int, object] = {}
        defaulted: Set[int] = set()
        if self.manifest.policy == "manual":
            for shard in self.manifest.shards:
                local_to_cluster = {
                    local: cluster
                    for cluster, local in self.manifest.assigned_runs(shard.shard_id).items()
                }
                if shard.shard_id in answers:
                    result = answers[shard.shard_id]["result"]
                    for local_text, value in result.items():
                        cluster_run = local_to_cluster.get(int(local_text))
                        if cluster_run is not None:  # runs beyond the table are invisible
                            answered[cluster_run] = parse(value)
                elif shard in pruned:
                    defaulted.update(local_to_cluster.values())
            run_order = self.manifest.run_ids()
            known = set(run_order)
            missing_runs = known - set(answered) - defaulted
            run_order = [r for r in run_order if r not in missing_runs]
        else:
            # run-hash: local ids are cluster ids.  Pruned shards still
            # contribute their run sets through a manifest-only probe.
            for shard_id, response in answers.items():
                for local_text, value in response["result"].items():
                    answered[int(local_text)] = parse(value)
            if pruned:
                probed, probe_dead = self._scatter("runs", {}, pruned, reports, op_label=op)
                dead = list(dead) + probe_dead
                for response in probed.values():
                    for summary in response["result"]:
                        defaulted.add(int(summary["id"]))
            run_order = sorted(set(answered) | defaulted)

        self._finish(op, reports, self._missing_entries(dead))
        return order_across_runs(answered, run_order, default)

    def lineage_across_runs(self, pages: Iterable[int]) -> Dict[int, Set[NodeId]]:
        """:meth:`StoreQueryEngine.lineage_across_runs` over every shard."""
        wanted = [int(p) for p in pages]
        return self._across_runs(
            "lineage_across_runs",
            wanted,
            {"pages": wanted},
            parse=_parse_nodes,
            default=lambda _: set(),
        )

    def taint_across_runs(
        self, source_pages: Iterable[int], through_thread_state: bool = False
    ) -> Dict[int, TaintResult]:
        """:meth:`StoreQueryEngine.taint_across_runs` over every shard."""
        sources = [int(p) for p in source_pages]
        return self._across_runs(
            "taint_across_runs",
            sources,
            {"pages": sources, "through_thread_state": through_thread_state},
            parse=_parse_taint,
            default=lambda _: untouched_taint(sources),
        )

    def compare_lineage(self, run_a: int, run_b: int, pages) -> LineageDiff:
        """:meth:`StoreQueryEngine.compare_lineage`, possibly cross-shard.

        Both lineages are fetched concurrently (two shards, or one shard
        twice) and diffed through the same helper the engine uses, so a
        cross-shard diff cannot disagree with a single-store one.  Either
        run's shard being down always raises -- there is no partial diff.
        """
        wanted = normalize_pages(pages)
        shard_a, local_a, cluster_a = self._route(int(run_a))
        shard_b, local_b, cluster_b = self._route(int(run_b))
        reports: List[dict] = []

        def fetch(shard: ShardInfo, local_run: int) -> Set[NodeId]:
            response = self._shard_request(
                shard, "lineage", {"pages": list(wanted), "run": local_run}, reports
            )
            return _parse_nodes(response["result"]["nodes"])

        try:
            if self.parallelism > 1:
                with ThreadPoolExecutor(max_workers=2) as pool:
                    future_a = pool.submit(fetch, shard_a, local_a)
                    future_b = pool.submit(fetch, shard_b, local_b)
                    lineage_a, lineage_b = future_a.result(), future_b.result()
            else:
                lineage_a = fetch(shard_a, local_a)
                lineage_b = fetch(shard_b, local_b)
        finally:
            self._finish("compare_lineage", reports, [])
        return diff_lineage(cluster_a, cluster_b, wanted, lineage_a, lineage_b)

    # ------------------------------------------------------------------ #
    # Introspection & administration
    # ------------------------------------------------------------------ #

    def status(self) -> dict:
        """Liveness, run counts, and endpoints of every shard."""
        shards = []
        for shard in self.manifest.shards:
            reports: List[dict] = []
            entry = {
                "shard": shard.shard_id,
                "primary": shard.primary.address,
                "replicas": [r.address for r in shard.replicas],
                "page_hash_range": list(shard.page_hash_range)
                if shard.page_hash_range
                else None,
            }
            try:
                response = self._shard_request(shard, "runs", {}, reports)
            except ShardDownError as exc:
                entry.update({"alive": False, "error": str(exc)})
            else:
                summaries = response["result"]
                entry.update(
                    {
                        "alive": True,
                        "served_by": reports[-1]["address"],
                        "runs": [int(s["id"]) for s in summaries],
                    }
                )
                if self.manifest.policy == "manual":
                    entry["assigned_runs"] = sorted(
                        self.manifest.assigned_runs(shard.shard_id)
                    )
            shards.append(entry)
        return {
            "policy": self.manifest.policy,
            "on_shard_down": self.on_shard_down,
            "shards": shards,
            "runs": sorted(
                {
                    run
                    for entry in shards
                    for run in entry.get("assigned_runs", entry.get("runs", []) or [])
                }
            ),
        }

    def promote(self, shard_id: str, address: str) -> None:
        """Promote a replica to primary (manifest mutation; takes effect
        on the next request, which re-reads endpoint order)."""
        self.manifest.promote(shard_id, address)

    # ------------------------------------------------------------------ #
    # Anti-entropy repair
    # ------------------------------------------------------------------ #

    def repair(self, shard_id: Optional[str] = None) -> dict:
        """Heal a shard's local replicas from its primary, file by file.

        The primary serves its per-file ``(size, crc)`` table
        (``manifest_digest``); every replica endpoint that carries a local
        store ``path`` is diffed against it and exactly the files that are
        missing or checksum-differently are streamed over
        (``fetch_file``, verified again on arrival, installed via
        temp-file + atomic rename).  The primary's ``segments.log`` and
        ``MANIFEST.json`` are copied last -- the manifest rename is the
        commit point, and since the primary's manifest carries no
        quarantine marks for healthy segments, a replica whose scrub had
        quarantined a now-repaired segment converges back to clean.  A
        replica that also serves an address gets a ``refresh`` so its
        live server swaps the healed snapshot in immediately.

        ``shard_id=None`` repairs every shard.  Replicas without a local
        path (served elsewhere) are skipped and reported as such; extra
        local files a replica has beyond the digest are left for its own
        fsck/maintenance to sweep.  Returns the repair report; cumulative
        counters land in :meth:`fanout_stats`.
        """
        if shard_id is None:
            shards = list(self.manifest.shards)
        else:
            shards = [s for s in self.manifest.shards if s.shard_id == shard_id]
            if not shards:
                known = ", ".join(s.shard_id for s in self.manifest.shards) or "none"
                raise StoreError(f"cluster has no shard {shard_id!r} (shards: {known})")
        report = {"shards": [], "files_fetched": 0, "bytes_fetched": 0}
        for shard in shards:
            entry = self._repair_shard(shard)
            report["shards"].append(entry)
            report["files_fetched"] += entry["files_fetched"]
            report["bytes_fetched"] += entry["bytes_fetched"]
        with self._lock:
            self.repairs_run += 1
            self._repair_files += report["files_fetched"]
            self._repair_bytes += report["bytes_fetched"]
        return report

    def _repair_shard(self, shard: ShardInfo) -> dict:
        endpoints = shard.endpoints()
        primary = endpoints[0] if endpoints else None
        if primary is None or not primary.address:
            raise StoreError(
                f"shard {shard.shard_id!r} has no addressable primary to repair from"
            )
        source = self._client(primary.address)
        digest = source.result("manifest_digest")
        files = {
            str(rel): [int(pair[0]), int(pair[1])]
            for rel, pair in dict(digest["files"]).items()
        }
        entry = {
            "shard": shard.shard_id,
            "source": primary.address,
            "replicas": [],
            "files_fetched": 0,
            "bytes_fetched": 0,
        }
        primary_root = os.path.realpath(primary.path) if primary.path else None
        for endpoint in endpoints[1:]:
            if not endpoint.path:
                entry["replicas"].append(
                    {"address": endpoint.address or None, "skipped": "no local path"}
                )
                continue
            if primary_root and os.path.realpath(endpoint.path) == primary_root:
                continue  # same directory as the source: nothing to heal
            replica = self._repair_replica(source, endpoint, files)
            entry["replicas"].append(replica)
            entry["files_fetched"] += len(replica["fetched"])
            entry["bytes_fetched"] += replica["bytes_fetched"]
        return entry

    def _repair_replica(self, source, endpoint: Endpoint, files: Dict[str, List[int]]) -> dict:
        root = endpoint.path
        fetched: List[str] = []
        bytes_fetched = 0
        matched = 0
        for rel in sorted(files):
            target = os.path.join(root, *rel.split("/"))
            try:
                local = file_size_crc(target)
            except OSError:
                local = None
            if local == files[rel]:
                matched += 1
                continue
            bytes_fetched += self._fetch_into(source, rel, root)
            fetched.append(rel)
        # Metadata last, manifest very last: data files are in place
        # before the log that names them, and the manifest rename is the
        # commit point (the same ordering the store's own flush uses).
        for rel in (SEGMENT_LOG_NAME, MANIFEST_NAME):
            bytes_fetched += self._fetch_into(source, rel, root)
            fetched.append(rel)
        refreshed = False
        if endpoint.address:
            try:
                self._client(endpoint.address).request("refresh")
                refreshed = True
            except (StoreError, StoreUnreachableError):
                refreshed = False  # not serving right now; heals on next open
        return {
            "path": root,
            "address": endpoint.address or None,
            "fetched": fetched,
            "files_matched": matched,
            "bytes_fetched": bytes_fetched,
            "refreshed": refreshed,
        }

    def _fetch_into(self, source, rel: str, root: str) -> int:
        """Fetch one file from the repair source and install it atomically."""
        result = source.result("fetch_file", path=rel)
        data = base64.b64decode(str(result["data"]), validate=True)
        crc = binascii.crc32(data) & 0xFFFFFFFF
        if len(data) != int(result["size"]) or crc != int(result["crc"]):
            raise StoreError(
                f"repair fetch of {rel!r} arrived damaged "
                f"({len(data)} bytes crc {crc:#010x}, source said "
                f"{result['size']} bytes crc {int(result['crc']):#010x})"
            )
        target = os.path.join(root, *rel.split("/"))
        parent = os.path.dirname(target)
        if parent:
            os.makedirs(parent, exist_ok=True)
        # The scratch name ends in .tmp so a crashed repair leaves an
        # orphan the store's own sweep (and fsck --repair) removes.
        scratch = target + ".repair.tmp"
        with open(scratch, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(scratch, target)
        return len(data)

    def fanout_stats(self) -> dict:
        """Cumulative fan-out accounting across every query so far."""
        with self._lock:
            return {
                "queries_served": self.queries_served,
                "shard_requests": dict(self._shard_requests),
                "shard_failovers": dict(self._shard_failovers),
                "repairs": {
                    "runs": self.repairs_run,
                    "files_fetched": self._repair_files,
                    "bytes_fetched": self._repair_bytes,
                },
                "totals": self._totals.to_dict(),
            }


class ClusterService:
    """Hosts every shard of a manifest as in-process :class:`StoreServer`s.

    The deployment story behind ``python -m repro.store cluster serve``:
    each shard (and each replica) whose manifest entry carries a store
    ``path`` gets its own server -- own cache, own snapshot -- bound to
    its configured address (``host:port``; port 0 or a missing address
    binds an ephemeral loopback port).  Bound addresses are written back
    into the manifest (and ``cluster.json``, when it was loaded from
    disk), so a router can be pointed at the file immediately.

    Endpoints without a path are assumed to be served elsewhere and are
    left alone -- mixing in-process and remote shards is fine.
    """

    def __init__(
        self,
        manifest,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
        parallelism: int = 1,
        writable: bool = False,
    ) -> None:
        if isinstance(manifest, str):
            manifest = ClusterManifest.load(manifest)
        self.manifest: ClusterManifest = manifest
        self.cache_bytes = cache_bytes
        self.parallelism = parallelism
        self.writable = writable
        #: (shard id, endpoint) -> the StoreServer hosting it.
        self.servers: Dict[Tuple[str, int], StoreServer] = {}

    @staticmethod
    def _bind_of(endpoint: Endpoint) -> Tuple[str, int]:
        if not endpoint.address:
            return "127.0.0.1", 0
        host, _, port_text = endpoint.address.rpartition(":")
        if not host or not port_text.isdigit():
            raise StoreError(
                f"malformed endpoint address {endpoint.address!r} (expected host:port)"
            )
        return host, int(port_text)

    def start(self) -> ClusterManifest:
        """Start a server per pathful endpoint; returns the updated manifest."""
        for shard in self.manifest.shards:
            for index, endpoint in enumerate(shard.endpoints()):
                if not endpoint.path:
                    continue
                host, port = self._bind_of(endpoint)
                server = StoreServer(
                    endpoint.path,
                    host=host,
                    port=port,
                    cache_bytes=self.cache_bytes,
                    parallelism=self.parallelism,
                    # Only the primary may accept writes; replicas serve reads.
                    writable=self.writable and index == 0,
                )
                bound_host, bound_port = server.start()
                endpoint.address = f"{bound_host}:{bound_port}"
                self.servers[(shard.shard_id, index)] = server
        if self.manifest.path:
            self.manifest.save()
        return self.manifest

    def close(self) -> None:
        for server in self.servers.values():
            server.close()
        self.servers.clear()

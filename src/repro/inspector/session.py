"""The INSPECTOR session: run a workload under full provenance tracking.

A session wires together the whole stack -- the instrumented backend, the
cooperative runtime, the PT/perf pipeline, and the provenance tracker --
runs one workload, and returns the completed CPG together with the runtime
statistics every benchmark figure is derived from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Union

from repro.core.algorithm import ProvenanceTracker
from repro.core.cpg import ConcurrentProvenanceGraph, EdgeKind
from repro.core.dependencies import derive_data_edges
from repro.inspector.config import InspectorConfig
from repro.inspector.costmodel import CostModel, CostParameters
from repro.inspector.interpose import InspectorBackend, OutputRecord
from repro.inspector.stats import RunStats
from repro.perf.events import PerfData
from repro.store.format import DEFAULT_SEGMENT_NODES
from repro.store.sink import RemoteStoreSink, StoreSink
from repro.store.store import ProvenanceStore
from repro.threads.program import ProgramAPI
from repro.threads.runtime import SimRuntime
from repro.threads.scheduler import RandomScheduler, RoundRobinScheduler, Scheduler
from repro.workloads.base import DatasetSpec, InputDescriptor, Workload


@dataclass
class InspectorRunResult:
    """Everything produced by one INSPECTOR run.

    Attributes:
        workload: Name of the workload that ran.
        result: The workload's return value (its computed output).
        cpg: The completed Concurrent Provenance Graph.
        stats: Runtime statistics with the cost model applied.
        outputs: Records of data written through the output shim.
        perf_data: The recorded perf/PT log.
        dataset: The dataset the workload consumed.
        backend: The backend, exposed for advanced analyses (DIFT, NUMA).
        store: The persistent store the run was ingested into, when the
            session was created with one.
        store_run_id: Id of the run minted in the store for this execution
            (the namespace to query it under), when a store was used.
    """

    workload: str
    result: Any
    cpg: ConcurrentProvenanceGraph
    stats: RunStats
    outputs: List[OutputRecord] = field(default_factory=list)
    perf_data: Optional[PerfData] = None
    dataset: Optional[DatasetSpec] = None
    backend: Optional[InspectorBackend] = None
    store: Optional[ProvenanceStore] = None
    store_run_id: Optional[int] = None

    @property
    def tracker(self) -> ProvenanceTracker:
        """The provenance tracker that built the CPG."""
        return self.backend.tracker  # type: ignore[union-attr]


def make_scheduler(config: InspectorConfig) -> Scheduler:
    """Instantiate the scheduler named by ``config``."""
    if config.scheduler == "random":
        return RandomScheduler(seed=config.scheduler_seed)
    return RoundRobinScheduler()


class InspectorSession:
    """Runs workloads under the INSPECTOR library.

    Args:
        config: Library configuration (defaults are fine for most uses).
        cost_params: Optional cost-model parameter overrides.
        store: Optional persistent provenance store (or a path to one; it
            is opened or created as needed).  When given, each run streams
            its CPG into the store while executing -- one segment per
            ingest epoch -- and the derived data edges are appended when
            the run completes.  Every run gets its own run id (namespace)
            in the store, so one session (and one store) can trace any
            number of runs of any workloads; query them individually or
            compare them with
            :meth:`repro.store.StoreQueryEngine.compare_lineage`.
        store_url: Address of a **writable store server**
            (``host:port`` or ``store://host:port``) to stream runs to
            over TCP instead of a local store directory -- the traced
            process never touches the store's filesystem.  Mutually
            exclusive with ``store``.
        store_segment_nodes: Sub-computations per ingest epoch.
    """

    def __init__(
        self,
        config: Optional[InspectorConfig] = None,
        cost_params: Optional[CostParameters] = None,
        store: Optional[Union[str, ProvenanceStore]] = None,
        store_url: Optional[str] = None,
        store_segment_nodes: int = DEFAULT_SEGMENT_NODES,
    ) -> None:
        self.config = config if config is not None else InspectorConfig()
        self.config.validate()
        self.cost_model = CostModel(cost_params)
        if store is not None and store_url is not None:
            raise ValueError("store and store_url are mutually exclusive; pass one")
        if isinstance(store, str):
            store = ProvenanceStore.open_or_create(store)
        self.store = store
        self.store_url = store_url
        self.store_segment_nodes = store_segment_nodes

    def run(
        self,
        workload: Workload,
        num_threads: int = 4,
        size: str = "medium",
        dataset: Optional[DatasetSpec] = None,
        seed: int = 42,
        run_meta: Optional[dict] = None,
    ) -> InspectorRunResult:
        """Execute ``workload`` under provenance tracking.

        Args:
            workload: The workload to run.
            num_threads: Number of worker threads the workload should use.
            size: Dataset size label (ignored when ``dataset`` is given).
            dataset: Pre-generated dataset to reuse across runs.
            seed: Dataset generation seed.
            run_meta: Extra metadata recorded with the store's run entry
                (e.g. a caller-supplied wall-clock timestamp as
                ``created_at``, ticket ids, experiment labels).  Ignored
                when the session has no store.
        """
        if num_threads <= 0:
            raise ValueError(f"num_threads must be positive, got {num_threads}")
        spec = dataset if dataset is not None else workload.generate_dataset(size=size, seed=seed)
        backend = InspectorBackend(self.config, command=f"{workload.name} -t {num_threads}")
        base = backend.load_input(spec.payload)
        descriptor = InputDescriptor(base=base, size=len(spec.payload), meta=spec.meta)
        runtime = SimRuntime(scheduler=make_scheduler(self.config), backend=backend)
        sink: Optional[Union[StoreSink, RemoteStoreSink]] = None
        if self.store is not None:
            sink = StoreSink(
                self.store,
                segment_nodes=self.store_segment_nodes,
                workload=workload.name,
                run_meta=dict(run_meta or {}),
            )
            sink.attach(backend.tracker)
        elif self.store_url is not None:
            sink = RemoteStoreSink(
                self.store_url,
                segment_nodes=self.store_segment_nodes,
                workload=workload.name,
                run_meta=dict(run_meta or {}),
            )
            sink.attach(backend.tracker)

        def entry(proc):
            api = ProgramAPI(runtime, backend, proc)
            return workload.run(api, descriptor, num_threads)

        result = runtime.run(entry, name=f"{workload.name}-main")

        cpg = backend.tracker.finalize()
        if self.config.derive_data_edges:
            derive_data_edges(cpg)
        if sink is not None:
            sink.finish(
                cpg,
                run_meta={
                    "workload": workload.name,
                    "threads": num_threads,
                    "size": size if dataset is None else "custom",
                    "seed": seed,
                    "scheduler": self.config.scheduler,
                    "input_bytes": spec.size_bytes,
                    "nodes": len(cpg),
                },
            )
        perf_data = backend.perf_session.finish()
        stats = self._collect_stats(workload, num_threads, spec, backend, runtime, cpg, perf_data)
        return InspectorRunResult(
            workload=workload.name,
            result=result,
            cpg=cpg,
            stats=stats,
            outputs=list(backend.outputs),
            perf_data=perf_data,
            dataset=spec,
            backend=backend,
            store=self.store,
            store_run_id=sink.run_id if sink is not None else None,
        )

    # ------------------------------------------------------------------ #
    # Statistics collection
    # ------------------------------------------------------------------ #

    def _collect_stats(
        self,
        workload: Workload,
        num_threads: int,
        dataset: DatasetSpec,
        backend: InspectorBackend,
        runtime: SimRuntime,
        cpg: ConcurrentProvenanceGraph,
        perf_data: PerfData,
    ) -> RunStats:
        counters = backend.counters
        faults = backend.fault_counts()
        stats = RunStats(
            workload=workload.name,
            mode="inspector",
            threads=num_threads,
            input_bytes=dataset.size_bytes,
            instructions=counters.instructions,
            loads=counters.loads,
            stores=counters.stores,
            branches=counters.branches,
            indirect_branches=counters.indirect_branches,
            compute_units=counters.compute_units,
            per_thread_instructions=dict(counters.per_tid_instructions),
            sync_ops=counters.sync_ops,
            process_creations=runtime.process_creations,
            context_switches=runtime.context_switches,
            page_faults=faults["total"],
            read_faults=faults["read"],
            write_faults=faults["write"],
            locked_faults=backend.locked_faults,
            commits=backend.committer.stats.commits,
            pages_committed=backend.committer.stats.pages_committed,
            bytes_committed=backend.committer.stats.bytes_committed,
            allocations=counters.allocations,
            false_sharing_stores=0,
            pt_bytes=backend.pmu.total_bytes_emitted(),
            pt_bytes_lost=backend.pmu.total_bytes_lost(),
            pt_packets=sum(
                backend.pmu.encoder(pid).stats.packets for pid in backend.pmu.traced_pids()
            ),
            psb_groups=sum(
                backend.pmu.encoder(pid).stats.psb_groups for pid in backend.pmu.traced_pids()
            ),
            perf_log_bytes=perf_data.total_size,
            cpg_nodes=len(cpg),
            cpg_control_edges=cpg.edge_count(EdgeKind.CONTROL),
            cpg_sync_edges=cpg.edge_count(EdgeKind.SYNC),
            cpg_data_edges=cpg.edge_count(EdgeKind.DATA),
            snapshots_taken=(
                backend.snapshotter.stats.snapshots_taken if backend.snapshotter is not None else 0
            ),
        )
        return self.cost_model.apply(stats)

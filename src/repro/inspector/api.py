"""Top-level convenience API of the reproduction.

Most users need exactly two calls::

    from repro.inspector.api import run_with_provenance, run_native

    native = run_native("histogram", num_threads=8)
    traced = run_with_provenance("histogram", num_threads=8)
    print(traced.stats.overhead_against(native.stats))
    print(traced.cpg.summary())
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Union

from repro.inspector.config import InspectorConfig
from repro.inspector.costmodel import CostParameters
from repro.inspector.session import InspectorRunResult, InspectorSession
from repro.store.store import ProvenanceStore
from repro.workloads.base import DatasetSpec, Workload
from repro.workloads.registry import get_workload

if TYPE_CHECKING:  # pragma: no cover - import cycle avoidance
    from repro.baselines.native import NativeRunResult

WorkloadLike = Union[str, Workload]


def _resolve(workload: WorkloadLike) -> Workload:
    """Accept either a workload name or an instance."""
    if isinstance(workload, Workload):
        return workload
    return get_workload(workload)


def run_with_provenance(
    workload: WorkloadLike,
    num_threads: int = 4,
    size: str = "medium",
    config: Optional[InspectorConfig] = None,
    dataset: Optional[DatasetSpec] = None,
    cost_params: Optional[CostParameters] = None,
    seed: int = 42,
    store_path: Optional[Union[str, ProvenanceStore]] = None,
    store_url: Optional[str] = None,
    run_meta: Optional[dict] = None,
) -> InspectorRunResult:
    """Run a workload under the INSPECTOR library and return its CPG and stats.

    Args:
        workload: Workload name (see :func:`repro.workloads.list_workloads`)
            or a :class:`~repro.workloads.base.Workload` instance.
        num_threads: Number of worker threads.
        size: Dataset size (``"small"``, ``"medium"``, ``"large"``).
        config: Optional library configuration.
        dataset: Optional pre-generated dataset (overrides ``size``).
        cost_params: Optional cost-model overrides.
        seed: Dataset generation seed.
        store_path: Optional persistent provenance store to stream the run
            into (a directory path, opened or created as needed, or an
            already-open :class:`~repro.store.store.ProvenanceStore`).  One
            store holds many runs -- repeated calls against the same path
            each mint their own run id.  The returned result carries the
            store as ``result.store`` and the minted run id as
            ``result.store_run_id``.
        store_url: Address of a writable store server (``host:port`` or
            ``store://host:port``, started with
            ``python -m repro.store serve --writable``) to stream the run
            to over TCP instead -- epochs travel through
            :class:`~repro.store.sink.RemoteStoreSink`, and the traced
            process needs no filesystem access to the store.  Mutually
            exclusive with ``store_path``.
        run_meta: Extra metadata recorded with the store's run entry (e.g.
            ``created_at`` wall-clock, experiment labels).
    """
    session = InspectorSession(
        config=config, cost_params=cost_params, store=store_path, store_url=store_url
    )
    return session.run(
        _resolve(workload),
        num_threads=num_threads,
        size=size,
        dataset=dataset,
        seed=seed,
        run_meta=run_meta,
    )


def run_native(
    workload: WorkloadLike,
    num_threads: int = 4,
    size: str = "medium",
    config: Optional[InspectorConfig] = None,
    dataset: Optional[DatasetSpec] = None,
    cost_params: Optional[CostParameters] = None,
    seed: int = 42,
) -> "NativeRunResult":
    """Run a workload under plain pthreads (no provenance) and return its stats."""
    # Imported lazily: the baselines package itself imports the inspector
    # configuration, and a module-level import here would close that cycle.
    from repro.baselines.native import NativeSession

    session = NativeSession(config=config, cost_params=cost_params)
    return session.run(_resolve(workload), num_threads=num_threads, size=size, dataset=dataset, seed=seed)


def overhead_factor(
    workload: WorkloadLike,
    num_threads: int = 4,
    size: str = "medium",
    config: Optional[InspectorConfig] = None,
    cost_params: Optional[CostParameters] = None,
    seed: int = 42,
) -> float:
    """Return the modelled INSPECTOR-over-native time overhead for one workload.

    Both runs use the same generated dataset so the comparison is exact.
    """
    resolved = _resolve(workload)
    dataset = resolved.generate_dataset(size=size, seed=seed)
    native = run_native(
        resolved, num_threads=num_threads, config=config, dataset=dataset, cost_params=cost_params
    )
    traced = run_with_provenance(
        resolved, num_threads=num_threads, config=config, dataset=dataset, cost_params=cost_params
    )
    return traced.stats.overhead_against(native.stats)

"""The interposition layer: the simulated ``inspector-library.so``.

When the real library is ``LD_PRELOAD``-ed it intercepts the pthreads API,
runs every thread as a process with copy-on-write memory, drives the page
protection machinery, and wires the process into the Intel PT / perf
tracing pipeline.  :class:`InspectorBackend` is that library for the
simulated runtime: it implements the execution-backend interface the
program API calls into and routes every event to the right substrate
(MMU, committer, PT PMU, perf session, provenance tracker, snapshotter).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.algorithm import ProvenanceTracker
from repro.inspector.config import InspectorConfig
from repro.memory.address_space import SharedAddressSpace
from repro.memory.allocator import HeapAllocator
from repro.memory.fault_handler import FaultDispatcher, FaultEvent, FaultKind
from repro.memory.layout import pages_spanned
from repro.memory.mmu import MMU
from repro.memory.page import PROT_NONE, PROT_READ, PROT_READ_WRITE, PageTableEntry
from repro.memory.shared_commit import SharedMemoryCommitter
from repro.perf.record import PerfRecordSession
from repro.pt.binary_map import ImageMap
from repro.pt.cgroup import Cgroup
from repro.pt.pmu import IntelPTPMU, PMUConfig
from repro.snapshot.ring_buffer import SlotRingBuffer
from repro.snapshot.snapshotter import Snapshotter
from repro.threads.backend import BackendCounters, ExecutionBackend
from repro.threads.process import SimProcess
from repro.threads.sync import SyncObject

def _is_lock(obj: Optional["SyncObject"]) -> bool:
    """Whether a sync object delimits a critical section when acquired."""
    from repro.threads.sync import Mutex, RWLock, SyncKind

    if obj is None:
        return False
    return isinstance(obj, (Mutex, RWLock)) or obj.kind in (SyncKind.MUTEX, SyncKind.RWLOCK)


#: Base address of the synthetic text segment workload branch sites live in.
TEXT_SEGMENT_BASE = 0x4000_0000_0000

#: Size registered for the synthetic text segment.
TEXT_SEGMENT_SIZE = 1 << 32


@dataclass(frozen=True)
class OutputRecord:
    """One write through the output shim (the DIFT sink).

    Attributes:
        tid: Thread that performed the output.
        data: Bytes written.
        source_pages: Pages the caller declared the output was derived from.
        subcomputation: Index of the sub-computation that performed it.
    """

    tid: int
    data: bytes
    source_pages: Tuple[int, ...]
    subcomputation: int


class InspectorBackend(ExecutionBackend):
    """The INSPECTOR execution mode: full provenance tracking.

    Args:
        config: Session configuration.
        command: Command-line string recorded in the perf data header.
    """

    def __init__(self, config: Optional[InspectorConfig] = None, command: str = "inspector") -> None:
        self.config = config if config is not None else InspectorConfig()
        self.config.validate()

        # Memory substrate.
        self.space = SharedAddressSpace(page_size=self.config.page_size)
        self.dispatcher = FaultDispatcher(handler=self._handle_fault)
        self.mmu = MMU(self.space, self.dispatcher)
        self.committer = SharedMemoryCommitter(self.space, keep_diffs=self.config.keep_commit_diffs)
        self.allocator = HeapAllocator(self.space)

        # Provenance core.
        self.tracker = ProvenanceTracker(keep_event_log=self.config.keep_event_log)

        # Intel PT / perf substrate.
        self.cgroup = Cgroup("inspector")
        self.pmu = IntelPTPMU(
            PMUConfig(
                aux_size=self.config.aux_buffer_size,
                snapshot_mode=self.config.pt_snapshot_mode,
                psb_period=self.config.psb_period,
            ),
            cgroup=self.cgroup,
        )
        self.image_map = ImageMap()
        self.perf_session = PerfRecordSession(self.pmu, self.image_map, command=command)

        # Snapshot facility.
        self.snapshotter: Optional[Snapshotter] = None
        if self.config.enable_snapshots:
            ring = SlotRingBuffer(
                slot_size=self.config.snapshot_slot_size,
                slot_count=self.config.snapshot_slot_count,
            )
            self.snapshotter = Snapshotter(self.tracker, ring, interval=self.config.snapshot_interval)

        # Bookkeeping.
        self.counters = BackendCounters()
        self.outputs: List[OutputRecord] = []
        self.false_sharing_stores = 0  # INSPECTOR never pays false sharing
        self._input_base: Optional[int] = None
        #: Number of lock-type sync objects each process currently holds;
        #: faults taken while a lock is held extend the critical path and
        #: are accounted separately for the cost model.
        self._held_locks: Dict[int, int] = {}
        self.locked_faults = 0

    # ------------------------------------------------------------------ #
    # The SIGSEGV handler: record the access, relax the protection
    # ------------------------------------------------------------------ #

    def _handle_fault(self, event: FaultEvent, entry: PageTableEntry) -> None:
        if event.kind is FaultKind.WRITE:
            entry.prot |= PROT_READ_WRITE
        else:
            entry.prot |= PROT_READ
        if self._held_locks.get(event.pid, 0) > 0:
            self.locked_faults += 1
        if self.config.enable_memory_tracking:
            self.tracker.on_memory_access(event.pid, event.page, event.kind is FaultKind.WRITE)

    # ------------------------------------------------------------------ #
    # Lifecycle hooks
    # ------------------------------------------------------------------ #

    def on_process_start(self, proc: SimProcess) -> None:
        pid = proc.pid
        if proc.parent_pid is None:
            self.cgroup.add(pid)
        else:
            self.cgroup.add_child(proc.parent_pid, pid)
        self.mmu.register_process(pid)
        if self.config.enable_memory_tracking:
            self.mmu.protect_all(pid, PROT_NONE)
        else:
            # Tracking disabled (PT-only ablation): leave pages accessible
            # so the run takes no protection faults at all.
            self.mmu.protect_all(pid, PROT_READ_WRITE)
        if self.config.enable_pt:
            self.pmu.attach(pid)
        self.perf_session.on_process_start(pid, proc.name)
        self.perf_session.on_mmap(pid, "workload:text", TEXT_SEGMENT_BASE, TEXT_SEGMENT_SIZE)
        start_token: Optional[SyncObject] = proc.start_token  # type: ignore[assignment]
        self.tracker.on_thread_start(
            proc.tid,
            parent_tid=proc.parent_pid,
            start_object_id=start_token.sync_id if start_token is not None else None,
        )
        self.counters.per_tid_instructions.setdefault(proc.tid, 0)

    def on_process_exit(self, proc: SimProcess) -> None:
        pid = proc.pid
        self.committer.commit(self.mmu.view(pid))
        self.tracker.on_thread_end(proc.tid)
        exit_token: Optional[SyncObject] = proc.exit_token  # type: ignore[assignment]
        if exit_token is not None:
            self.tracker.on_release(proc.tid, exit_token.sync_id, operation="thread_exit")
        if self.config.enable_pt and self.cgroup.contains(pid):
            self.pmu.encoder(pid).flush()
        self.perf_session.on_process_exit(pid)

    # ------------------------------------------------------------------ #
    # Memory and allocation
    # ------------------------------------------------------------------ #

    def load(self, proc: SimProcess, address: int, size: int) -> bytes:
        self.counters.loads += 1
        self.counters.charge_instruction(proc.tid)
        self.tracker.on_instructions(proc.tid, 1)
        return self.mmu.read(proc.pid, address, size)

    def store(self, proc: SimProcess, address: int, data: bytes) -> None:
        self.counters.stores += 1
        self.counters.charge_instruction(proc.tid)
        self.tracker.on_instructions(proc.tid, 1)
        self.mmu.write(proc.pid, address, data)

    def malloc(self, proc: SimProcess, size: int) -> int:
        self.counters.allocations += 1
        return self.allocator.malloc(size)

    def free(self, proc: SimProcess, address: int) -> None:
        self.allocator.free(address)

    # ------------------------------------------------------------------ #
    # Control flow and computation
    # ------------------------------------------------------------------ #

    def branch(self, proc: SimProcess, site: int, taken: bool) -> None:
        self.counters.branches += 1
        self.counters.charge_instruction(proc.tid)
        self.tracker.on_branch(proc.tid, site, taken, is_indirect=False)
        if self.config.enable_pt and self.cgroup.contains(proc.pid):
            self.pmu.encoder(proc.pid).conditional_branch(taken)
            self.image_map.record_branch_site(proc.pid, site, False)

    def branch_run(self, proc: SimProcess, site: int, outcomes: Sequence[bool]) -> None:
        if not outcomes:
            return
        self.counters.branches += len(outcomes)
        self.counters.charge_instruction(proc.tid, len(outcomes))
        taken = sum(1 for outcome in outcomes if outcome)
        self.tracker.on_branch_run(proc.tid, site, taken, len(outcomes))
        if self.config.enable_pt and self.cgroup.contains(proc.pid):
            self.pmu.encoder(proc.pid).conditional_branch_run(outcomes)
            self.image_map.record_branch_site(proc.pid, site, False)

    def indirect(self, proc: SimProcess, target: int) -> None:
        self.counters.indirect_branches += 1
        self.counters.charge_instruction(proc.tid)
        self.tracker.on_branch(proc.tid, target, True, is_indirect=True)
        if self.config.enable_pt and self.cgroup.contains(proc.pid):
            self.pmu.encoder(proc.pid).indirect_branch(target)
            self.image_map.record_branch_site(proc.pid, target, True)

    def compute(self, proc: SimProcess, units: int) -> None:
        self.counters.compute_units += units
        self.counters.charge_instruction(proc.tid, units)
        self.tracker.on_instructions(proc.tid, units)

    # ------------------------------------------------------------------ #
    # Synchronization boundaries (the heart of Algorithm 1)
    # ------------------------------------------------------------------ #

    def before_sync(
        self,
        proc: SimProcess,
        op: str,
        obj: Optional[SyncObject],
        releases: Sequence[SyncObject],
    ) -> None:
        self.counters.sync_ops += 1
        # Lock-hold tracking (used to classify page faults): releasing a
        # lock-type object ends the critical section.
        held = self._held_locks.get(proc.pid, 0)
        released_locks = sum(1 for obj_ in releases if _is_lock(obj_))
        self._held_locks[proc.pid] = max(held - released_locks, 0)
        # 1. End the current sub-computation (alpha <- alpha + 1).
        self.tracker.on_sync_boundary(proc.tid, op)
        # 2. Publish this thread's writes (the RC shared-memory commit).
        if self.config.enable_memory_tracking:
            self.committer.commit(self.mmu.view(proc.pid))
        # 3. Release semantics: propagate the thread clock into the objects.
        for released in releases:
            self.tracker.on_release(proc.tid, released.sync_id, operation=op)
        # 4. Flush the PT stream so the trace aligns with sub-computations.
        if self.config.enable_pt and self.cgroup.contains(proc.pid):
            self.pmu.encoder(proc.pid).flush()
        # 5. Give the snapshot facility a chance to take a consistent cut.
        if self.snapshotter is not None:
            self.snapshotter.on_sync_boundary()

    def after_sync(
        self,
        proc: SimProcess,
        op: str,
        obj: Optional[SyncObject],
        acquires: Sequence[SyncObject],
    ) -> None:
        # Lock-hold tracking: acquiring a lock-type object opens a critical
        # section; faults taken inside it are serialised.
        acquired_locks = sum(1 for obj_ in acquires if _is_lock(obj_))
        if acquired_locks:
            self._held_locks[proc.pid] = self._held_locks.get(proc.pid, 0) + acquired_locks
        # 1. Acquire semantics: pull the objects' clocks into the thread.
        for acquired in acquires:
            self.tracker.on_acquire(proc.tid, acquired.sync_id, operation=op)
        # 2. Start the next sub-computation.
        self.tracker.begin_next(proc.tid)
        # 3. Re-protect the address space so first touches trap again.
        if self.config.enable_memory_tracking:
            self.mmu.protect_all(proc.pid, PROT_NONE)

    # ------------------------------------------------------------------ #
    # Input / output shims
    # ------------------------------------------------------------------ #

    def input_base(self) -> int:
        return self.space.region_named("input").base

    def load_input(self, data: bytes) -> int:
        """Map the program input and register its pages with the tracker."""
        base = self.space.load_input(data)
        self._input_base = base
        if self.config.track_input and data:
            pages = pages_spanned(base, len(data), self.space.page_size)
            self.tracker.register_input_pages(set(pages))
        return base

    def write_output(self, proc: SimProcess, data: bytes, source_addresses: Sequence[int]) -> None:
        self.counters.output_bytes += len(data)
        source_pages = tuple(
            sorted(
                {
                    page
                    for address in source_addresses
                    for page in pages_spanned(address, 1, self.space.page_size)
                }
            )
        )
        current = self.tracker.current_subcomputation(proc.tid)
        self.outputs.append(
            OutputRecord(
                tid=proc.tid,
                data=bytes(data),
                source_pages=source_pages,
                subcomputation=current.index if current is not None else -1,
            )
        )
        self.tracker.on_output(proc.tid, len(data))

    # ------------------------------------------------------------------ #
    # Introspection helpers used by the session
    # ------------------------------------------------------------------ #

    def fault_counts(self) -> Dict[str, int]:
        """Page-fault counters (total / read / write)."""
        stats = self.dispatcher.stats
        return {"total": stats.total, "read": stats.read_faults, "write": stats.write_faults}

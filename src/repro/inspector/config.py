"""Configuration of an INSPECTOR session."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.memory.layout import DEFAULT_PAGE_SIZE
from repro.pt.aux_buffer import DEFAULT_AUX_SIZE
from repro.pt.encoder import DEFAULT_PSB_PERIOD
from repro.snapshot.ring_buffer import DEFAULT_SLOT_COUNT, DEFAULT_SLOT_SIZE


@dataclass
class InspectorConfig:
    """Knobs of the INSPECTOR library and its simulated substrates.

    Attributes:
        page_size: Page size used by the simulated MMU (bytes).  The real
            system is fixed at 4 KiB; tests and the scaled-down benchmark
            datasets may use smaller pages so that page-granularity effects
            remain visible.
        scheduler: ``"round_robin"`` for deterministic runs or ``"random"``
            for seeded exploration of interleavings.
        scheduler_seed: Seed used when ``scheduler`` is ``"random"``.
        aux_buffer_size: Per-process AUX (PT) buffer capacity in bytes.
        pt_snapshot_mode: Run the AUX buffers in overwrite (snapshot) mode.
        psb_period: Bytes between PSB+ groups in the PT stream.
        enable_pt: Whether control-flow tracing through PT is enabled at
            all (disabling it isolates the threading-library overhead, the
            breakdown reported in Figure 6).
        enable_memory_tracking: Whether page-protection tracking of reads
            and writes is enabled (disabling it isolates the PT overhead).
        enable_snapshots: Whether the live snapshot facility runs.
        snapshot_interval: Synchronization boundaries between snapshots.
        snapshot_slot_size: Ring-buffer slot size in bytes.
        snapshot_slot_count: Number of ring-buffer slots.
        keep_event_log: Keep the flat tracker event log (memory heavy).
        derive_data_edges: Derive update-use edges when the run finishes.
        keep_commit_diffs: Retain per-page diffs in commit records (tests).
        track_input: Register input-region pages with the tracker so the
            virtual input node appears in the CPG.
    """

    page_size: int = DEFAULT_PAGE_SIZE
    scheduler: str = "round_robin"
    scheduler_seed: int = 0
    aux_buffer_size: int = DEFAULT_AUX_SIZE
    pt_snapshot_mode: bool = False
    psb_period: int = DEFAULT_PSB_PERIOD
    enable_pt: bool = True
    enable_memory_tracking: bool = True
    enable_snapshots: bool = False
    snapshot_interval: int = 64
    snapshot_slot_size: int = DEFAULT_SLOT_SIZE
    snapshot_slot_count: int = DEFAULT_SLOT_COUNT
    keep_event_log: bool = False
    derive_data_edges: bool = True
    keep_commit_diffs: bool = False
    track_input: bool = True

    def validate(self) -> None:
        """Raise ``ValueError`` for inconsistent settings."""
        if self.page_size <= 0 or self.page_size & (self.page_size - 1):
            raise ValueError(f"page_size must be a positive power of two, got {self.page_size}")
        if self.scheduler not in ("round_robin", "random"):
            raise ValueError(f"unknown scheduler {self.scheduler!r}")
        if self.snapshot_interval <= 0:
            raise ValueError("snapshot_interval must be positive")
        if self.aux_buffer_size <= 0:
            raise ValueError("aux_buffer_size must be positive")


def default_config(**overrides) -> InspectorConfig:
    """Return a default configuration with ``overrides`` applied."""
    config = InspectorConfig(**overrides)
    config.validate()
    return config

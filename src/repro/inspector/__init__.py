"""The INSPECTOR library: configuration, sessions, statistics, cost model.

Where this package sits in the whole reproduction: ``docs/architecture.md``.
"""

from repro.inspector.api import overhead_factor, run_native, run_with_provenance
from repro.inspector.config import InspectorConfig, default_config
from repro.inspector.costmodel import CostModel, CostParameters
from repro.inspector.interpose import InspectorBackend, OutputRecord
from repro.inspector.session import InspectorRunResult, InspectorSession
from repro.inspector.stats import RunStats

__all__ = [
    "overhead_factor",
    "run_native",
    "run_with_provenance",
    "InspectorConfig",
    "default_config",
    "CostModel",
    "CostParameters",
    "InspectorBackend",
    "OutputRecord",
    "InspectorRunResult",
    "InspectorSession",
    "RunStats",
]

"""Runtime statistics of a single execution (native or under INSPECTOR).

Every benchmark figure of the paper is a function of these counters: page
faults and faults/second (Figure 7), the threading-library versus PT
breakdown (Figure 6), the provenance-log size, bandwidth, and branch rate
(Figure 9), and -- through the cost model -- the end-to-end time and work
overheads (Figures 5 and 8).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass
class RunStats:
    """Counters and derived metrics for one run.

    Counter fields are filled by the session from the substrates; the
    ``*_seconds`` fields are produced by the cost model.
    """

    workload: str = ""
    mode: str = "native"
    threads: int = 1
    input_bytes: int = 0

    # Instruction-level counters.
    instructions: int = 0
    loads: int = 0
    stores: int = 0
    branches: int = 0
    indirect_branches: int = 0
    compute_units: int = 0
    per_thread_instructions: Dict[int, int] = field(default_factory=dict)

    # Threading-library counters.
    sync_ops: int = 0
    process_creations: int = 0
    context_switches: int = 0
    page_faults: int = 0
    read_faults: int = 0
    write_faults: int = 0
    locked_faults: int = 0
    commits: int = 0
    pages_committed: int = 0
    bytes_committed: int = 0
    allocations: int = 0
    false_sharing_stores: int = 0

    # Intel PT / perf counters.
    pt_bytes: int = 0
    pt_bytes_lost: int = 0
    pt_packets: int = 0
    psb_groups: int = 0
    perf_log_bytes: int = 0

    # Provenance graph summary.
    cpg_nodes: int = 0
    cpg_control_edges: int = 0
    cpg_sync_edges: int = 0
    cpg_data_edges: int = 0
    snapshots_taken: int = 0

    # Cost-model outputs (seconds).
    compute_seconds: float = 0.0
    threading_seconds: float = 0.0
    pt_seconds: float = 0.0
    total_seconds: float = 0.0
    work_seconds: float = 0.0

    # ------------------------------------------------------------------ #
    # Derived metrics
    # ------------------------------------------------------------------ #

    @property
    def faults_per_second(self) -> float:
        """Page faults per modelled second (the Figure 7 column)."""
        if self.total_seconds <= 0:
            return 0.0
        return self.page_faults / self.total_seconds

    @property
    def branch_instructions(self) -> int:
        """All branch events (conditional plus indirect)."""
        return self.branches + self.indirect_branches

    @property
    def branches_per_second(self) -> float:
        """Branch instructions per modelled second (the Figure 9 column)."""
        if self.total_seconds <= 0:
            return 0.0
        return self.branch_instructions / self.total_seconds

    @property
    def log_bandwidth_bytes_per_second(self) -> float:
        """Provenance-log bytes per modelled second (the Figure 9 column)."""
        if self.total_seconds <= 0:
            return 0.0
        return self.perf_log_bytes / self.total_seconds

    @property
    def max_thread_instructions(self) -> int:
        """Instructions of the busiest thread (the critical path's compute)."""
        if not self.per_thread_instructions:
            return self.instructions
        return max(self.per_thread_instructions.values())

    def overhead_against(self, baseline: "RunStats") -> float:
        """Time overhead of this run relative to ``baseline`` (1.0 = equal)."""
        if baseline.total_seconds <= 0:
            return 0.0
        return self.total_seconds / baseline.total_seconds

    def work_overhead_against(self, baseline: "RunStats") -> float:
        """Work (total CPU) overhead relative to ``baseline``."""
        if baseline.work_seconds <= 0:
            return 0.0
        return self.work_seconds / baseline.work_seconds

    def as_dict(self) -> Dict[str, float]:
        """Flatten the statistics for reporting (benchmarks, EXPERIMENTS.md)."""
        return {
            "workload": self.workload,
            "mode": self.mode,
            "threads": self.threads,
            "input_bytes": self.input_bytes,
            "instructions": self.instructions,
            "sync_ops": self.sync_ops,
            "process_creations": self.process_creations,
            "page_faults": self.page_faults,
            "faults_per_second": self.faults_per_second,
            "bytes_committed": self.bytes_committed,
            "pt_bytes": self.pt_bytes,
            "perf_log_bytes": self.perf_log_bytes,
            "branch_instructions": self.branch_instructions,
            "branches_per_second": self.branches_per_second,
            "log_bandwidth_bytes_per_second": self.log_bandwidth_bytes_per_second,
            "cpg_nodes": self.cpg_nodes,
            "cpg_data_edges": self.cpg_data_edges,
            "total_seconds": self.total_seconds,
            "work_seconds": self.work_seconds,
            "threading_seconds": self.threading_seconds,
            "pt_seconds": self.pt_seconds,
        }

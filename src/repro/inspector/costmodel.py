"""The calibrated cost model that converts event counts into time and work.

The paper's evaluation ran on a Xeon D-1540 testbed; this reproduction runs
on a pure-Python simulator, so wall-clock time is meaningless.  Instead,
every run produces exact event counts (instructions, page faults, diffed
bytes, process creations, PT bytes, synchronization operations), and this
model converts them into modelled execution time the same way a back-of-
the-envelope systems calculation would: a per-event cost multiplied by the
event count.

Every constant is documented below.  The constants were calibrated once,
against the *shape* of the paper's results (the 1x-2.5x majority band of
Figure 5, the canneal / reverse_index / kmeans outliers, linear_regression
running faster than pthreads, PT dominating the breakdown for well-behaved
applications in Figure 6) -- not tuned per figure or per data point.

Model structure
---------------

``time = compute/threads + threading_overhead + pt_overhead``

* compute parallelises across threads (the workloads are data parallel);
  the critical path is the busiest thread's instruction count.
* the threading-library overhead is split mechanically: page faults taken
  while the faulting thread holds *no* lock are independent per-thread work
  and parallelise (divided by the thread count), whereas faults taken
  inside critical sections, the shared-memory commit, process creation, and
  synchronization bookkeeping extend the critical path and are charged
  serially -- the paper explicitly attributes the growth of overhead with
  thread count to the shared-memory commit.
* the PT overhead scales with the branch count (trace generation) and the
  trace volume (the perf consumer and decoder), and is also charged against
  the run's critical path.

*Work* (total CPU utilisation, the paper's second metric) charges the same
costs but without dividing the compute by the thread count.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.inspector.stats import RunStats


@dataclass(frozen=True)
class CostParameters:
    """Per-event costs in nanoseconds (unless noted otherwise).

    Attributes:
        instruction_ns: One instruction-equivalent of application compute.
            1 ns models a superscalar core retiring a few simple ops per
            cycle at 2 GHz, expressed per simulated "element operation".
        sync_op_native_ns: A pthreads synchronization call (futex fast path
            plus occasional kernel round trip).
        sync_op_inspector_ns: The same call under INSPECTOR, excluding
            faults/commits which are charged separately (library
            bookkeeping, vector-clock update, re-protection setup).
        thread_create_native_ns: ``pthread_create`` cost.  NOTE: the
            simulated datasets are roughly two orders of magnitude smaller
            than the paper's inputs, so the two creation costs are scaled
            down by the same factor (otherwise thread creation, a fixed
            per-run cost, would dominate every scaled-down run, which it
            does not do on the real inputs).  Their *ratio* -- a process
            being roughly an order of magnitude more expensive than a
            thread -- is preserved, which is what makes kmeans (hundreds of
            thread creations) an outlier, exactly as in the paper.
        process_create_ns: INSPECTOR's ``clone()``-based thread creation --
            a process plus copy-on-write mappings (see the scaling note on
            ``thread_create_native_ns``).
        page_fault_ns: One protection fault: trap, signal delivery to the
            user-space handler, recording, ``mprotect`` to relax the page.
        commit_page_ns: Per dirty page at commit: byte comparison against
            the twin plus bookkeeping.
        commit_byte_ns: Per byte actually copied into the shared mapping.
        false_sharing_store_ns: Native-only penalty per store to a cache
            line that another thread also writes (coherence ping-pong).
            INSPECTOR does not pay it because each "thread" is a process
            with private pages -- the Sheriff effect that makes
            linear_regression faster than pthreads.
        pt_branch_ns: Per branch cost of PT trace generation plus its share
            of the perf consumer keeping up with the stream.
        pt_byte_ns: Per trace byte cost of writing the AUX data out (the
            paper stores the log on tmpfs; bandwidth is finite).
        output_byte_ns: Per byte written through the output shim.
    """

    instruction_ns: float = 1.0
    sync_op_native_ns: float = 400.0
    sync_op_inspector_ns: float = 1_200.0
    thread_create_native_ns: float = 200.0
    process_create_ns: float = 3_000.0
    page_fault_ns: float = 2_000.0
    commit_page_ns: float = 600.0
    commit_byte_ns: float = 0.3
    false_sharing_store_ns: float = 250.0
    pt_branch_ns: float = 1.6
    pt_byte_ns: float = 0.6
    output_byte_ns: float = 2.0


class CostModel:
    """Applies :class:`CostParameters` to a run's counters."""

    def __init__(self, params: CostParameters | None = None) -> None:
        self.params = params if params is not None else CostParameters()

    # ------------------------------------------------------------------ #
    # Component costs (seconds)
    # ------------------------------------------------------------------ #

    def compute_seconds(self, stats: RunStats) -> float:
        """Parallel application compute along the critical path.

        The critical path is at least the busiest single thread and at
        least the perfectly balanced share ``total / threads`` -- the
        latter matters for workloads like kmeans that run their work in
        successive waves of freshly created threads, where no single thread
        ever holds the whole per-core share.
        """
        threads = max(stats.threads, 1)
        critical = max(stats.max_thread_instructions, stats.instructions / threads)
        return critical * self.params.instruction_ns * 1e-9

    def work_compute_seconds(self, stats: RunStats) -> float:
        """Total application compute across all threads."""
        return stats.instructions * self.params.instruction_ns * 1e-9

    def threading_seconds(self, stats: RunStats) -> float:
        """Threading-library overhead (zero for a native run's extra costs).

        For a native run this charges the pthreads synchronization cost,
        thread creation, and the false-sharing penalty; for an INSPECTOR
        run it charges the paper's threading-library component: process
        creation, page faults (those taken under a lock serially, the rest
        spread over the worker threads), diffs and commits, plus the more
        expensive synchronization bookkeeping.
        """
        p = self.params
        threads = max(stats.threads, 1)
        if stats.mode == "native":
            ns = (
                stats.sync_ops * p.sync_op_native_ns
                + stats.process_creations * p.thread_create_native_ns
                + stats.false_sharing_stores * p.false_sharing_store_ns
            )
        else:
            locked = stats.locked_faults
            unlocked = max(stats.page_faults - locked, 0)
            ns = (
                stats.sync_ops * p.sync_op_inspector_ns
                + stats.process_creations * p.process_create_ns
                + locked * p.page_fault_ns
                + (unlocked * p.page_fault_ns) / threads
                + stats.pages_committed * p.commit_page_ns
                + stats.bytes_committed * p.commit_byte_ns
            )
        return ns * 1e-9

    def pt_seconds(self, stats: RunStats) -> float:
        """OS-support-for-PT overhead (zero for native runs and with PT disabled)."""
        if stats.mode == "native" or stats.pt_bytes == 0:
            return 0.0
        p = self.params
        ns = (
            stats.branch_instructions * p.pt_branch_ns
            + stats.perf_log_bytes * p.pt_byte_ns
        )
        return ns * 1e-9

    # ------------------------------------------------------------------ #
    # Entry point
    # ------------------------------------------------------------------ #

    def apply(self, stats: RunStats) -> RunStats:
        """Fill the ``*_seconds`` fields of ``stats`` in place and return it."""
        threads = max(stats.threads, 1)
        compute = self.compute_seconds(stats)
        threading_overhead = self.threading_seconds(stats)
        pt_overhead = self.pt_seconds(stats)
        stats.compute_seconds = compute
        stats.threading_seconds = threading_overhead
        stats.pt_seconds = pt_overhead
        stats.total_seconds = compute + threading_overhead + pt_overhead
        stats.work_seconds = (
            self.work_compute_seconds(stats) + (threading_overhead + pt_overhead) * threads
        )
        return stats

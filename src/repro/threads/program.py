"""The program API: how workloads express instruction-level behaviour.

Applications evaluated by the paper are ordinary C programs whose loads,
stores, and branches are observed from the outside (through the MMU and
Intel PT).  A pure-Python reproduction has no hardware to observe Python
bytecode with, so workloads are written against this small API instead:
``load``/``store`` touch the simulated address space, ``branch`` records a
conditional branch, ``spawn``/``join``/``lock``/... are the pthreads
facade.  Whether those calls are merely counted (native mode) or fully
traced (INSPECTOR mode) depends on the execution backend plugged into the
runtime -- the workload code is identical in both modes, which mirrors the
"no recompilation" property of the real library.
"""

from __future__ import annotations

import struct
import zlib
from typing import Any, Callable, Optional, Sequence, Tuple

from repro.threads.backend import ExecutionBackend
from repro.threads.process import SimProcess
from repro.threads.runtime import SimRuntime
from repro.threads.sync import (
    Barrier,
    ConditionVariable,
    Mutex,
    RWLock,
    Semaphore,
    SyncKind,
    Token,
)

_WORD = struct.Struct("<q")
_DOUBLE = struct.Struct("<d")

#: Size of the machine word used by the word-level helpers (bytes).
WORD_SIZE = 8


def branch_site(label: str) -> int:
    """Map a stable human-readable branch label onto a synthetic instruction pointer.

    The real system gets instruction pointers from the binary; here each
    distinct call-site label is hashed into a 48-bit address inside a
    synthetic "text segment" so that the PT encoder has realistic-looking
    IPs to compress and the binary map has something to resolve.
    """
    digest = zlib.crc32(label.encode("utf-8"))
    return 0x4000_0000_0000 | digest


class ThreadHandle:
    """Handle returned by :meth:`ProgramAPI.spawn`, consumed by :meth:`ProgramAPI.join`."""

    def __init__(self, process: SimProcess) -> None:
        self.process = process

    @property
    def tid(self) -> int:
        """Thread index of the spawned thread."""
        return self.process.tid


class ProgramAPI:
    """The per-thread facade workloads program against.

    One instance is bound to each simulated process; it forwards memory and
    control-flow events to the execution backend and wraps every
    synchronization primitive with the before/after boundary calls that
    drive sub-computation creation, memory commit, and vector-clock
    propagation in INSPECTOR mode.

    Args:
        runtime: The scheduling runtime.
        backend: The execution backend (native or INSPECTOR).
        process: The simulated process this API instance is bound to.
    """

    def __init__(self, runtime: SimRuntime, backend: ExecutionBackend, process: SimProcess) -> None:
        self.runtime = runtime
        self.backend = backend
        self.process = process

    # ------------------------------------------------------------------ #
    # Identity
    # ------------------------------------------------------------------ #

    @property
    def tid(self) -> int:
        """Thread index of the calling thread (0 is the main thread)."""
        return self.process.tid

    @property
    def name(self) -> str:
        """Name of the calling thread."""
        return self.process.name

    # ------------------------------------------------------------------ #
    # Memory
    # ------------------------------------------------------------------ #

    def malloc(self, size: int) -> int:
        """Allocate ``size`` bytes on the tracked heap and return the address."""
        return self.backend.malloc(self.process, size)

    def calloc(self, count: int, size: int) -> int:
        """Allocate and zero ``count * size`` bytes."""
        address = self.backend.malloc(self.process, count * size)
        self.store_bytes(address, bytes(count * size))
        return address

    def free(self, address: int) -> None:
        """Release a heap allocation."""
        self.backend.free(self.process, address)

    def load_bytes(self, address: int, size: int) -> bytes:
        """Load ``size`` raw bytes."""
        return self.backend.load(self.process, address, size)

    def store_bytes(self, address: int, data: bytes) -> None:
        """Store raw bytes."""
        self.backend.store(self.process, address, bytes(data))

    def load(self, address: int) -> int:
        """Load a signed 64-bit integer."""
        return _WORD.unpack(self.backend.load(self.process, address, WORD_SIZE))[0]

    def store(self, address: int, value: int) -> None:
        """Store a signed 64-bit integer."""
        self.backend.store(self.process, address, _WORD.pack(int(value)))

    def loadf(self, address: int) -> float:
        """Load a 64-bit float."""
        return _DOUBLE.unpack(self.backend.load(self.process, address, WORD_SIZE))[0]

    def storef(self, address: int, value: float) -> None:
        """Store a 64-bit float."""
        self.backend.store(self.process, address, _DOUBLE.pack(float(value)))

    # ------------------------------------------------------------------ #
    # Control flow and computation
    # ------------------------------------------------------------------ #

    def branch(self, condition: Any, site: str) -> bool:
        """Record a conditional branch and return the branch outcome.

        Typical use::

            while api.branch(i < n, "worker.loop"):
                ...
        """
        taken = bool(condition)
        self.backend.branch(self.process, branch_site(site), taken)
        return taken

    def branch_run(self, outcomes: Sequence[Any], site: str) -> int:
        """Record one conditional branch per element of ``outcomes`` in bulk.

        Workload inner loops execute a branch per element; this batches a
        chunk's worth of outcomes into one call.  Returns the number of
        taken branches, which callers occasionally find handy.
        """
        bools = [bool(outcome) for outcome in outcomes]
        self.backend.branch_run(self.process, branch_site(site), bools)
        return sum(1 for outcome in bools if outcome)

    def call(self, target: str) -> None:
        """Record an indirect branch (function call) to ``target``."""
        self.backend.indirect(self.process, branch_site(target))

    def ret(self) -> None:
        """Record a function return (an indirect branch in PT terms)."""
        self.backend.indirect(self.process, branch_site("__return__"))

    def compute(self, units: int = 1) -> None:
        """Account ``units`` of pure computation (no memory traffic)."""
        self.backend.compute(self.process, units)

    def yield_(self) -> None:
        """Voluntarily yield the CPU (a scheduling point, not a sync boundary)."""
        self.runtime.preempt(self.process)

    # ------------------------------------------------------------------ #
    # Thread management
    # ------------------------------------------------------------------ #

    def spawn(
        self,
        fn: Callable[..., Any],
        *args: Any,
        name: Optional[str] = None,
    ) -> ThreadHandle:
        """Create a new thread running ``fn(api, *args)`` and return its handle.

        Under INSPECTOR this models ``pthread_create`` turning into a
        ``clone()`` of a new process; the creation itself is a release on
        the child's start token so the child's first sub-computation
        happens-after the parent's creating sub-computation.
        """
        start_token = Token(self.runtime, SyncKind.THREAD_START)
        exit_token = Token(self.runtime, SyncKind.THREAD_EXIT)
        self.backend.before_sync(self.process, "thread_create", start_token, releases=[start_token])

        def entry(proc: SimProcess) -> Any:
            api = ProgramAPI(self.runtime, self.backend, proc)
            return fn(api, *args)

        child = self.runtime.spawn(entry, name=name, parent=self.process)
        child.start_token = start_token
        child.exit_token = exit_token
        self.backend.after_sync(self.process, "thread_create", start_token, acquires=[])
        self.runtime.preempt(self.process)
        return ThreadHandle(child)

    def join(self, handle: ThreadHandle) -> Any:
        """Wait for a spawned thread and return its result.

        The join is an acquire on the child's exit token, so everything the
        child did happens-before the joiner's next sub-computation.
        """
        child = handle.process
        self.backend.before_sync(self.process, "thread_join", child.exit_token, releases=[])
        result = self.runtime.join(self.process, child)
        acquires = [child.exit_token] if child.exit_token is not None else []
        self.backend.after_sync(self.process, "thread_join", child.exit_token, acquires=acquires)
        self.runtime.preempt(self.process)
        return result

    # ------------------------------------------------------------------ #
    # Synchronization object constructors
    # ------------------------------------------------------------------ #

    def mutex(self, name: Optional[str] = None) -> Mutex:
        """Create a mutex."""
        return Mutex(self.runtime, name=name)

    def condvar(self, name: Optional[str] = None) -> ConditionVariable:
        """Create a condition variable."""
        return ConditionVariable(self.runtime, name=name)

    def semaphore(self, value: int = 0, name: Optional[str] = None) -> Semaphore:
        """Create a counting semaphore."""
        return Semaphore(self.runtime, value=value, name=name)

    def barrier(self, parties: int, name: Optional[str] = None) -> Barrier:
        """Create a cyclic barrier for ``parties`` threads."""
        return Barrier(self.runtime, parties, name=name)

    def rwlock(self, name: Optional[str] = None) -> RWLock:
        """Create a reader-writer lock."""
        return RWLock(self.runtime, name=name)

    # ------------------------------------------------------------------ #
    # Synchronization operations (the pthreads calls INSPECTOR interposes)
    # ------------------------------------------------------------------ #

    def lock(self, mutex: Mutex) -> None:
        """``pthread_mutex_lock``: acquire ``mutex``."""
        self.backend.before_sync(self.process, "mutex_lock", mutex, releases=[])
        mutex.lock(self.process)
        self.backend.after_sync(self.process, "mutex_lock", mutex, acquires=[mutex])
        self.runtime.preempt(self.process)

    def try_lock(self, mutex: Mutex) -> bool:
        """``pthread_mutex_trylock``: acquire ``mutex`` without blocking."""
        self.backend.before_sync(self.process, "mutex_trylock", mutex, releases=[])
        acquired = mutex.try_lock(self.process)
        self.backend.after_sync(
            self.process, "mutex_trylock", mutex, acquires=[mutex] if acquired else []
        )
        self.runtime.preempt(self.process)
        return acquired

    def unlock(self, mutex: Mutex) -> None:
        """``pthread_mutex_unlock``: release ``mutex``."""
        self.backend.before_sync(self.process, "mutex_unlock", mutex, releases=[mutex])
        mutex.unlock(self.process)
        self.backend.after_sync(self.process, "mutex_unlock", mutex, acquires=[])
        self.runtime.preempt(self.process)

    def cond_wait(self, cond: ConditionVariable, mutex: Mutex) -> None:
        """``pthread_cond_wait``: release the mutex, wait, re-acquire it."""
        self.backend.before_sync(self.process, "cond_wait", cond, releases=[mutex, cond])
        cond.wait(self.process, mutex)
        self.backend.after_sync(self.process, "cond_wait", cond, acquires=[cond, mutex])
        self.runtime.preempt(self.process)

    def cond_signal(self, cond: ConditionVariable) -> None:
        """``pthread_cond_signal``: wake one waiter."""
        self.backend.before_sync(self.process, "cond_signal", cond, releases=[cond])
        cond.signal(self.process)
        self.backend.after_sync(self.process, "cond_signal", cond, acquires=[])
        self.runtime.preempt(self.process)

    def cond_broadcast(self, cond: ConditionVariable) -> None:
        """``pthread_cond_broadcast``: wake every waiter."""
        self.backend.before_sync(self.process, "cond_broadcast", cond, releases=[cond])
        cond.broadcast(self.process)
        self.backend.after_sync(self.process, "cond_broadcast", cond, acquires=[])
        self.runtime.preempt(self.process)

    def sem_wait(self, semaphore: Semaphore) -> None:
        """``sem_wait``: decrement, blocking at zero (an acquire)."""
        self.backend.before_sync(self.process, "sem_wait", semaphore, releases=[])
        semaphore.wait(self.process)
        self.backend.after_sync(self.process, "sem_wait", semaphore, acquires=[semaphore])
        self.runtime.preempt(self.process)

    def sem_post(self, semaphore: Semaphore) -> None:
        """``sem_post``: increment and wake a waiter (a release)."""
        self.backend.before_sync(self.process, "sem_post", semaphore, releases=[semaphore])
        semaphore.post(self.process)
        self.backend.after_sync(self.process, "sem_post", semaphore, acquires=[])
        self.runtime.preempt(self.process)

    def barrier_wait(self, barrier: Barrier) -> bool:
        """``pthread_barrier_wait``: release into and acquire from the barrier.

        Returns ``True`` for the serial thread of each barrier cycle.
        """
        self.backend.before_sync(self.process, "barrier_wait", barrier, releases=[barrier])
        serial = barrier.wait(self.process)
        self.backend.after_sync(self.process, "barrier_wait", barrier, acquires=[barrier])
        self.runtime.preempt(self.process)
        return serial

    def rw_rdlock(self, lock: RWLock) -> None:
        """``pthread_rwlock_rdlock``: acquire in shared mode."""
        self.backend.before_sync(self.process, "rwlock_rdlock", lock, releases=[])
        lock.read_lock(self.process)
        self.backend.after_sync(self.process, "rwlock_rdlock", lock, acquires=[lock])
        self.runtime.preempt(self.process)

    def rw_wrlock(self, lock: RWLock) -> None:
        """``pthread_rwlock_wrlock``: acquire in exclusive mode."""
        self.backend.before_sync(self.process, "rwlock_wrlock", lock, releases=[])
        lock.write_lock(self.process)
        self.backend.after_sync(self.process, "rwlock_wrlock", lock, acquires=[lock])
        self.runtime.preempt(self.process)

    def rw_unlock(self, lock: RWLock) -> None:
        """``pthread_rwlock_unlock``: release in whichever mode is held."""
        self.backend.before_sync(self.process, "rwlock_unlock", lock, releases=[lock])
        lock.unlock(self.process)
        self.backend.after_sync(self.process, "rwlock_unlock", lock, acquires=[])
        self.runtime.preempt(self.process)

    # ------------------------------------------------------------------ #
    # Input / output shims
    # ------------------------------------------------------------------ #

    @property
    def input_base(self) -> int:
        """Base address of the mmap-ed input region."""
        return self.backend.input_base()

    def read_input(self, offset: int, size: int) -> bytes:
        """Read raw bytes from the input region (a tracked load)."""
        return self.load_bytes(self.input_base + offset, size)

    def read_input_word(self, index: int) -> int:
        """Read the ``index``-th 64-bit word of the input region."""
        return self.load(self.input_base + index * WORD_SIZE)

    def read_input_double(self, index: int) -> float:
        """Read the ``index``-th 64-bit float of the input region."""
        return self.loadf(self.input_base + index * WORD_SIZE)

    def write_output(self, data: bytes, source_addresses: Sequence[int] = ()) -> None:
        """Emit output through the glibc-wrapper shim (the DIFT policy sink).

        Args:
            data: The bytes written out.
            source_addresses: Tracked addresses the output was derived from;
                the DIFT case study uses them to check taint policies.
        """
        self.backend.write_output(self.process, bytes(data), tuple(source_addresses))


def spawn_workers(
    api: ProgramAPI,
    worker: Callable[..., Any],
    count: int,
    args_for: Optional[Callable[[int], Tuple[Any, ...]]] = None,
) -> Tuple[ThreadHandle, ...]:
    """Spawn ``count`` worker threads and return their handles.

    A small helper shared by the data-parallel workloads: worker ``i``
    receives ``args_for(i)`` (or just ``(i,)`` when no factory is given).
    """
    handles = []
    for index in range(count):
        args = args_for(index) if args_for is not None else (index,)
        handles.append(api.spawn(worker, *args, name=f"worker-{index}"))
    return tuple(handles)


def join_all(api: ProgramAPI, handles: Sequence[ThreadHandle]) -> list:
    """Join every handle in order and return their results."""
    return [api.join(handle) for handle in handles]

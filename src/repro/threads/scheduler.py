"""Schedulers deciding which simulated process runs next.

The runtime switches between simulated processes only at synchronization
points (which is exactly where the release-consistency model allows
inter-thread communication), so the scheduler's job is to pick one runnable
process whenever the current one yields, blocks, or terminates.

Two policies are provided: a deterministic round-robin scheduler used by
default (replayable runs, stable benchmarks) and a seeded pseudo-random
scheduler used by the property-based tests to explore many interleavings of
the same program.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import List, Optional, Sequence

from repro.errors import SchedulerError


class Scheduler(ABC):
    """Strategy interface for picking the next runnable process."""

    @abstractmethod
    def pick(self, runnable: Sequence[int], last: Optional[int]) -> int:
        """Return the pid of the process to run next.

        Args:
            runnable: Pids of processes that are currently runnable, in
                ascending pid order.  Never empty.
            last: Pid of the process that ran most recently, or ``None`` at
                the very beginning of the run.
        """

    def reset(self) -> None:
        """Reset any internal state before a new run (optional)."""


class RoundRobinScheduler(Scheduler):
    """Deterministic scheduler cycling through runnable pids in order.

    The next process is the runnable pid strictly greater than the last one
    that ran, wrapping around to the smallest runnable pid.  Given the same
    program this produces the same interleaving on every run, which keeps
    CPGs and benchmark statistics reproducible.
    """

    def pick(self, runnable: Sequence[int], last: Optional[int]) -> int:
        if not runnable:
            raise SchedulerError("pick() called with no runnable processes")
        if last is None:
            return runnable[0]
        for pid in runnable:
            if pid > last:
                return pid
        return runnable[0]


class RandomScheduler(Scheduler):
    """Seeded pseudo-random scheduler used to explore interleavings.

    Args:
        seed: Seed for the private :class:`random.Random` instance.  Runs
            with the same seed produce the same schedule.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = random.Random(seed)

    def pick(self, runnable: Sequence[int], last: Optional[int]) -> int:
        if not runnable:
            raise SchedulerError("pick() called with no runnable processes")
        return self._rng.choice(list(runnable))

    def reset(self) -> None:
        self._rng = random.Random(self.seed)


class FixedScheduler(Scheduler):
    """Scheduler that replays an explicit pid sequence (for targeted tests).

    Args:
        order: The schedule to replay.  When the requested pid is not
            runnable (or the sequence is exhausted) the scheduler falls back
            to the smallest runnable pid, so a partially specified schedule
            still makes progress.
    """

    def __init__(self, order: Sequence[int]) -> None:
        self.order: List[int] = list(order)
        self._cursor = 0

    def pick(self, runnable: Sequence[int], last: Optional[int]) -> int:
        if not runnable:
            raise SchedulerError("pick() called with no runnable processes")
        while self._cursor < len(self.order):
            wanted = self.order[self._cursor]
            self._cursor += 1
            if wanted in runnable:
                return wanted
        return runnable[0]

    def reset(self) -> None:
        self._cursor = 0

"""Simulated processes (the "threads as processes" of INSPECTOR).

INSPECTOR turns every ``pthread_create`` into a ``clone()`` that produces a
real process with its own private address space.  In this reproduction a
:class:`SimProcess` is the unit of execution the runtime schedules: it has
an identifier, a state machine, the Python thread that hosts its code, and
the bookkeeping the synchronization layer needs (join waiters, the tokens
that order creation and termination in the happens-before relation).
"""

from __future__ import annotations

import enum
import threading
from typing import Any, Callable, List, Optional


class ProcessState(enum.Enum):
    """Lifecycle states of a simulated process."""

    NEW = "new"
    RUNNABLE = "runnable"
    RUNNING = "running"
    BLOCKED = "blocked"
    TERMINATED = "terminated"


class SimProcess:
    """One simulated process (standing in for a pthread of the application).

    Attributes:
        pid: Unique process id assigned by the runtime (0 is the main thread).
        tid: Thread index used by the provenance layer; equal to ``pid``.
        name: Human-readable name for logs and error messages.
        entry: The callable executed by the process; it receives the
            :class:`SimProcess` itself so higher layers can bind their
            program API to it.
        state: Current :class:`ProcessState`.
        waiting_on: Description of what the process is blocked on (a sync
            object or a ``("join", pid)`` tuple); ``None`` when not blocked.
        result: Return value of ``entry`` once terminated.
        exception: Exception raised by ``entry``, if any.
        joiners: Processes blocked in ``join`` on this process.
        parent_pid: Pid of the creating process (``None`` for the main thread).
        start_token: Sync-object placeholder released by the parent at
            creation time and acquired by this process when it starts; set
            by the threading facade.
        exit_token: Sync-object placeholder released by this process when it
            exits and acquired by joiners; set by the threading facade.
        user_data: Scratch dictionary for higher layers (backends attach
            per-process tracking state here).
    """

    def __init__(
        self,
        pid: int,
        entry: Callable[["SimProcess"], Any],
        name: Optional[str] = None,
        parent_pid: Optional[int] = None,
    ) -> None:
        self.pid = pid
        self.tid = pid
        self.name = name if name is not None else f"proc-{pid}"
        self.entry = entry
        self.state = ProcessState.NEW
        self.waiting_on: Optional[object] = None
        self.result: Any = None
        self.exception: Optional[BaseException] = None
        self.joiners: List["SimProcess"] = []
        self.parent_pid = parent_pid
        self.start_token: Optional[object] = None
        self.exit_token: Optional[object] = None
        self.user_data: dict = {}
        self.thread: Optional[threading.Thread] = None

    @property
    def terminated(self) -> bool:
        """Whether the process has finished executing."""
        return self.state is ProcessState.TERMINATED

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimProcess(pid={self.pid}, name={self.name!r}, state={self.state.value})"

"""The simulated operating system: process creation, scheduling, blocking.

Every simulated process is hosted by a real Python thread, but only one of
them runs at any moment: the runtime hands the "CPU" to exactly one process
and takes it back when that process reaches a scheduling point (a
synchronization operation, a voluntary yield, or termination).  Because the
release-consistency model restricts inter-thread communication to
synchronization points, scheduling only at those points loses no behaviour
that the provenance layer could observe, while keeping runs deterministic
and replayable under a deterministic scheduler.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Optional

from repro.errors import DeadlockError, ThreadingError
from repro.threads.process import ProcessState, SimProcess
from repro.threads.scheduler import RoundRobinScheduler, Scheduler


class _RuntimeShutdown(BaseException):
    """Internal signal used to unwind hosted threads when a run aborts.

    Derived from ``BaseException`` so that application-level ``except
    Exception`` blocks inside workloads cannot swallow it.
    """


class SimRuntime:
    """Cooperative scheduler for simulated processes.

    Args:
        scheduler: Scheduling policy; defaults to deterministic round-robin.
        backend: Optional :class:`~repro.threads.backend.ExecutionBackend`
            whose lifecycle hooks are invoked when processes start and exit.
            The backend is also what the program API routes memory and
            branch events through.

    Attributes:
        context_switches: Number of times the CPU was handed to a process.
        process_creations: Number of processes spawned (the paper's
            ``clone()``-per-thread cost is charged per creation).
        sync_object_count: Number of synchronization objects created so far
            (used to assign stable ids).
    """

    def __init__(self, scheduler: Optional[Scheduler] = None, backend: Optional[object] = None) -> None:
        self.scheduler = scheduler if scheduler is not None else RoundRobinScheduler()
        self.backend = backend
        self._cond = threading.Condition()
        self._processes: Dict[int, SimProcess] = {}
        self._next_pid = 0
        self._next_sync_id = 0
        self._current: Optional[int] = None
        self._last_scheduled: Optional[int] = None
        self._shutdown = False
        self._abort_error: Optional[BaseException] = None
        self.context_switches = 0
        self.process_creations = 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def processes(self) -> List[SimProcess]:
        """All processes created so far, in pid order."""
        return [self._processes[pid] for pid in sorted(self._processes)]

    def process(self, pid: int) -> SimProcess:
        """Return the process with id ``pid``."""
        return self._processes[pid]

    @property
    def sync_object_count(self) -> int:
        """Number of synchronization-object ids handed out so far."""
        return self._next_sync_id

    def next_sync_id(self) -> int:
        """Return a fresh synchronization-object id."""
        sync_id = self._next_sync_id
        self._next_sync_id += 1
        return sync_id

    # ------------------------------------------------------------------ #
    # Process creation
    # ------------------------------------------------------------------ #

    def spawn(
        self,
        entry: Callable[[SimProcess], Any],
        name: Optional[str] = None,
        parent: Optional[SimProcess] = None,
    ) -> SimProcess:
        """Create a new simulated process and make it runnable.

        Args:
            entry: Callable invoked with the new :class:`SimProcess`.  Higher
                layers use this to bind their program API to the process.
            name: Optional human-readable name.
            parent: The creating process, if any.

        Returns:
            The new process.  Its hosting Python thread is started
            immediately but does not run application code until scheduled.
        """
        pid = self._next_pid
        self._next_pid += 1
        proc = SimProcess(pid=pid, entry=entry, name=name, parent_pid=parent.pid if parent else None)
        self._processes[pid] = proc
        self.process_creations += 1
        thread = threading.Thread(target=self._process_body, args=(proc,), name=proc.name, daemon=True)
        proc.thread = thread
        proc.state = ProcessState.RUNNABLE
        thread.start()
        return proc

    # ------------------------------------------------------------------ #
    # The coordinator loop
    # ------------------------------------------------------------------ #

    def run(self, entry: Callable[[SimProcess], Any], name: str = "main") -> Any:
        """Run ``entry`` as the main process until every process terminates.

        Returns:
            The return value of the main process.

        Raises:
            DeadlockError: If at some point no process is runnable but some
                are still blocked.
            Exception: The first exception raised by any simulated process
                is re-raised here after the run is torn down.
        """
        self._reset_run_state()
        main = self.spawn(entry, name=name)
        try:
            self._coordinate()
        finally:
            self._teardown_threads()
        failed = [p for p in self.processes if p.exception is not None]
        if failed:
            raise failed[0].exception
        if self._abort_error is not None:
            raise self._abort_error
        return main.result

    def _reset_run_state(self) -> None:
        if self._processes:
            raise ThreadingError("SimRuntime.run() may only be called once per runtime instance")
        self.scheduler.reset()
        self._shutdown = False
        self._abort_error = None

    def _coordinate(self) -> None:
        with self._cond:
            while True:
                procs = list(self._processes.values())
                if all(p.state is ProcessState.TERMINATED for p in procs):
                    return
                if any(p.exception is not None for p in procs):
                    self._begin_shutdown()
                    return
                runnable = sorted(p.pid for p in procs if p.state is ProcessState.RUNNABLE)
                if not runnable:
                    blocked = [p for p in procs if p.state is ProcessState.BLOCKED]
                    self._abort_error = DeadlockError(
                        "no runnable process; blocked: "
                        + ", ".join(f"{p.name} on {p.waiting_on!r}" for p in blocked)
                    )
                    self._begin_shutdown()
                    return
                pid = self.scheduler.pick(runnable, self._last_scheduled)
                if pid not in runnable:
                    raise ThreadingError(f"scheduler chose pid {pid} which is not runnable")
                self._last_scheduled = pid
                self._current = pid
                self.context_switches += 1
                self._cond.notify_all()
                while self._current is not None:
                    self._cond.wait()

    def _begin_shutdown(self) -> None:
        """Ask every hosted thread that is parked in the runtime to unwind."""
        self._shutdown = True
        self._cond.notify_all()

    def _teardown_threads(self) -> None:
        with self._cond:
            self._begin_shutdown()
        for proc in self.processes:
            if proc.thread is not None and proc.thread.is_alive():
                proc.thread.join(timeout=5.0)

    # ------------------------------------------------------------------ #
    # The process side
    # ------------------------------------------------------------------ #

    def _process_body(self, proc: SimProcess) -> None:
        try:
            self._wait_until_scheduled(proc)
        except _RuntimeShutdown:
            self._finish(proc)
            return
        try:
            if self.backend is not None:
                self.backend.on_process_start(proc)
            proc.result = proc.entry(proc)
            if self.backend is not None:
                self.backend.on_process_exit(proc)
        except _RuntimeShutdown:
            pass
        except BaseException as exc:  # noqa: BLE001 - propagated to run()
            proc.exception = exc
        finally:
            self._finish(proc)

    def _wait_until_scheduled(self, proc: SimProcess) -> None:
        with self._cond:
            while self._current != proc.pid:
                if self._shutdown:
                    raise _RuntimeShutdown()
                self._cond.wait()
            proc.state = ProcessState.RUNNING

    def _finish(self, proc: SimProcess) -> None:
        with self._cond:
            proc.state = ProcessState.TERMINATED
            for waiter in proc.joiners:
                if waiter.state is ProcessState.BLOCKED:
                    waiter.state = ProcessState.RUNNABLE
                    waiter.waiting_on = None
            proc.joiners.clear()
            if self._current == proc.pid:
                self._current = None
            self._cond.notify_all()

    # ------------------------------------------------------------------ #
    # Scheduling points used by the synchronization layer
    # ------------------------------------------------------------------ #

    def yield_control(self, proc: SimProcess, new_state: ProcessState = ProcessState.RUNNABLE) -> None:
        """Give the CPU back to the coordinator and wait to be rescheduled.

        Args:
            proc: The currently running process (must be the caller).
            new_state: The state to park the process in while it waits
                (``RUNNABLE`` for a voluntary yield, ``BLOCKED`` when the
                caller is waiting on a synchronization object).
        """
        with self._cond:
            proc.state = new_state
            self._current = None
            self._cond.notify_all()
            while self._current != proc.pid:
                if self._shutdown:
                    raise _RuntimeShutdown()
                self._cond.wait()
            proc.state = ProcessState.RUNNING

    def block_current(self, proc: SimProcess, waiting_on: object) -> None:
        """Block ``proc`` on ``waiting_on`` until someone makes it runnable again."""
        proc.waiting_on = waiting_on
        self.yield_control(proc, ProcessState.BLOCKED)
        proc.waiting_on = None

    def make_runnable(self, proc: SimProcess) -> None:
        """Move a blocked process back to the runnable set."""
        with self._cond:
            if proc.state is ProcessState.BLOCKED:
                proc.state = ProcessState.RUNNABLE
                proc.waiting_on = None
                self._cond.notify_all()

    def preempt(self, proc: SimProcess) -> None:
        """Voluntary yield: let the scheduler pick again (caller stays runnable)."""
        self.yield_control(proc, ProcessState.RUNNABLE)

    def join(self, caller: SimProcess, target: SimProcess) -> Any:
        """Block ``caller`` until ``target`` terminates and return its result."""
        if caller.pid == target.pid:
            raise ThreadingError(f"{caller.name} attempted to join itself")
        while not target.terminated:
            target.joiners.append(caller)
            self.block_current(caller, waiting_on=("join", target.pid))
        return target.result

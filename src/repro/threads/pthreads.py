"""A pthreads-style veneer over the program API.

The real INSPECTOR replaces ``libpthread`` at link time; application code
keeps calling ``pthread_mutex_lock`` and friends.  For readers who want the
reproduction to look like the original API, this module exposes free
functions with the POSIX names that simply delegate to the bound
:class:`~repro.threads.program.ProgramAPI`.  Workloads in this repository
use the object-oriented API directly; the veneer exists for the examples
and for API fidelity.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.threads.program import ProgramAPI, ThreadHandle
from repro.threads.sync import Barrier, ConditionVariable, Mutex, RWLock, Semaphore


def pthread_create(
    api: ProgramAPI, fn: Callable[..., Any], *args: Any, name: Optional[str] = None
) -> ThreadHandle:
    """Create a new thread running ``fn(api, *args)``."""
    return api.spawn(fn, *args, name=name)


def pthread_join(api: ProgramAPI, handle: ThreadHandle) -> Any:
    """Wait for ``handle`` to finish and return its result."""
    return api.join(handle)


def pthread_mutex_init(api: ProgramAPI, name: Optional[str] = None) -> Mutex:
    """Create a mutex."""
    return api.mutex(name=name)


def pthread_mutex_lock(api: ProgramAPI, mutex: Mutex) -> None:
    """Acquire ``mutex``."""
    api.lock(mutex)


def pthread_mutex_trylock(api: ProgramAPI, mutex: Mutex) -> bool:
    """Try to acquire ``mutex`` without blocking."""
    return api.try_lock(mutex)


def pthread_mutex_unlock(api: ProgramAPI, mutex: Mutex) -> None:
    """Release ``mutex``."""
    api.unlock(mutex)


def pthread_cond_init(api: ProgramAPI, name: Optional[str] = None) -> ConditionVariable:
    """Create a condition variable."""
    return api.condvar(name=name)


def pthread_cond_wait(api: ProgramAPI, cond: ConditionVariable, mutex: Mutex) -> None:
    """Wait on ``cond`` releasing ``mutex`` while blocked."""
    api.cond_wait(cond, mutex)


def pthread_cond_signal(api: ProgramAPI, cond: ConditionVariable) -> None:
    """Wake one waiter of ``cond``."""
    api.cond_signal(cond)


def pthread_cond_broadcast(api: ProgramAPI, cond: ConditionVariable) -> None:
    """Wake every waiter of ``cond``."""
    api.cond_broadcast(cond)


def sem_init(api: ProgramAPI, value: int = 0, name: Optional[str] = None) -> Semaphore:
    """Create a counting semaphore."""
    return api.semaphore(value=value, name=name)


def sem_wait(api: ProgramAPI, semaphore: Semaphore) -> None:
    """Decrement ``semaphore``, blocking at zero."""
    api.sem_wait(semaphore)


def sem_post(api: ProgramAPI, semaphore: Semaphore) -> None:
    """Increment ``semaphore``."""
    api.sem_post(semaphore)


def pthread_barrier_init(api: ProgramAPI, parties: int, name: Optional[str] = None) -> Barrier:
    """Create a barrier for ``parties`` threads."""
    return api.barrier(parties, name=name)


def pthread_barrier_wait(api: ProgramAPI, barrier: Barrier) -> bool:
    """Wait on ``barrier``; returns True for the serial thread."""
    return api.barrier_wait(barrier)


def pthread_rwlock_init(api: ProgramAPI, name: Optional[str] = None) -> RWLock:
    """Create a reader-writer lock."""
    return api.rwlock(name=name)


def pthread_rwlock_rdlock(api: ProgramAPI, lock: RWLock) -> None:
    """Acquire ``lock`` in shared mode."""
    api.rw_rdlock(lock)


def pthread_rwlock_wrlock(api: ProgramAPI, lock: RWLock) -> None:
    """Acquire ``lock`` in exclusive mode."""
    api.rw_wrlock(lock)


def pthread_rwlock_unlock(api: ProgramAPI, lock: RWLock) -> None:
    """Release ``lock``."""
    api.rw_unlock(lock)

"""Execution backends: the policy layer behind the program API.

The threading runtime provides mechanism (scheduling, blocking, sync
objects); an :class:`ExecutionBackend` decides what actually happens on
loads, stores, branches, allocations, and at synchronization boundaries.

Two families of backends exist in this repository:

* :class:`DirectBackend` (here) and the native baseline built on it --
  memory goes straight to the shared address space, nothing is traced.
  This is the ``pthreads`` execution the paper normalizes against.
* ``InspectorBackend`` (in :mod:`repro.inspector.interpose`) -- memory goes
  through the simulated MMU with page protection, every branch is encoded
  into the Intel PT stream, and synchronization boundaries drive the
  provenance algorithm and the shared-memory commit.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.memory.address_space import SharedAddressSpace
from repro.memory.allocator import HeapAllocator
from repro.threads.process import SimProcess
from repro.threads.sync import SyncKind, SyncObject


def _is_lock_object(obj: Optional[SyncObject]) -> bool:
    """Whether acquiring ``obj`` opens a critical section (mutex or rwlock)."""
    return obj is not None and obj.kind in (SyncKind.MUTEX, SyncKind.RWLOCK)


@dataclass
class BackendCounters:
    """Event counters every backend keeps; they feed the cost model.

    Attributes:
        loads: Number of load operations.
        stores: Number of store operations.
        branches: Number of conditional branch events.
        indirect_branches: Number of indirect branches (calls/returns).
        compute_units: Abstract units of pure computation.
        sync_ops: Number of synchronization operations crossed.
        allocations: Number of heap allocations.
        output_bytes: Bytes written through the output shim.
        per_tid_instructions: Instruction-equivalents executed per thread
            (loads + stores + branches + compute units), used for the
            *work* metric of the paper.
    """

    loads: int = 0
    stores: int = 0
    branches: int = 0
    indirect_branches: int = 0
    compute_units: int = 0
    sync_ops: int = 0
    allocations: int = 0
    output_bytes: int = 0
    per_tid_instructions: Dict[int, int] = field(default_factory=dict)

    def charge_instruction(self, tid: int, units: int = 1) -> None:
        """Charge ``units`` instruction-equivalents to thread ``tid``."""
        self.per_tid_instructions[tid] = self.per_tid_instructions.get(tid, 0) + units

    @property
    def instructions(self) -> int:
        """Total instruction-equivalents across all threads."""
        return (
            self.loads
            + self.stores
            + self.branches
            + self.indirect_branches
            + self.compute_units
        )


class ExecutionBackend(ABC):
    """Interface between the program API and a particular execution mode."""

    # ------------------------------------------------------------------ #
    # Lifecycle hooks (called by the runtime)
    # ------------------------------------------------------------------ #

    @abstractmethod
    def on_process_start(self, proc: SimProcess) -> None:
        """Called when a simulated process is first scheduled."""

    @abstractmethod
    def on_process_exit(self, proc: SimProcess) -> None:
        """Called when a simulated process finishes its entry function."""

    # ------------------------------------------------------------------ #
    # Memory and allocation
    # ------------------------------------------------------------------ #

    @abstractmethod
    def load(self, proc: SimProcess, address: int, size: int) -> bytes:
        """Perform a load on behalf of ``proc``."""

    @abstractmethod
    def store(self, proc: SimProcess, address: int, data: bytes) -> None:
        """Perform a store on behalf of ``proc``."""

    @abstractmethod
    def malloc(self, proc: SimProcess, size: int) -> int:
        """Allocate ``size`` bytes of provenance-visible heap memory."""

    @abstractmethod
    def free(self, proc: SimProcess, address: int) -> None:
        """Release a heap allocation."""

    # ------------------------------------------------------------------ #
    # Control flow and computation
    # ------------------------------------------------------------------ #

    @abstractmethod
    def branch(self, proc: SimProcess, site: int, taken: bool) -> None:
        """Record a conditional branch at synthetic instruction pointer ``site``."""

    def branch_run(self, proc: SimProcess, site: int, outcomes: Sequence[bool]) -> None:
        """Record a run of conditional branches taken at the same site.

        Inner loops execute one conditional branch per element; recording
        them one call at a time would make the simulation intractable, so
        workloads batch the per-element outcomes of a chunk into one call.
        The default implementation simply loops; backends override it with
        a bulk path.
        """
        for taken in outcomes:
            self.branch(proc, site, taken)

    @abstractmethod
    def indirect(self, proc: SimProcess, target: int) -> None:
        """Record an indirect branch (call/return) to ``target``."""

    @abstractmethod
    def compute(self, proc: SimProcess, units: int) -> None:
        """Account ``units`` of pure computation (no memory traffic)."""

    # ------------------------------------------------------------------ #
    # Synchronization boundaries
    # ------------------------------------------------------------------ #

    @abstractmethod
    def before_sync(
        self,
        proc: SimProcess,
        op: str,
        obj: Optional[SyncObject],
        releases: Sequence[SyncObject],
    ) -> None:
        """Called immediately before a synchronization operation is performed.

        ``releases`` lists the sync objects whose clocks must receive the
        caller's clock (release semantics).
        """

    @abstractmethod
    def after_sync(
        self,
        proc: SimProcess,
        op: str,
        obj: Optional[SyncObject],
        acquires: Sequence[SyncObject],
    ) -> None:
        """Called immediately after a synchronization operation completed.

        ``acquires`` lists the sync objects whose clocks the caller must
        merge into its own (acquire semantics).
        """

    # ------------------------------------------------------------------ #
    # Input / output shims
    # ------------------------------------------------------------------ #

    @abstractmethod
    def input_base(self) -> int:
        """Base address of the mmap-ed input region."""

    @abstractmethod
    def load_input(self, data: bytes) -> int:
        """Map ``data`` into the input region (the paper's mmap input shim).

        Returns the base address the input was mapped at.
        """

    @abstractmethod
    def write_output(self, proc: SimProcess, data: bytes, source_addresses: Sequence[int]) -> None:
        """Model an output system call (the DIFT sink of the paper's case study)."""


class DirectBackend(ExecutionBackend):
    """The plain ``pthreads`` execution mode: no tracking, direct memory.

    This backend is what the native baseline and the threading-runtime unit
    tests use.  It still counts events (the cost model needs the native
    event counts too) and records which cache lines are written by which
    threads so the false-sharing model can charge the native execution for
    it -- the effect that makes *linear_regression* run faster under
    INSPECTOR than under pthreads in the paper.

    Args:
        space: Shared address space; created on demand when omitted.
        page_size: Page size used when a space must be created.
    """

    def __init__(self, space: Optional[SharedAddressSpace] = None, page_size: int = 4096) -> None:
        self.space = space if space is not None else SharedAddressSpace(page_size=page_size)
        self.allocator = HeapAllocator(self.space)
        self.counters = BackendCounters()
        self.outputs: List[bytes] = []
        #: cache line id -> {tid: set of word offsets written} (false-sharing model)
        self.line_writers: Dict[int, Dict[int, set]] = {}
        #: number of stores to a cache line on which another thread writes
        #: *different* addresses (the definition of false sharing); every
        #: such store models one coherence ping-pong in the native run.
        #: Stores made while holding a lock are excluded: lock-protected
        #: updates already serialise, so their coherence misses are part of
        #: the ordinary synchronization cost, not the pathological
        #: unsynchronized ping-pong that threads-as-processes eliminates.
        self.false_sharing_stores = 0
        self._line_size = 64
        self._held_locks: Dict[int, int] = {}

    # -- lifecycle ------------------------------------------------------ #

    def on_process_start(self, proc: SimProcess) -> None:
        self.counters.per_tid_instructions.setdefault(proc.tid, 0)

    def on_process_exit(self, proc: SimProcess) -> None:
        return None

    # -- memory --------------------------------------------------------- #

    def load(self, proc: SimProcess, address: int, size: int) -> bytes:
        self.counters.loads += 1
        self.counters.charge_instruction(proc.tid)
        return self.space.read(address, size)

    def store(self, proc: SimProcess, address: int, data: bytes) -> None:
        self.counters.stores += 1
        self.counters.charge_instruction(proc.tid)
        if self._held_locks.get(proc.pid, 0) == 0:
            self._track_false_sharing(proc.tid, address, len(data))
        self.space.write(address, data)

    def malloc(self, proc: SimProcess, size: int) -> int:
        self.counters.allocations += 1
        return self.allocator.malloc(size)

    def free(self, proc: SimProcess, address: int) -> None:
        self.allocator.free(address)

    # -- control flow --------------------------------------------------- #

    def branch(self, proc: SimProcess, site: int, taken: bool) -> None:
        self.counters.branches += 1
        self.counters.charge_instruction(proc.tid)

    def branch_run(self, proc: SimProcess, site: int, outcomes: Sequence[bool]) -> None:
        self.counters.branches += len(outcomes)
        self.counters.charge_instruction(proc.tid, len(outcomes))

    def indirect(self, proc: SimProcess, target: int) -> None:
        self.counters.indirect_branches += 1
        self.counters.charge_instruction(proc.tid)

    def compute(self, proc: SimProcess, units: int) -> None:
        self.counters.compute_units += units
        self.counters.charge_instruction(proc.tid, units)

    # -- synchronization ------------------------------------------------ #

    def before_sync(
        self,
        proc: SimProcess,
        op: str,
        obj: Optional[SyncObject],
        releases: Sequence[SyncObject],
    ) -> None:
        self.counters.sync_ops += 1
        released = sum(1 for released_obj in releases if _is_lock_object(released_obj))
        if released:
            held = self._held_locks.get(proc.pid, 0)
            self._held_locks[proc.pid] = max(held - released, 0)

    def after_sync(
        self,
        proc: SimProcess,
        op: str,
        obj: Optional[SyncObject],
        acquires: Sequence[SyncObject],
    ) -> None:
        acquired = sum(1 for acquired_obj in acquires if _is_lock_object(acquired_obj))
        if acquired:
            self._held_locks[proc.pid] = self._held_locks.get(proc.pid, 0) + acquired

    # -- input / output ------------------------------------------------- #

    def input_base(self) -> int:
        return self.space.region_named("input").base

    def load_input(self, data: bytes) -> int:
        return self.space.load_input(data)

    def write_output(self, proc: SimProcess, data: bytes, source_addresses: Sequence[int]) -> None:
        self.counters.output_bytes += len(data)
        self.outputs.append(bytes(data))

    # -- false-sharing model -------------------------------------------- #

    def _track_false_sharing(self, tid: int, address: int, size: int) -> None:
        first_word = address // 8
        last_word = (address + max(size, 1) - 1) // 8
        words_per_line = self._line_size // 8
        counted_lines = set()
        for word in range(first_word, last_word + 1):
            line = word // words_per_line
            writers = self.line_writers.setdefault(line, {})
            if line not in counted_lines:
                for other_tid, other_words in writers.items():
                    # False sharing: another thread writes this cache line
                    # but never this word -- the coherence traffic is purely
                    # due to co-location.  Threads updating the *same* word
                    # (a shared counter under a lock) are true sharing and
                    # are not charged.
                    if other_tid != tid and word not in other_words:
                        self.false_sharing_stores += 1
                        counted_lines.add(line)
                        break
            writers.setdefault(tid, set()).add(word)

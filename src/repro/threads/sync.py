"""Synchronization primitives of the simulated pthreads library.

These classes implement the *mechanism* of the POSIX primitives INSPECTOR
supports (mutexes, condition variables, semaphores, barriers, and
reader-writer locks) on top of the runtime's block/wake facilities.  The
*policy* side -- ending sub-computations, committing memory, and
propagating vector clocks according to the acquire/release model -- is
layered on by the program API facade, which calls into the execution
backend around every operation defined here.

Every primitive is a :class:`SyncObject` with a stable id, because the
provenance algorithm keys its synchronization clocks ``C_S`` by object.
"""

from __future__ import annotations

import enum
from typing import Deque, List, Optional

from collections import deque

from repro.errors import InvalidSyncStateError
from repro.threads.process import SimProcess
from repro.threads.runtime import SimRuntime


class SyncKind(enum.Enum):
    """The kind of synchronization object (recorded in the CPG)."""

    MUTEX = "mutex"
    CONDVAR = "condvar"
    SEMAPHORE = "semaphore"
    BARRIER = "barrier"
    RWLOCK = "rwlock"
    THREAD_START = "thread_start"
    THREAD_EXIT = "thread_exit"


class SyncObject:
    """Base class for every synchronization object.

    Attributes:
        runtime: The owning runtime (provides blocking and ids).
        sync_id: Stable id used by the provenance layer to key ``C_S``.
        kind: The :class:`SyncKind` of this object.
        name: Optional human-readable name.
    """

    def __init__(self, runtime: SimRuntime, kind: SyncKind, name: Optional[str] = None) -> None:
        self.runtime = runtime
        self.sync_id = runtime.next_sync_id()
        self.kind = kind
        self.name = name if name is not None else f"{kind.value}-{self.sync_id}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(id={self.sync_id}, name={self.name!r})"


class Token(SyncObject):
    """A passive sync object used only to carry happens-before information.

    Thread-creation and thread-exit ordering is modelled with tokens: the
    parent *releases* the child's start token, the child *acquires* it when
    it begins; the child releases its exit token when it finishes and the
    joiner acquires it.  Tokens never block anyone by themselves.
    """

    def __init__(self, runtime: SimRuntime, kind: SyncKind, name: Optional[str] = None) -> None:
        if kind not in (SyncKind.THREAD_START, SyncKind.THREAD_EXIT):
            raise InvalidSyncStateError("Token must be a thread_start or thread_exit object")
        super().__init__(runtime, kind, name)


class Mutex(SyncObject):
    """A non-recursive mutual-exclusion lock."""

    def __init__(self, runtime: SimRuntime, name: Optional[str] = None) -> None:
        super().__init__(runtime, SyncKind.MUTEX, name)
        self._owner: Optional[SimProcess] = None
        self._waiters: Deque[SimProcess] = deque()
        self.acquisitions = 0
        self.contended_acquisitions = 0

    @property
    def owner(self) -> Optional[SimProcess]:
        """The process currently holding the lock, or ``None``."""
        return self._owner

    def lock(self, proc: SimProcess) -> None:
        """Acquire the mutex, blocking until it is free."""
        if self._owner is proc:
            raise InvalidSyncStateError(f"{proc.name} attempted to re-lock non-recursive {self.name}")
        contended = False
        while self._owner is not None:
            contended = True
            self._waiters.append(proc)
            self.runtime.block_current(proc, waiting_on=self)
        self._owner = proc
        self.acquisitions += 1
        if contended:
            self.contended_acquisitions += 1

    def try_lock(self, proc: SimProcess) -> bool:
        """Acquire the mutex if it is free; return whether it was acquired."""
        if self._owner is None:
            self._owner = proc
            self.acquisitions += 1
            return True
        return False

    def unlock(self, proc: SimProcess) -> None:
        """Release the mutex and wake every waiter (they re-contend)."""
        if self._owner is not proc:
            owner = self._owner.name if self._owner else "nobody"
            raise InvalidSyncStateError(
                f"{proc.name} unlocked {self.name} which is held by {owner}"
            )
        self._owner = None
        while self._waiters:
            self.runtime.make_runnable(self._waiters.popleft())


class ConditionVariable(SyncObject):
    """A POSIX-style condition variable used together with a :class:`Mutex`."""

    def __init__(self, runtime: SimRuntime, name: Optional[str] = None) -> None:
        super().__init__(runtime, SyncKind.CONDVAR, name)
        self._waiters: Deque[SimProcess] = deque()
        self.signals = 0
        self.broadcasts = 0
        self.waits = 0

    def wait(self, proc: SimProcess, mutex: Mutex) -> None:
        """Atomically release ``mutex``, wait for a signal, and re-acquire it."""
        if mutex.owner is not proc:
            raise InvalidSyncStateError(
                f"{proc.name} called wait on {self.name} without holding {mutex.name}"
            )
        self.waits += 1
        self._waiters.append(proc)
        mutex.unlock(proc)
        self.runtime.block_current(proc, waiting_on=self)
        mutex.lock(proc)

    def signal(self, proc: SimProcess) -> None:
        """Wake one waiter (if any)."""
        self.signals += 1
        if self._waiters:
            self.runtime.make_runnable(self._waiters.popleft())

    def broadcast(self, proc: SimProcess) -> None:
        """Wake every waiter."""
        self.broadcasts += 1
        while self._waiters:
            self.runtime.make_runnable(self._waiters.popleft())


class Semaphore(SyncObject):
    """A counting semaphore."""

    def __init__(self, runtime: SimRuntime, value: int = 0, name: Optional[str] = None) -> None:
        if value < 0:
            raise InvalidSyncStateError(f"semaphore initial value must be >= 0, got {value}")
        super().__init__(runtime, SyncKind.SEMAPHORE, name)
        self._value = value
        self._waiters: Deque[SimProcess] = deque()

    @property
    def value(self) -> int:
        """Current semaphore count."""
        return self._value

    def wait(self, proc: SimProcess) -> None:
        """Decrement the semaphore, blocking while the count is zero."""
        while self._value == 0:
            self._waiters.append(proc)
            self.runtime.block_current(proc, waiting_on=self)
        self._value -= 1

    def try_wait(self, proc: SimProcess) -> bool:
        """Decrement without blocking; return whether the decrement happened."""
        if self._value > 0:
            self._value -= 1
            return True
        return False

    def post(self, proc: SimProcess) -> None:
        """Increment the semaphore and wake one waiter."""
        self._value += 1
        if self._waiters:
            self.runtime.make_runnable(self._waiters.popleft())


class Barrier(SyncObject):
    """A cyclic barrier for a fixed number of parties."""

    def __init__(self, runtime: SimRuntime, parties: int, name: Optional[str] = None) -> None:
        if parties <= 0:
            raise InvalidSyncStateError(f"barrier needs a positive party count, got {parties}")
        super().__init__(runtime, SyncKind.BARRIER, name)
        self.parties = parties
        self._arrived = 0
        self._generation = 0
        self._waiters: List[SimProcess] = []
        self.cycles = 0

    def wait(self, proc: SimProcess) -> bool:
        """Wait until ``parties`` processes have arrived.

        Returns:
            ``True`` for exactly one process per cycle (the last arriver),
            mirroring ``PTHREAD_BARRIER_SERIAL_THREAD``.
        """
        generation = self._generation
        self._arrived += 1
        if self._arrived == self.parties:
            self._arrived = 0
            self._generation += 1
            self.cycles += 1
            waiters = list(self._waiters)
            self._waiters.clear()
            for waiter in waiters:
                self.runtime.make_runnable(waiter)
            return True
        self._waiters.append(proc)
        while self._generation == generation:
            self.runtime.block_current(proc, waiting_on=self)
        return False


class RWLock(SyncObject):
    """A reader-writer lock (writers have priority over new readers)."""

    def __init__(self, runtime: SimRuntime, name: Optional[str] = None) -> None:
        super().__init__(runtime, SyncKind.RWLOCK, name)
        self._readers: List[SimProcess] = []
        self._writer: Optional[SimProcess] = None
        self._waiting_writers: Deque[SimProcess] = deque()
        self._waiting_readers: Deque[SimProcess] = deque()

    def read_lock(self, proc: SimProcess) -> None:
        """Acquire the lock in shared (read) mode."""
        while self._writer is not None or self._waiting_writers:
            self._waiting_readers.append(proc)
            self.runtime.block_current(proc, waiting_on=self)
        self._readers.append(proc)

    def write_lock(self, proc: SimProcess) -> None:
        """Acquire the lock in exclusive (write) mode."""
        while self._writer is not None or self._readers:
            self._waiting_writers.append(proc)
            self.runtime.block_current(proc, waiting_on=self)
        self._writer = proc

    def unlock(self, proc: SimProcess) -> None:
        """Release the lock in whichever mode the caller holds it."""
        if self._writer is proc:
            self._writer = None
        elif proc in self._readers:
            self._readers.remove(proc)
        else:
            raise InvalidSyncStateError(f"{proc.name} does not hold {self.name}")
        if self._writer is None and not self._readers:
            if self._waiting_writers:
                self.runtime.make_runnable(self._waiting_writers.popleft())
            else:
                while self._waiting_readers:
                    self.runtime.make_runnable(self._waiting_readers.popleft())

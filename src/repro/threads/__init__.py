"""The threading-library substrate: threads as processes, scheduled cooperatively.

This package provides the mechanism half of INSPECTOR's threading library:
simulated processes, a scheduler that switches between them at
synchronization points, the POSIX synchronization primitives, and the
program API workloads are written against.  The policy half (memory
tracking, PT tracing, provenance) lives in the execution backend plugged
into the runtime.

Where this package sits in the whole reproduction: ``docs/architecture.md``.
"""

from repro.threads.backend import BackendCounters, DirectBackend, ExecutionBackend
from repro.threads.process import ProcessState, SimProcess
from repro.threads.program import (
    ProgramAPI,
    ThreadHandle,
    WORD_SIZE,
    branch_site,
    join_all,
    spawn_workers,
)
from repro.threads.runtime import SimRuntime
from repro.threads.scheduler import FixedScheduler, RandomScheduler, RoundRobinScheduler, Scheduler
from repro.threads.sync import (
    Barrier,
    ConditionVariable,
    Mutex,
    RWLock,
    Semaphore,
    SyncKind,
    SyncObject,
    Token,
)

__all__ = [
    "BackendCounters",
    "DirectBackend",
    "ExecutionBackend",
    "ProcessState",
    "SimProcess",
    "ProgramAPI",
    "ThreadHandle",
    "WORD_SIZE",
    "branch_site",
    "join_all",
    "spawn_workers",
    "SimRuntime",
    "FixedScheduler",
    "RandomScheduler",
    "RoundRobinScheduler",
    "Scheduler",
    "Barrier",
    "ConditionVariable",
    "Mutex",
    "RWLock",
    "Semaphore",
    "SyncKind",
    "SyncObject",
    "Token",
]

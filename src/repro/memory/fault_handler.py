"""The simulated SIGSEGV path: fault kinds, fault events, and the dispatcher.

In the real system the kernel delivers a segmentation fault to the handler
installed by ``inspector-library.so``; the handler records the access in the
read/write set of the running sub-computation and relaxes the protection of
the page so execution can continue.  Here the :class:`FaultDispatcher`
plays the role of the kernel's signal delivery, and whoever registers a
handler (the provenance session, a test, ...) plays the role of the
library.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.memory.page import PROT_READ, PROT_READ_WRITE, PageTableEntry


class FaultKind(enum.Enum):
    """Which kind of access triggered the fault."""

    READ = "read"
    WRITE = "write"


@dataclass(frozen=True)
class FaultEvent:
    """A single page fault taken by a simulated process.

    Attributes:
        pid: Simulated process that faulted.
        page: Page id that was touched.
        kind: Whether the faulting access was a read or a write.
        sequence: Global fault sequence number (for ordering in logs).
    """

    pid: int
    page: int
    kind: FaultKind
    sequence: int


#: Signature of a fault handler callback.  It receives the fault event and
#: the page-table entry it may update, and must leave the entry in a state
#: that permits the faulting access (otherwise the MMU raises).
FaultHandlerFn = Callable[[FaultEvent, PageTableEntry], None]


def permissive_handler(event: FaultEvent, entry: PageTableEntry) -> None:
    """A handler that simply grants the faulting access without recording it.

    Useful for tests of the memory substrate that do not care about
    provenance, and as the behaviour of untracked runs.
    """
    if event.kind is FaultKind.WRITE:
        entry.prot |= PROT_READ_WRITE
    else:
        entry.prot |= PROT_READ


@dataclass
class FaultStats:
    """Aggregate fault counters kept by the dispatcher.

    Attributes:
        total: All faults taken.
        read_faults: Faults triggered by loads.
        write_faults: Faults triggered by stores.
        per_pid: Fault count per simulated process.
    """

    total: int = 0
    read_faults: int = 0
    write_faults: int = 0
    per_pid: Dict[int, int] = field(default_factory=dict)

    def record(self, event: FaultEvent) -> None:
        """Account one fault event."""
        self.total += 1
        if event.kind is FaultKind.WRITE:
            self.write_faults += 1
        else:
            self.read_faults += 1
        self.per_pid[event.pid] = self.per_pid.get(event.pid, 0) + 1


class FaultDispatcher:
    """Delivers simulated page faults to the registered handler.

    Args:
        handler: The handler invoked for every fault.  Defaults to
            :func:`permissive_handler`.
        keep_log: Whether to retain every :class:`FaultEvent` (tests and the
            statistics layer use the log; long benchmark runs can disable it
            to save memory).
    """

    def __init__(
        self,
        handler: FaultHandlerFn = permissive_handler,
        keep_log: bool = False,
    ) -> None:
        self._handler = handler
        self._keep_log = keep_log
        self._sequence = 0
        self.stats = FaultStats()
        self.log: List[FaultEvent] = []

    def set_handler(self, handler: FaultHandlerFn) -> None:
        """Install ``handler`` as the fault handler (replacing the previous one)."""
        self._handler = handler

    @property
    def handler(self) -> Optional[FaultHandlerFn]:
        """The currently installed handler."""
        return self._handler

    def deliver(self, pid: int, page: int, kind: FaultKind, entry: PageTableEntry) -> FaultEvent:
        """Deliver one fault to the handler and account it.

        Returns:
            The fault event that was delivered.
        """
        event = FaultEvent(pid=pid, page=page, kind=kind, sequence=self._sequence)
        self._sequence += 1
        self.stats.record(event)
        entry.fault_count += 1
        if self._keep_log:
            self.log.append(event)
        self._handler(event, entry)
        return event

    def reset(self) -> None:
        """Clear counters and the fault log (handler stays installed)."""
        self._sequence = 0
        self.stats = FaultStats()
        self.log.clear()

"""The shared-memory commit protocol executed at synchronization points.

INSPECTOR implements release consistency the way TreadMarks and Munin did:
a process keeps private copy-on-write copies of the pages it writes, and at
every synchronization point it (1) computes a byte-level diff of each dirty
page against its twin, (2) applies the deltas to the shared mapping with a
last-writer-wins policy for overlapping bytes, and (3) drops its private
copies so that it observes other processes' committed writes afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.memory.address_space import SharedAddressSpace
from repro.memory.cow import ProcessView
from repro.memory.diff import PageDiff, apply_diff, diff_page


@dataclass
class CommitRecord:
    """The outcome of one commit operation.

    Attributes:
        pid: The committing process.
        pages: Number of dirty pages examined.
        modified_bytes: Total bytes actually written to the shared mapping.
        diffs: Per-page diffs (kept only when the committer is configured
            to retain them, e.g. for tests).
    """

    pid: int
    pages: int
    modified_bytes: int
    diffs: List[PageDiff] = field(default_factory=list)


@dataclass
class CommitStats:
    """Aggregate commit counters across the whole run.

    Attributes:
        commits: Number of commit operations performed.
        pages_committed: Total dirty pages examined across commits.
        bytes_committed: Total bytes written to the shared mapping.
        per_pid_commits: Commit count per process.
    """

    commits: int = 0
    pages_committed: int = 0
    bytes_committed: int = 0
    per_pid_commits: Dict[int, int] = field(default_factory=dict)


class SharedMemoryCommitter:
    """Performs the TreadMarks-style commit for simulated processes.

    Args:
        shared: The shared backing store the deltas are merged into.
        keep_diffs: Whether commit records should retain the per-page diffs
            (useful in tests, wasteful in long runs).
    """

    def __init__(self, shared: SharedAddressSpace, keep_diffs: bool = False) -> None:
        self.shared = shared
        self.keep_diffs = keep_diffs
        self.stats = CommitStats()

    def commit(self, view: ProcessView) -> CommitRecord:
        """Merge every dirty page of ``view`` into the shared mapping.

        Overlapping writes from different processes resolve last-writer-wins
        simply because the later commit patches over the earlier one, which
        is exactly the paper's policy.

        Returns:
            A :class:`CommitRecord` describing the work done.
        """
        diffs: List[PageDiff] = []
        modified = 0
        dirty = view.dirty_pages()
        for page in dirty:
            twin = view.twins.get(page)
            current = view.private_pages[page]
            if twin is None:
                # A private page without a twin can only appear if someone
                # bypassed ensure_private_copy(); treat the whole page as new.
                twin = bytes(len(current))
            diff = diff_page(page, twin, bytes(current))
            if not diff.is_empty():
                modified += apply_diff(self.shared.page(page), diff)
            if self.keep_diffs:
                diffs.append(diff)
        view.drop_private_state()
        record = CommitRecord(
            pid=view.pid,
            pages=len(dirty),
            modified_bytes=modified,
            diffs=diffs,
        )
        self.stats.commits += 1
        self.stats.pages_committed += record.pages
        self.stats.bytes_committed += record.modified_bytes
        self.stats.per_pid_commits[view.pid] = self.stats.per_pid_commits.get(view.pid, 0) + 1
        return record

"""MMU-assisted memory-tracking substrate.

This package models the memory half of INSPECTOR's threading library: a
shared, file-backed address space; per-process copy-on-write views; page
protection with fault delivery to a registered handler; the byte-level
diff/commit protocol that implements release consistency; and a heap
allocator so applications can obtain provenance-tracked memory.

Where this package sits in the whole reproduction: ``docs/architecture.md``.
"""

from repro.memory.address_space import SharedAddressSpace, WORD_SIZE
from repro.memory.allocator import HeapAllocator
from repro.memory.cow import ProcessView
from repro.memory.diff import Delta, PageDiff, apply_diff, diff_page
from repro.memory.fault_handler import (
    FaultDispatcher,
    FaultEvent,
    FaultKind,
    FaultStats,
    permissive_handler,
)
from repro.memory.layout import (
    CACHE_LINE_SIZE,
    DEFAULT_PAGE_SIZE,
    Region,
    cache_line_id,
    default_regions,
    page_base,
    page_id,
    page_offset,
    pages_spanned,
)
from repro.memory.mmu import MMU, AccessStats
from repro.memory.page import (
    PROT_NONE,
    PROT_READ,
    PROT_READ_WRITE,
    PROT_WRITE,
    PageTable,
    PageTableEntry,
    prot_to_str,
)
from repro.memory.shared_commit import CommitRecord, CommitStats, SharedMemoryCommitter

__all__ = [
    "SharedAddressSpace",
    "WORD_SIZE",
    "HeapAllocator",
    "ProcessView",
    "Delta",
    "PageDiff",
    "apply_diff",
    "diff_page",
    "FaultDispatcher",
    "FaultEvent",
    "FaultKind",
    "FaultStats",
    "permissive_handler",
    "CACHE_LINE_SIZE",
    "DEFAULT_PAGE_SIZE",
    "Region",
    "cache_line_id",
    "default_regions",
    "page_base",
    "page_id",
    "page_offset",
    "pages_spanned",
    "MMU",
    "AccessStats",
    "PROT_NONE",
    "PROT_READ",
    "PROT_READ_WRITE",
    "PROT_WRITE",
    "PageTable",
    "PageTableEntry",
    "prot_to_str",
    "CommitRecord",
    "CommitStats",
    "SharedMemoryCommitter",
]

"""Pages, protection bits, and per-process page tables.

The real INSPECTOR relies on the hardware MMU: it removes all permissions
from the shared regions at the start of every sub-computation
(``mprotect(PROT_NONE)``) and lets the first read or write of each page
trap into a signal handler.  This module models the same state machine in
software: a :class:`PageTable` stores one :class:`PageTableEntry` per page
per simulated process, and the :class:`~repro.memory.mmu.MMU` consults it
on every access.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator

# Protection bits, mirroring the POSIX mprotect constants the paper uses.
PROT_NONE = 0x0
PROT_READ = 0x1
PROT_WRITE = 0x2
PROT_READ_WRITE = PROT_READ | PROT_WRITE


def prot_to_str(prot: int) -> str:
    """Render a protection bitmask as a compact ``"r"``/``"w"`` string."""
    if prot == PROT_NONE:
        return "---"
    read = "r" if prot & PROT_READ else "-"
    write = "w" if prot & PROT_WRITE else "-"
    return f"{read}{write}-"


@dataclass
class PageTableEntry:
    """Protection and bookkeeping state for one page in one process.

    Attributes:
        prot: Current protection bits for the owning process.
        accessed: Whether the page was read at least once since the last
            protection reset (start of a sub-computation).
        dirty: Whether the page was written at least once since the last
            protection reset.
        fault_count: Number of faults taken on this page since creation;
            used only for statistics.
    """

    prot: int = PROT_NONE
    accessed: bool = False
    dirty: bool = False
    fault_count: int = 0

    def allows(self, write: bool) -> bool:
        """Return ``True`` if the entry permits the requested access."""
        needed = PROT_WRITE if write else PROT_READ
        return bool(self.prot & needed)


@dataclass
class PageTable:
    """Per-process page table mapping page ids to :class:`PageTableEntry`.

    Entries are created lazily with ``PROT_NONE`` (the post-``mprotect``
    state), so a page that has never been touched in the current
    sub-computation traps on first access exactly like the real system.
    """

    default_prot: int = PROT_NONE
    entries: Dict[int, PageTableEntry] = field(default_factory=dict)

    def entry(self, page: int) -> PageTableEntry:
        """Return the entry for ``page``, creating it with the default protection."""
        existing = self.entries.get(page)
        if existing is None:
            existing = PageTableEntry(prot=self.default_prot)
            self.entries[page] = existing
        return existing

    def set_protection(self, page: int, prot: int) -> None:
        """Set the protection bits of ``page`` (creating the entry if needed)."""
        self.entry(page).prot = prot

    def protect_all(self, prot: int) -> None:
        """Apply ``prot`` to every existing entry (``mprotect`` over a range).

        Also clears the accessed/dirty bits, because INSPECTOR re-protects
        the shared regions at the start of every sub-computation and the
        first touch afterwards must trap again.
        """
        for entry in self.entries.values():
            entry.prot = prot
            entry.accessed = False
            entry.dirty = False
        self.default_prot = prot

    def drop(self, page: int) -> None:
        """Forget the entry for ``page`` entirely."""
        self.entries.pop(page, None)

    def dirty_pages(self) -> Iterator[int]:
        """Yield the ids of pages whose dirty bit is set."""
        for page, entry in self.entries.items():
            if entry.dirty:
                yield page

    def accessed_pages(self) -> Iterator[int]:
        """Yield the ids of pages whose accessed bit is set."""
        for page, entry in self.entries.items():
            if entry.accessed:
                yield page

    def __len__(self) -> int:
        return len(self.entries)

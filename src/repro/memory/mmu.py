"""The simulated MMU: protection checks, fault delivery, and data movement.

The MMU is the single entry point for every load and store performed by a
simulated process.  It validates the address, consults the per-process page
table, delivers a fault to the installed handler when the protection does
not permit the access (exactly one fault per page / access kind /
sub-computation, like the real first-touch trap), and finally moves the
bytes through the process's copy-on-write view.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List

from repro.errors import ProtectionError
from repro.memory.address_space import SharedAddressSpace
from repro.memory.cow import ProcessView
from repro.memory.fault_handler import FaultDispatcher, FaultKind
from repro.memory.layout import pages_spanned
from repro.memory.page import PROT_NONE, PROT_READ, PROT_WRITE

_WORD_STRUCT = struct.Struct("<q")
_DOUBLE_STRUCT = struct.Struct("<d")

#: Machine word size used by the word-level helpers (bytes).
WORD_SIZE = 8


@dataclass
class AccessStats:
    """Counters for memory traffic seen by the MMU.

    Attributes:
        loads: Number of load operations (not bytes).
        stores: Number of store operations.
        bytes_read: Total bytes read.
        bytes_written: Total bytes written.
        per_pid_loads: Load count per simulated process.
        per_pid_stores: Store count per simulated process.
    """

    loads: int = 0
    stores: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    per_pid_loads: Dict[int, int] = field(default_factory=dict)
    per_pid_stores: Dict[int, int] = field(default_factory=dict)


class MMU:
    """Software model of the memory-management unit used by INSPECTOR.

    Args:
        shared: The shared backing store.
        dispatcher: The fault dispatcher; its handler implements the
            "record the access and relax the protection" behaviour.
    """

    def __init__(self, shared: SharedAddressSpace, dispatcher: FaultDispatcher | None = None) -> None:
        self.shared = shared
        self.dispatcher = dispatcher if dispatcher is not None else FaultDispatcher()
        self.views: Dict[int, ProcessView] = {}
        self.stats = AccessStats()

    # ------------------------------------------------------------------ #
    # Process management
    # ------------------------------------------------------------------ #

    def register_process(self, pid: int) -> ProcessView:
        """Create (or return) the memory view of process ``pid``."""
        view = self.views.get(pid)
        if view is None:
            view = ProcessView(pid, self.shared)
            self.views[pid] = view
        return view

    def view(self, pid: int) -> ProcessView:
        """Return the registered view for ``pid``.

        Raises:
            KeyError: If the process was never registered.
        """
        return self.views[pid]

    def unregister_process(self, pid: int) -> None:
        """Forget the view of a terminated process."""
        self.views.pop(pid, None)

    # ------------------------------------------------------------------ #
    # Protection management (mprotect equivalents)
    # ------------------------------------------------------------------ #

    def protect_all(self, pid: int, prot: int = PROT_NONE) -> None:
        """Apply ``prot`` to every tracked page of process ``pid``.

        This is the ``mprotect(PROT_NONE)`` performed at the start of every
        sub-computation: it guarantees that the first read and the first
        write of each page trap again.
        """
        self.register_process(pid).page_table.protect_all(prot)

    # ------------------------------------------------------------------ #
    # Access path
    # ------------------------------------------------------------------ #

    def _check_pages(self, view: ProcessView, address: int, size: int, write: bool) -> None:
        """Fault in every page spanned by the access until it is permitted."""
        kind = FaultKind.WRITE if write else FaultKind.READ
        needed = PROT_WRITE if write else PROT_READ
        for page in pages_spanned(address, size, self.shared.page_size):
            entry = view.page_table.entry(page)
            if not entry.prot & needed:
                self.dispatcher.deliver(view.pid, page, kind, entry)
                if not entry.prot & needed:
                    raise ProtectionError(
                        f"pid {view.pid}: access to page {page} still forbidden after fault"
                    )
            if write:
                entry.dirty = True
            entry.accessed = True

    def read(self, pid: int, address: int, size: int) -> bytes:
        """Perform a load of ``size`` bytes on behalf of process ``pid``."""
        region = self.shared.check_range(address, size)
        view = self.register_process(pid)
        if region.tracked:
            self._check_pages(view, address, size, write=False)
        self.stats.loads += 1
        self.stats.bytes_read += size
        self.stats.per_pid_loads[pid] = self.stats.per_pid_loads.get(pid, 0) + 1
        if region.shared:
            return view.read_bytes(address, size)
        return self.shared.read(address, size)

    def write(self, pid: int, address: int, data: bytes) -> None:
        """Perform a store of ``data`` on behalf of process ``pid``."""
        region = self.shared.check_range(address, len(data))
        view = self.register_process(pid)
        if region.tracked:
            self._check_pages(view, address, len(data), write=True)
        self.stats.stores += 1
        self.stats.bytes_written += len(data)
        self.stats.per_pid_stores[pid] = self.stats.per_pid_stores.get(pid, 0) + 1
        if region.shared:
            view.write_bytes(address, data)
        else:
            self.shared.write(address, data)

    # ------------------------------------------------------------------ #
    # Word-level helpers used by the instruction-level program model
    # ------------------------------------------------------------------ #

    def read_word(self, pid: int, address: int) -> int:
        """Load a signed 64-bit integer."""
        return _WORD_STRUCT.unpack(self.read(pid, address, WORD_SIZE))[0]

    def write_word(self, pid: int, address: int, value: int) -> None:
        """Store a signed 64-bit integer."""
        self.write(pid, address, _WORD_STRUCT.pack(int(value)))

    def read_double(self, pid: int, address: int) -> float:
        """Load a 64-bit IEEE-754 double."""
        return _DOUBLE_STRUCT.unpack(self.read(pid, address, WORD_SIZE))[0]

    def write_double(self, pid: int, address: int, value: float) -> None:
        """Store a 64-bit IEEE-754 double."""
        self.write(pid, address, _DOUBLE_STRUCT.pack(float(value)))

    # ------------------------------------------------------------------ #
    # Introspection helpers
    # ------------------------------------------------------------------ #

    def dirty_pages(self, pid: int) -> List[int]:
        """Return the pages privately modified by ``pid`` since its last commit."""
        return self.register_process(pid).dirty_pages()

"""The shared, file-backed portion of the simulated address space.

INSPECTOR maps the globals and heap regions of the application onto memory
mapped files so that the simulated processes (which stand in for threads)
can exchange data at synchronization points.  This module is that shared
backing store: a sparse collection of pages addressed by page id, plus the
region map that says which addresses are valid and which of them are
tracked for provenance.
"""

from __future__ import annotations

import struct
from typing import Dict, Iterable, List, Optional

from repro.errors import InvalidAddressError
from repro.memory.layout import (
    DEFAULT_PAGE_SIZE,
    Region,
    default_regions,
    page_id,
    page_offset,
    pages_spanned,
)

_WORD_STRUCT = struct.Struct("<q")
_DOUBLE_STRUCT = struct.Struct("<d")

#: Size in bytes of the machine word used by :meth:`SharedAddressSpace.read_word`.
WORD_SIZE = 8


class SharedAddressSpace:
    """Sparse byte-addressable shared memory made of fixed-size pages.

    This is the "shared-memory mapped file" of the paper: the single
    authoritative copy of the globals/heap/input regions.  Simulated
    processes never write it directly during a sub-computation -- they
    write their private copy-on-write views and merge the deltas here at
    synchronization points (see :mod:`repro.memory.shared_commit`).

    Args:
        page_size: Page size in bytes.
        regions: Optional explicit region list; defaults to the standard
            globals/heap/input/stack layout.
    """

    def __init__(
        self,
        page_size: int = DEFAULT_PAGE_SIZE,
        regions: Optional[Iterable[Region]] = None,
    ) -> None:
        self.page_size = page_size
        self.regions: List[Region] = list(regions) if regions is not None else default_regions()
        self._pages: Dict[int, bytearray] = {}

    # ------------------------------------------------------------------ #
    # Region handling
    # ------------------------------------------------------------------ #

    def add_region(self, region: Region) -> None:
        """Register an additional region (for example an extra mmap)."""
        self.regions.append(region)

    def region_of(self, address: int) -> Region:
        """Return the region containing ``address``.

        Raises:
            InvalidAddressError: If the address is outside every region.
        """
        for region in self.regions:
            if region.contains(address):
                return region
        raise InvalidAddressError(f"address {address:#x} is not mapped")

    def region_named(self, name: str) -> Region:
        """Return the region called ``name``.

        Raises:
            InvalidAddressError: If no region has that name.
        """
        for region in self.regions:
            if region.name == name:
                return region
        raise InvalidAddressError(f"no region named {name!r}")

    def is_tracked(self, address: int) -> bool:
        """Return ``True`` if accesses to ``address`` are provenance-tracked."""
        return self.region_of(address).tracked

    def check_range(self, address: int, size: int) -> Region:
        """Validate that ``[address, address + size)`` lies inside one region."""
        region = self.region_of(address)
        if size > 0 and not region.contains(address + size - 1):
            raise InvalidAddressError(
                f"access of {size} bytes at {address:#x} crosses the end of region "
                f"{region.name!r}"
            )
        return region

    # ------------------------------------------------------------------ #
    # Page-level access (used by the COW views and the commit protocol)
    # ------------------------------------------------------------------ #

    def page(self, page: int) -> bytearray:
        """Return the backing bytes of ``page``, creating a zero page on demand."""
        existing = self._pages.get(page)
        if existing is None:
            existing = bytearray(self.page_size)
            self._pages[page] = existing
        return existing

    def page_snapshot(self, page: int) -> bytes:
        """Return an immutable copy of ``page`` (used to create twins)."""
        return bytes(self.page(page))

    def materialized_pages(self) -> List[int]:
        """Return the ids of pages that have been materialized so far."""
        return sorted(self._pages)

    # ------------------------------------------------------------------ #
    # Direct byte access (used by the native baseline and by the commit)
    # ------------------------------------------------------------------ #

    def read(self, address: int, size: int) -> bytes:
        """Read ``size`` bytes starting at ``address`` from the shared copy."""
        self.check_range(address, size)
        out = bytearray()
        remaining = size
        cursor = address
        while remaining > 0:
            page = page_id(cursor, self.page_size)
            offset = page_offset(cursor, self.page_size)
            chunk = min(remaining, self.page_size - offset)
            out += self.page(page)[offset : offset + chunk]
            cursor += chunk
            remaining -= chunk
        return bytes(out)

    def write(self, address: int, data: bytes) -> None:
        """Write ``data`` starting at ``address`` into the shared copy."""
        self.check_range(address, len(data))
        cursor = address
        view = memoryview(data)
        while view.nbytes > 0:
            page = page_id(cursor, self.page_size)
            offset = page_offset(cursor, self.page_size)
            chunk = min(view.nbytes, self.page_size - offset)
            self.page(page)[offset : offset + chunk] = view[:chunk]
            cursor += chunk
            view = view[chunk:]

    def read_word(self, address: int) -> int:
        """Read a signed 64-bit little-endian integer at ``address``."""
        return _WORD_STRUCT.unpack(self.read(address, WORD_SIZE))[0]

    def write_word(self, address: int, value: int) -> None:
        """Write a signed 64-bit little-endian integer at ``address``."""
        self.write(address, _WORD_STRUCT.pack(value))

    def read_double(self, address: int) -> float:
        """Read a 64-bit IEEE-754 double at ``address``."""
        return _DOUBLE_STRUCT.unpack(self.read(address, WORD_SIZE))[0]

    def write_double(self, address: int, value: float) -> None:
        """Write a 64-bit IEEE-754 double at ``address``."""
        self.write(address, _DOUBLE_STRUCT.pack(value))

    # ------------------------------------------------------------------ #
    # Convenience helpers
    # ------------------------------------------------------------------ #

    def pages_for(self, address: int, size: int) -> List[int]:
        """Return the page ids spanned by an access (validated)."""
        self.check_range(address, size)
        return pages_spanned(address, size, self.page_size)

    def load_input(self, data: bytes, offset: int = 0) -> int:
        """Copy ``data`` into the input region and return its base address.

        This models the ``mmap`` input shim of the paper: the input file is
        mapped into a dedicated region so that the data flow from the input
        is recorded through the same page-protection machinery.
        """
        base = self.region_named("input").base + offset
        self.write(base, data)
        return base

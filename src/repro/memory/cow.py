"""Per-process copy-on-write views of the shared address space.

INSPECTOR runs every thread as a separate process whose globals and heap
are ``MAP_PRIVATE`` mappings of the shared memory-mapped file.  The kernel
therefore gives each "thread" a private copy of any page it writes, and the
library merges those copies back at synchronization points.  A
:class:`ProcessView` models exactly that: a private page cache plus the
*twin* snapshots needed to compute commit diffs.
"""

from __future__ import annotations

from typing import Dict, List

from repro.memory.address_space import SharedAddressSpace
from repro.memory.layout import page_id, page_offset
from repro.memory.page import PROT_NONE, PageTable


class ProcessView:
    """The private memory view of one simulated process.

    Attributes:
        pid: Identifier of the owning simulated process.
        shared: The shared backing store.
        page_table: Per-process protection state (consulted by the MMU).
        private_pages: Copy-on-write page copies created on first write.
        twins: Pristine snapshots of each privately copied page, taken at
            copy time and used to compute the commit diff.
    """

    def __init__(self, pid: int, shared: SharedAddressSpace) -> None:
        self.pid = pid
        self.shared = shared
        self.page_table = PageTable(default_prot=PROT_NONE)
        self.private_pages: Dict[int, bytearray] = {}
        self.twins: Dict[int, bytes] = {}

    # ------------------------------------------------------------------ #
    # Copy-on-write plumbing
    # ------------------------------------------------------------------ #

    def has_private_copy(self, page: int) -> bool:
        """Return ``True`` if the process already owns a private copy of ``page``."""
        return page in self.private_pages

    def ensure_private_copy(self, page: int) -> bytearray:
        """Return the private copy of ``page``, creating it (and its twin) on demand.

        This is the software equivalent of the kernel's copy-on-write fault:
        the shared contents are duplicated and the pristine duplicate is
        retained as the twin for later diffing.
        """
        existing = self.private_pages.get(page)
        if existing is not None:
            return existing
        snapshot = self.shared.page_snapshot(page)
        self.twins[page] = snapshot
        copy = bytearray(snapshot)
        self.private_pages[page] = copy
        return copy

    def drop_private_state(self) -> None:
        """Discard every private copy and twin (done after a commit).

        After the commit the process must observe the shared state again, so
        keeping stale private copies would violate release consistency.
        """
        self.private_pages.clear()
        self.twins.clear()

    def dirty_pages(self) -> List[int]:
        """Return the ids of pages this process has privately modified."""
        return sorted(self.private_pages)

    # ------------------------------------------------------------------ #
    # Raw data movement (protection checks happen in the MMU, not here)
    # ------------------------------------------------------------------ #

    def read_bytes(self, address: int, size: int) -> bytes:
        """Read ``size`` bytes at ``address`` preferring the private copies."""
        out = bytearray()
        remaining = size
        cursor = address
        page_size = self.shared.page_size
        while remaining > 0:
            page = page_id(cursor, page_size)
            offset = page_offset(cursor, page_size)
            chunk = min(remaining, page_size - offset)
            source = self.private_pages.get(page)
            if source is None:
                source = self.shared.page(page)
            out += source[offset : offset + chunk]
            cursor += chunk
            remaining -= chunk
        return bytes(out)

    def write_bytes(self, address: int, data: bytes) -> None:
        """Write ``data`` at ``address`` into private copy-on-write pages."""
        cursor = address
        view = memoryview(data)
        page_size = self.shared.page_size
        while view.nbytes > 0:
            page = page_id(cursor, page_size)
            offset = page_offset(cursor, page_size)
            chunk = min(view.nbytes, page_size - offset)
            target = self.ensure_private_copy(page)
            target[offset : offset + chunk] = view[:chunk]
            cursor += chunk
            view = view[chunk:]

"""Address-space layout constants and helpers.

The simulated address space mirrors the layout INSPECTOR cares about: the
*globals* and *heap* regions are shared between the simulated processes and
are the ones whose pages are tracked with page protection; the *input*
region models ``mmap``-ed input files (the paper's input shim records the
data flow from the input through the same protection mechanism); the
*stack* region is private per process and never tracked, exactly as the
real library leaves thread stacks alone.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Default page size used by the simulated MMU (bytes).  The real system
#: uses the hardware 4 KiB page; tests frequently shrink this to make
#: page-granularity effects visible on tiny working sets.
DEFAULT_PAGE_SIZE = 4096

#: Default cache-line size used by the false-sharing model (bytes).
CACHE_LINE_SIZE = 64

#: Base addresses of the well-known regions.  They are spaced far apart so
#: that a region can grow without colliding with its neighbour.
GLOBALS_BASE = 0x1000_0000
HEAP_BASE = 0x2000_0000
INPUT_BASE = 0x4000_0000
STACK_BASE = 0x7000_0000

#: Default sizes (bytes) for the well-known regions.
GLOBALS_SIZE = 16 * 1024 * 1024
HEAP_SIZE = 256 * 1024 * 1024
INPUT_SIZE = 256 * 1024 * 1024
STACK_SIZE = 16 * 1024 * 1024


@dataclass(frozen=True)
class Region:
    """A contiguous range of the simulated virtual address space.

    Attributes:
        name: Human-readable region name (``"heap"``, ``"globals"`` ...).
        base: First valid address of the region.
        size: Region length in bytes.
        tracked: Whether accesses to this region participate in provenance
            tracking (page protection + read/write sets).  Stacks are not
            tracked, matching the paper's implementation.
        shared: Whether the region is part of the shared-memory commit
            protocol (globals and heap are; the input region is shared but
            read-only in practice; stacks are private).
    """

    name: str
    base: int
    size: int
    tracked: bool = True
    shared: bool = True

    @property
    def end(self) -> int:
        """One past the last valid address of the region."""
        return self.base + self.size

    def contains(self, address: int) -> bool:
        """Return ``True`` if ``address`` falls inside this region."""
        return self.base <= address < self.end


def default_regions() -> list[Region]:
    """Return the default region set used by the simulated address space."""
    return [
        Region("globals", GLOBALS_BASE, GLOBALS_SIZE, tracked=True, shared=True),
        Region("heap", HEAP_BASE, HEAP_SIZE, tracked=True, shared=True),
        Region("input", INPUT_BASE, INPUT_SIZE, tracked=True, shared=True),
        Region("stack", STACK_BASE, STACK_SIZE, tracked=False, shared=False),
    ]


def page_id(address: int, page_size: int = DEFAULT_PAGE_SIZE) -> int:
    """Return the page identifier (page number) containing ``address``."""
    return address // page_size


def page_base(address: int, page_size: int = DEFAULT_PAGE_SIZE) -> int:
    """Return the base address of the page containing ``address``."""
    return (address // page_size) * page_size


def page_offset(address: int, page_size: int = DEFAULT_PAGE_SIZE) -> int:
    """Return the offset of ``address`` within its page."""
    return address % page_size


def pages_spanned(address: int, size: int, page_size: int = DEFAULT_PAGE_SIZE) -> list[int]:
    """Return the list of page ids touched by an access of ``size`` bytes.

    Args:
        address: Start address of the access.
        size: Length of the access in bytes; must be positive.
        page_size: Page size in bytes.

    Returns:
        Page ids in ascending order.  A zero-length access touches no page.
    """
    if size <= 0:
        return []
    first = page_id(address, page_size)
    last = page_id(address + size - 1, page_size)
    return list(range(first, last + 1))


def cache_line_id(address: int, line_size: int = CACHE_LINE_SIZE) -> int:
    """Return the cache-line identifier containing ``address``."""
    return address // line_size

"""Byte-level page diffing (the "twin and diff" mechanism of TreadMarks).

At a synchronization point every simulated process compares each dirty
private page against the *twin* -- the pristine copy of the page taken when
the process first wrote it -- and produces a compact list of deltas.  The
deltas are then applied atomically to the shared page, which implements the
shared-memory commit with a last-writer-wins policy for overlapping writes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence


@dataclass(frozen=True)
class Delta:
    """A single modified byte range within one page.

    Attributes:
        offset: Byte offset of the run within the page.
        data: The new bytes for that run.
    """

    offset: int
    data: bytes

    @property
    def length(self) -> int:
        """Number of bytes covered by this delta."""
        return len(self.data)


@dataclass(frozen=True)
class PageDiff:
    """The set of deltas produced for one dirty page.

    Attributes:
        page: Page id the diff applies to.
        deltas: Modified byte runs, in ascending offset order.
    """

    page: int
    deltas: Sequence[Delta]

    @property
    def modified_bytes(self) -> int:
        """Total number of modified bytes in this diff."""
        return sum(delta.length for delta in self.deltas)

    def is_empty(self) -> bool:
        """Return ``True`` if the page turned out not to differ from its twin."""
        return not self.deltas


def diff_page(page: int, twin: bytes, current: bytes) -> PageDiff:
    """Compute the byte-level diff between ``twin`` and ``current``.

    Args:
        page: Page id (recorded in the returned diff).
        twin: The pristine copy taken when the page was first written.
        current: The process-private copy at commit time.

    Returns:
        A :class:`PageDiff` containing maximal runs of modified bytes.

    Raises:
        ValueError: If the two buffers have different lengths.
    """
    if len(twin) != len(current):
        raise ValueError(
            f"twin and current page must be the same size ({len(twin)} != {len(current)})"
        )
    deltas: List[Delta] = []
    run_start = -1
    for index, (old, new) in enumerate(zip(twin, current)):
        if old != new:
            if run_start < 0:
                run_start = index
        elif run_start >= 0:
            deltas.append(Delta(run_start, bytes(current[run_start:index])))
            run_start = -1
    if run_start >= 0:
        deltas.append(Delta(run_start, bytes(current[run_start:])))
    return PageDiff(page=page, deltas=deltas)


def apply_diff(target: bytearray, diff: PageDiff) -> int:
    """Apply ``diff`` to ``target`` in place (last writer wins).

    Args:
        target: The shared page to patch.
        diff: Deltas produced by :func:`diff_page`.

    Returns:
        The number of bytes written.

    Raises:
        ValueError: If a delta falls outside the target page.
    """
    written = 0
    for delta in diff.deltas:
        end = delta.offset + delta.length
        if end > len(target):
            raise ValueError(
                f"delta [{delta.offset}, {end}) exceeds page size {len(target)}"
            )
        target[delta.offset : end] = delta.data
        written += delta.length
    return written


def merge_diffs(diffs: Sequence[PageDiff]) -> int:
    """Return the total number of modified bytes across ``diffs``.

    Used by the statistics layer to account commit traffic.
    """
    return sum(diff.modified_bytes for diff in diffs)

"""A simple first-fit free-list allocator over the simulated heap region.

INSPECTOR wraps ``malloc``-family calls so that heap objects live in the
shared memory-mapped region and are therefore visible to the page-based
provenance tracking.  This allocator provides the same service for the
simulated address space.  Workloads obtain addresses from it and then issue
loads and stores through the program API, so every heap byte participates
in provenance exactly as it would under the real library.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import AllocationError, DoubleFreeError
from repro.memory.address_space import SharedAddressSpace

#: Default allocation alignment in bytes (matches glibc's 16-byte alignment).
DEFAULT_ALIGNMENT = 16


def _align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to the next multiple of ``alignment``."""
    return (value + alignment - 1) // alignment * alignment


@dataclass
class AllocatorStats:
    """Counters describing allocator activity.

    Attributes:
        allocations: Number of successful ``malloc`` calls.
        frees: Number of successful ``free`` calls.
        bytes_allocated: Total bytes handed out (after alignment).
        bytes_freed: Total bytes returned.
        live_bytes: Bytes currently allocated.
        peak_bytes: High-water mark of live bytes.
    """

    allocations: int = 0
    frees: int = 0
    bytes_allocated: int = 0
    bytes_freed: int = 0
    live_bytes: int = 0
    peak_bytes: int = 0


class HeapAllocator:
    """First-fit free-list allocator for a region of the shared address space.

    Args:
        space: The shared address space providing the region.
        region_name: Which region to allocate from (default ``"heap"``).
        alignment: Allocation alignment in bytes.
    """

    def __init__(
        self,
        space: SharedAddressSpace,
        region_name: str = "heap",
        alignment: int = DEFAULT_ALIGNMENT,
    ) -> None:
        region = space.region_named(region_name)
        if alignment <= 0 or alignment & (alignment - 1):
            raise AllocationError(f"alignment must be a positive power of two, got {alignment}")
        self.space = space
        self.region = region
        self.alignment = alignment
        # Free list of (base, size) holes, kept sorted by base address.
        self._free: List[Tuple[int, int]] = [(region.base, region.size)]
        self._allocated: Dict[int, int] = {}
        self.stats = AllocatorStats()

    # ------------------------------------------------------------------ #
    # Allocation API
    # ------------------------------------------------------------------ #

    def malloc(self, size: int) -> int:
        """Allocate ``size`` bytes and return the base address.

        Raises:
            AllocationError: If ``size`` is not positive or no hole fits.
        """
        if size <= 0:
            raise AllocationError(f"cannot allocate {size} bytes")
        needed = _align_up(size, self.alignment)
        for index, (base, hole) in enumerate(self._free):
            if hole >= needed:
                remaining = hole - needed
                if remaining > 0:
                    self._free[index] = (base + needed, remaining)
                else:
                    del self._free[index]
                self._allocated[base] = needed
                self.stats.allocations += 1
                self.stats.bytes_allocated += needed
                self.stats.live_bytes += needed
                self.stats.peak_bytes = max(self.stats.peak_bytes, self.stats.live_bytes)
                return base
        raise AllocationError(
            f"out of simulated heap: requested {needed} bytes, "
            f"largest hole is {max((h for _, h in self._free), default=0)} bytes"
        )

    def calloc(self, count: int, size: int) -> int:
        """Allocate ``count * size`` zeroed bytes and return the base address."""
        total = count * size
        address = self.malloc(total)
        self.space.write(address, bytes(total))
        return address

    def free(self, address: int) -> None:
        """Release a previously allocated block.

        Raises:
            DoubleFreeError: If ``address`` was not returned by :meth:`malloc`
                or was already freed.
        """
        size = self._allocated.pop(address, None)
        if size is None:
            raise DoubleFreeError(f"free of unallocated address {address:#x}")
        self.stats.frees += 1
        self.stats.bytes_freed += size
        self.stats.live_bytes -= size
        self._insert_hole(address, size)

    def allocation_size(self, address: int) -> int:
        """Return the (aligned) size of the live allocation at ``address``."""
        size = self._allocated.get(address)
        if size is None:
            raise DoubleFreeError(f"address {address:#x} is not a live allocation")
        return size

    def live_allocations(self) -> Dict[int, int]:
        """Return a copy of the live allocation map (address -> size)."""
        return dict(self._allocated)

    # ------------------------------------------------------------------ #
    # Internal free-list maintenance
    # ------------------------------------------------------------------ #

    def _insert_hole(self, base: int, size: int) -> None:
        """Insert a hole into the free list, coalescing with its neighbours."""
        self._free.append((base, size))
        self._free.sort()
        coalesced: List[Tuple[int, int]] = []
        for hole_base, hole_size in self._free:
            if coalesced and coalesced[-1][0] + coalesced[-1][1] == hole_base:
                prev_base, prev_size = coalesced[-1]
                coalesced[-1] = (prev_base, prev_size + hole_size)
            else:
                coalesced.append((hole_base, hole_size))
        self._free = coalesced

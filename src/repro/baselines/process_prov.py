"""A process-granularity provenance baseline (PASS / LPM style).

Systems like PASS and the Linux Provenance Module record provenance at the
granularity of whole processes: "process P read file A and wrote file B".
The paper positions INSPECTOR against that class of systems by tracking
*within* the multithreaded program at sub-computation granularity.  To make
the comparison concrete, this baseline collapses a CPG to one vertex per
thread (the whole "process" in the threads-as-processes design) and keeps
only input/output-level data edges.  The examples and the ablation
benchmark use it to quantify how much precision page-level sub-computation
tracking buys (slice sizes, number of distinguishable dependencies).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Set

from repro.core.cpg import ConcurrentProvenanceGraph, EdgeKind
from repro.core.thunk import INPUT_TID, SubComputation
from repro.core.vector_clock import VectorClock


def collapse_to_process_granularity(cpg: ConcurrentProvenanceGraph) -> ConcurrentProvenanceGraph:
    """Collapse ``cpg`` to one vertex per thread.

    Every sub-computation of a thread is merged into a single vertex whose
    read and write sets are the unions of its members'.  Data edges are
    re-derived at that coarse granularity: thread B depends on thread A if
    any page written by A is read by B (regardless of ordering detail --
    the coarse graph cannot express more).  The virtual input node is kept.
    """
    coarse = ConcurrentProvenanceGraph()
    merged: Dict[int, SubComputation] = {}
    for node in cpg.subcomputations():
        if node.tid == INPUT_TID:
            coarse.add_subcomputation(
                SubComputation(tid=INPUT_TID, index=0, write_set=set(node.write_set))
            )
            continue
        bucket = merged.get(node.tid)
        if bucket is None:
            bucket = SubComputation(tid=node.tid, index=0, clock=VectorClock({node.tid: 1}))
            merged[node.tid] = bucket
        bucket.read_set |= node.read_set
        bucket.write_set |= node.write_set
        bucket.faults += node.faults
    for bucket in merged.values():
        coarse.add_subcomputation(bucket)

    # Re-derive coarse data edges: writer thread -> reader thread.
    writers: Dict[int, Set[int]] = defaultdict(set)
    for node in coarse.subcomputations():
        for page in node.write_set:
            writers[page].add(node.tid)
    linked = set()
    for node in coarse.subcomputations():
        for page in node.read_set:
            for writer_tid in writers.get(page, ()):  # includes the input node
                if writer_tid == node.tid:
                    continue
                key = (writer_tid, node.tid)
                if key in linked:
                    continue
                linked.add(key)
                pages = coarse.subcomputation((writer_tid, 0)).write_set & node.read_set
                coarse.add_data_edge((writer_tid, 0), (node.tid, 0), pages)
    return coarse


def precision_comparison(cpg: ConcurrentProvenanceGraph) -> Dict[str, float]:
    """Compare the CPG against its process-granularity collapse.

    Returns a dictionary with the vertex/edge counts of both graphs and the
    precision ratio (how many distinct dependencies the fine-grained graph
    distinguishes per coarse dependency).
    """
    coarse = collapse_to_process_granularity(cpg)
    fine_edges = cpg.edge_count(EdgeKind.DATA)
    coarse_edges = coarse.edge_count(EdgeKind.DATA)
    return {
        "fine_nodes": float(len(cpg)),
        "coarse_nodes": float(len(coarse)),
        "fine_data_edges": float(fine_edges),
        "coarse_data_edges": float(coarse_edges),
        "precision_ratio": float(fine_edges) / coarse_edges if coarse_edges else float(fine_edges),
    }

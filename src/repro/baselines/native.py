"""The native pthreads baseline (the 1x every figure normalizes against).

The same workload code runs on the same cooperative runtime, but through
the :class:`NativeBackend`: memory goes straight to the shared address
space with no page protection, no copy-on-write, no commit, and no PT
tracing.  The backend still counts events -- including stores to cache
lines shared between threads, which is what the cost model charges the
native execution for (false sharing) and what INSPECTOR's threads-as-
processes design avoids.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional

from repro.inspector.config import InspectorConfig
from repro.inspector.costmodel import CostModel, CostParameters
from repro.inspector.session import make_scheduler
from repro.inspector.stats import RunStats
from repro.memory.address_space import SharedAddressSpace
from repro.threads.backend import DirectBackend
from repro.threads.program import ProgramAPI
from repro.threads.runtime import SimRuntime
from repro.workloads.base import DatasetSpec, InputDescriptor, Workload


class NativeBackend(DirectBackend):
    """The plain pthreads execution mode.

    Identical to :class:`~repro.threads.backend.DirectBackend`; the alias
    exists so the baseline reads as what it is in the benchmarks and so the
    false-sharing accounting has a clearly named home.
    """


@dataclass
class NativeRunResult:
    """Everything produced by one native (pthreads) run.

    Attributes:
        workload: Name of the workload that ran.
        result: The workload's return value.
        stats: Runtime statistics with the cost model applied.
        dataset: The dataset the workload consumed.
        backend: The backend, exposed for tests.
    """

    workload: str
    result: Any
    stats: RunStats
    dataset: Optional[DatasetSpec] = None
    backend: Optional[NativeBackend] = None
    outputs: List[bytes] = field(default_factory=list)


class NativeSession:
    """Runs workloads under the plain pthreads model.

    Args:
        config: Reused INSPECTOR configuration (only the page size and the
            scheduler settings matter for a native run).
        cost_params: Optional cost-model parameter overrides.
    """

    def __init__(
        self,
        config: Optional[InspectorConfig] = None,
        cost_params: Optional[CostParameters] = None,
    ) -> None:
        self.config = config if config is not None else InspectorConfig()
        self.config.validate()
        self.cost_model = CostModel(cost_params)

    def run(
        self,
        workload: Workload,
        num_threads: int = 4,
        size: str = "medium",
        dataset: Optional[DatasetSpec] = None,
        seed: int = 42,
    ) -> NativeRunResult:
        """Execute ``workload`` natively (no provenance)."""
        if num_threads <= 0:
            raise ValueError(f"num_threads must be positive, got {num_threads}")
        spec = dataset if dataset is not None else workload.generate_dataset(size=size, seed=seed)
        space = SharedAddressSpace(page_size=self.config.page_size)
        backend = NativeBackend(space=space)
        base = backend.load_input(spec.payload)
        descriptor = InputDescriptor(base=base, size=len(spec.payload), meta=spec.meta)
        runtime = SimRuntime(scheduler=make_scheduler(self.config), backend=backend)

        def entry(proc):
            api = ProgramAPI(runtime, backend, proc)
            return workload.run(api, descriptor, num_threads)

        result = runtime.run(entry, name=f"{workload.name}-main")
        stats = self._collect_stats(workload, num_threads, spec, backend, runtime)
        return NativeRunResult(
            workload=workload.name,
            result=result,
            stats=stats,
            dataset=spec,
            backend=backend,
            outputs=list(backend.outputs),
        )

    def _collect_stats(
        self,
        workload: Workload,
        num_threads: int,
        dataset: DatasetSpec,
        backend: NativeBackend,
        runtime: SimRuntime,
    ) -> RunStats:
        counters = backend.counters
        stats = RunStats(
            workload=workload.name,
            mode="native",
            threads=num_threads,
            input_bytes=dataset.size_bytes,
            instructions=counters.instructions,
            loads=counters.loads,
            stores=counters.stores,
            branches=counters.branches,
            indirect_branches=counters.indirect_branches,
            compute_units=counters.compute_units,
            per_thread_instructions=dict(counters.per_tid_instructions),
            sync_ops=counters.sync_ops,
            process_creations=runtime.process_creations,
            context_switches=runtime.context_switches,
            allocations=counters.allocations,
            false_sharing_stores=backend.false_sharing_stores,
        )
        return self.cost_model.apply(stats)

"""Baselines the reproduction compares against: native pthreads and
process-granularity provenance."""

from repro.baselines.native import NativeBackend, NativeRunResult, NativeSession
from repro.baselines.process_prov import collapse_to_process_granularity, precision_comparison

__all__ = [
    "NativeBackend",
    "NativeRunResult",
    "NativeSession",
    "collapse_to_process_granularity",
    "precision_comparison",
]

"""Baselines the reproduction compares against: native pthreads and
process-granularity provenance.

Where this package sits in the whole reproduction: ``docs/architecture.md``.
"""

from repro.baselines.native import NativeBackend, NativeRunResult, NativeSession
from repro.baselines.process_prov import collapse_to_process_granularity, precision_comparison

__all__ = [
    "NativeBackend",
    "NativeRunResult",
    "NativeSession",
    "collapse_to_process_granularity",
    "precision_comparison",
]

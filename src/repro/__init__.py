"""INSPECTOR reproduction: data provenance for multithreaded programs.

This package reproduces the system described in "INSPECTOR: Data
Provenance Using Intel Processor Trace (PT)" (Thalheim, Bhatotia, Fetzer;
ICDCS 2016) as a pure-Python simulation: a threading library that runs
threads as processes over a release-consistent shared memory, an Intel PT
model for control-flow tracing, and a provenance core that assembles the
Concurrent Provenance Graph (CPG).

The most convenient entry points live in :mod:`repro.inspector.api`:

* ``run_with_provenance(workload, ...)`` -- run a workload under the
  INSPECTOR library and obtain its CPG plus runtime statistics.
* ``run_native(workload, ...)`` -- run the same workload under the plain
  pthreads model (the baseline the paper normalizes against).

Provenance graphs can outlive the run: pass ``store_path=`` to stream the
CPG into a persistent store (:mod:`repro.store`) and query it later --
out of core -- through :class:`repro.store.StoreQueryEngine` or the
``python -m repro.store`` command line.  One store holds many traced
runs, each under its own run id, so executions can be queried
individually, across runs, or diffed against each other.

A package-by-package map of the whole reproduction lives in
``docs/architecture.md``.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]

"""Derivation of data-dependence (update-use) edges.

The tracker records read and write sets per sub-computation and the
happens-before partial order (control + synchronization edges).  Data
dependence edges are derived from those two ingredients: a sub-computation
``n`` depends on ``m`` for page ``p`` when ``m`` wrote ``p``, ``n`` read
``p``, ``m`` happens-before ``n``, and no other writer of ``p`` lies
between them in the partial order (closer writers shadow farther ones, the
same way a later store to the same page supersedes an earlier one under
the last-writer-wins commit).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Set, Tuple

from repro.core.cpg import ConcurrentProvenanceGraph, EdgeKind
from repro.core.thunk import INPUT_NODE, NodeId


def derive_data_edges(cpg: ConcurrentProvenanceGraph) -> int:
    """Add update-use edges to ``cpg`` and return how many were added.

    The derivation walks the vertices in a linear extension of the recorded
    partial order (control + sync edges), keeping, for every page, the list
    of writers seen so far.  For each reader it links the *latest* writers
    that happen-before it -- writers that are themselves ordered before
    another eligible writer are shadowed and produce no edge.

    The virtual input node (when present) is treated as the earliest writer
    of every input page, so first readers of the input get an edge from it.
    """
    order = cpg.topological_order()
    if cpg.input_node is not None and cpg.input_node in order:
        order.remove(cpg.input_node)
    if cpg.input_node is not None:
        order.insert(0, cpg.input_node)

    writers_by_page: Dict[int, List[NodeId]] = defaultdict(list)
    edges_added = 0
    # Pairs already linked (source, target) -> pages, to merge multi-page
    # dependencies into a single labelled edge.
    pending: Dict[Tuple[NodeId, NodeId], Set[int]] = defaultdict(set)

    for node_id in order:
        node = cpg.subcomputation(node_id)
        # 1. resolve this node's reads against earlier writers
        for page in sorted(node.read_set):
            sources = _latest_writers(cpg, writers_by_page.get(page, []), node_id)
            for source in sources:
                pending[(source, node_id)].add(page)
        # 2. register this node's writes
        for page in node.write_set:
            writers_by_page[page].append(node_id)

    for (source, target), pages in pending.items():
        if source == target:
            continue
        cpg.add_data_edge(source, target, pages)
        edges_added += 1
    return edges_added


def _latest_writers(
    cpg: ConcurrentProvenanceGraph, writers: List[NodeId], reader: NodeId
) -> List[NodeId]:
    """Return the maximal writers (by happens-before) that precede ``reader``.

    ``writers`` is in insertion order, which is a linear extension of the
    partial order, so scanning it backwards visits later writers first; a
    writer is skipped if a previously selected writer already supersedes it
    (i.e. the earlier writer happens-before the selected one).
    """
    selected: List[NodeId] = []
    for candidate in reversed(writers):
        if candidate == reader:
            continue
        if not _precedes(cpg, candidate, reader):
            continue
        if any(_precedes(cpg, candidate, chosen) for chosen in selected):
            continue
        selected.append(candidate)
    return selected


def _precedes(cpg: ConcurrentProvenanceGraph, first: NodeId, second: NodeId) -> bool:
    """Happens-before test that treats the virtual input node as earliest."""
    if first == INPUT_NODE:
        return second != INPUT_NODE
    if second == INPUT_NODE:
        return False
    return cpg.happens_before(first, second)


def data_dependencies_of(
    cpg: ConcurrentProvenanceGraph, node_id: NodeId
) -> List[Tuple[NodeId, frozenset]]:
    """Return ``(source, pages)`` for every data edge ending at ``node_id``."""
    result = []
    for source, target, attrs in cpg.edges(EdgeKind.DATA):
        if target == node_id:
            result.append((source, attrs.get("pages", frozenset())))
    return result


def readers_of_pages(cpg: ConcurrentProvenanceGraph, pages: Iterable[int]) -> Set[NodeId]:
    """Return every sub-computation whose read set intersects ``pages``."""
    wanted = set(pages)
    return {
        node.node_id
        for node in cpg.subcomputations()
        if node.read_set & wanted
    }


def writers_of_pages(cpg: ConcurrentProvenanceGraph, pages: Iterable[int]) -> Set[NodeId]:
    """Return every sub-computation whose write set intersects ``pages``."""
    wanted = set(pages)
    return {
        node.node_id
        for node in cpg.subcomputations()
        if node.write_set & wanted
    }

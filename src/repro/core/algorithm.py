"""The parallel provenance algorithm (Algorithms 1 and 2 of the paper).

The :class:`ProvenanceTracker` is the decentralized recording algorithm:
each thread owns a vector clock and a current sub-computation; loads and
stores update the read/write sets (at page granularity, driven by the MMU
fault handler); branches extend the thunk list; and synchronization
operations end the current sub-computation, propagate clocks through the
synchronization object, and start the next one.

The tracker is deliberately independent of the execution machinery -- it is
driven entirely through ``on_*`` callbacks -- so it can be unit-tested with
hand-written event sequences and reused by the snapshot facility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.cpg import ConcurrentProvenanceGraph, EdgeKind
from repro.core.events import (
    BranchEvent,
    EventLog,
    MemoryAccessEvent,
    OutputEvent,
    SyncOperationEvent,
    SyncSemantics,
    ThreadEndEvent,
    ThreadStartEvent,
)
from repro.core.thunk import BranchRecord, NodeId, SubComputation, make_input_node
from repro.core.vector_clock import VectorClock
from repro.errors import ProvenanceError


@dataclass
class _ThreadState:
    """Per-thread recording state (the paper's ``alpha``, ``C_t``, ``L_t``)."""

    tid: int
    alpha: int = 0
    clock: VectorClock = field(default_factory=VectorClock)
    current: Optional[SubComputation] = None
    last_node: Optional[NodeId] = None
    pending_acquire_sources: List[Tuple[NodeId, int, str]] = field(default_factory=list)
    pending_start_label: Optional[str] = None
    finished: bool = False


@dataclass
class TrackerStats:
    """Counters describing what the tracker recorded."""

    subcomputations: int = 0
    sync_acquires: int = 0
    sync_releases: int = 0
    branch_events: int = 0
    memory_events: int = 0
    threads: int = 0


class ProvenanceTracker:
    """Builds the Concurrent Provenance Graph while the program executes.

    Args:
        keep_event_log: Whether to keep the flat ordered event log (used by
            the snapshot facility and several tests; adds memory overhead).
    """

    def __init__(self, keep_event_log: bool = False) -> None:
        self.cpg = ConcurrentProvenanceGraph()
        self.stats = TrackerStats()
        self._threads: Dict[int, _ThreadState] = {}
        #: synchronization clock C_S per synchronization object id
        self._sync_clocks: Dict[int, VectorClock] = {}
        #: last sub-computation that released each synchronization object
        self._last_releaser: Dict[int, NodeId] = {}
        self._event_log = EventLog() if keep_event_log else None
        self._input_pages: Set[int] = set()
        #: observers notified as sub-computations are published (store sinks)
        self._listeners: List[object] = []

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def event_log(self) -> Optional[EventLog]:
        """The flat event log, when enabled."""
        return self._event_log

    def thread_clock(self, tid: int) -> VectorClock:
        """Return a copy of thread ``tid``'s current clock."""
        return self._state(tid).clock.copy()

    def sync_clock(self, object_id: int) -> VectorClock:
        """Return a copy of the synchronization clock of ``object_id``."""
        return self._sync_clocks.setdefault(object_id, VectorClock()).copy()

    def current_subcomputation(self, tid: int) -> Optional[SubComputation]:
        """The open sub-computation of ``tid`` (``None`` before start/after end)."""
        state = self._threads.get(tid)
        return state.current if state is not None else None

    def _state(self, tid: int) -> _ThreadState:
        state = self._threads.get(tid)
        if state is None:
            raise ProvenanceError(f"thread {tid} was never started in the tracker")
        return state

    def add_listener(self, listener: object) -> None:
        """Register an observer of published sub-computations.

        ``listener.subcomputation_published(node, edges)`` is called every
        time a sub-computation is closed and added to the CPG (and once for
        the virtual input node at finalisation).  ``edges`` is the list of
        ``(source, target, kind, attributes)`` tuples recorded together
        with the vertex -- its incoming control and synchronization edges.
        The persistent store's ingest sink uses this to stream the graph to
        disk while the program is still running.
        """
        self._listeners.append(listener)

    def _notify(self, node: SubComputation, edges: List[Tuple]) -> None:
        for listener in self._listeners:
            listener.subcomputation_published(node, edges)

    # ------------------------------------------------------------------ #
    # Input registration
    # ------------------------------------------------------------------ #

    def register_input_pages(self, pages: Set[int]) -> None:
        """Declare ``pages`` as holding program input.

        The pages become the write set of the virtual input node, so reads
        of the input produce ordinary update-use edges in the CPG.
        """
        self._input_pages.update(pages)

    @property
    def input_pages(self) -> Set[int]:
        """Pages registered as program input."""
        return set(self._input_pages)

    # ------------------------------------------------------------------ #
    # Thread lifecycle (initThread / thread exit)
    # ------------------------------------------------------------------ #

    def on_thread_start(
        self,
        tid: int,
        parent_tid: Optional[int] = None,
        start_object_id: Optional[int] = None,
    ) -> None:
        """``initThread(t)``: initialise the thread state and its first sub-computation.

        Args:
            tid: The starting thread.
            parent_tid: The creating thread, if any (main has none).
            start_object_id: Id of the thread-start token released by the
                parent at ``pthread_create`` time; when given, the child
                acquires it before its first sub-computation begins so the
                creation happens-before everything the child does.
        """
        if tid in self._threads:
            raise ProvenanceError(f"thread {tid} started twice")
        state = _ThreadState(tid=tid)
        self._threads[tid] = state
        self.stats.threads += 1
        if self._event_log is not None:
            self._event_log.append(
                ThreadStartEvent(self._event_log.next_sequence(), tid, parent_tid=parent_tid)
            )
        if start_object_id is not None:
            self.on_acquire(tid, start_object_id, operation="thread_start")
        self._begin_subcomputation(state, started_by="thread_start")

    def on_thread_end(self, tid: int) -> None:
        """Thread exit: close and publish the final sub-computation."""
        state = self._state(tid)
        if state.finished:
            return
        self._end_subcomputation(state, ended_by="thread_exit")
        state.finished = True
        if self._event_log is not None:
            self._event_log.append(
                ThreadEndEvent(self._event_log.next_sequence(), tid, subcomputations=state.alpha + 1)
            )

    # ------------------------------------------------------------------ #
    # Instruction-level callbacks (onMemoryAccess / onBranchAccess)
    # ------------------------------------------------------------------ #

    def on_memory_access(self, tid: int, page: int, is_write: bool) -> None:
        """``onMemoryAccess``: add ``page`` to the current read or write set."""
        state = self._state(tid)
        current = self._require_current(state)
        if is_write:
            current.record_write(page)
        else:
            current.record_read(page)
        current.faults += 1
        self.stats.memory_events += 1
        if self._event_log is not None:
            self._event_log.append(
                MemoryAccessEvent(
                    self._event_log.next_sequence(),
                    tid,
                    page=page,
                    is_write=is_write,
                    subcomputation=current.index,
                )
            )

    def on_branch(self, tid: int, site: int, taken: bool, is_indirect: bool = False) -> None:
        """``onBranchAccess``: start a new thunk at this branch."""
        state = self._state(tid)
        current = self._require_current(state)
        current.record_branch(BranchRecord(site=site, taken=taken, is_indirect=is_indirect))
        self.stats.branch_events += 1
        if self._event_log is not None:
            self._event_log.append(
                BranchEvent(
                    self._event_log.next_sequence(),
                    tid,
                    site=site,
                    taken=taken,
                    is_indirect=is_indirect,
                    subcomputation=current.index,
                )
            )

    def on_branch_run(self, tid: int, site: int, taken_count: int, total: int) -> None:
        """Record a run of ``total`` conditional branches at one site.

        Bulk counterpart of :meth:`on_branch` used by chunked inner loops:
        the run is summarised as a single thunk boundary (the control path
        within the run is recoverable from the PT trace on demand) while
        the branch-event statistics account every branch.
        """
        state = self._state(tid)
        current = self._require_current(state)
        if total <= 0:
            return
        current.record_branch(
            BranchRecord(site=site, taken=taken_count * 2 >= total, is_indirect=False)
        )
        current.record_instructions(total)
        self.stats.branch_events += total

    def on_instructions(self, tid: int, units: int = 1) -> None:
        """Charge straight-line instructions to the current thunk."""
        state = self._state(tid)
        self._require_current(state).record_instructions(units)

    def on_output(self, tid: int, size: int) -> None:
        """Record that data left the program (used by the DIFT case study)."""
        state = self._state(tid)
        current = self._require_current(state)
        if self._event_log is not None:
            self._event_log.append(
                OutputEvent(
                    self._event_log.next_sequence(), tid, size=size, subcomputation=current.index
                )
            )

    # ------------------------------------------------------------------ #
    # Synchronization callbacks (onSynchronization)
    # ------------------------------------------------------------------ #

    def on_sync_boundary(self, tid: int, operation: str) -> NodeId:
        """End the current sub-computation of ``tid`` at a synchronization call.

        This is the ``alpha <- alpha + 1`` step of Algorithm 1.  The
        released/acquired objects are reported separately through
        :meth:`on_release` and :meth:`on_acquire`, and the next
        sub-computation starts when :meth:`begin_next` is called (after the
        blocking synchronization operation completed).

        Returns:
            The node id of the sub-computation that just ended.
        """
        state = self._state(tid)
        node_id = self._end_subcomputation(state, ended_by=operation)
        state.pending_start_label = operation
        return node_id

    def on_release(self, tid: int, object_id: int, operation: str = "release") -> None:
        """Release semantics: ``C_S <- max(C_S, C_t)``."""
        state = self._state(tid)
        sync_clock = self._sync_clocks.setdefault(object_id, VectorClock())
        sync_clock.merge(state.clock)
        if state.last_node is not None:
            self._last_releaser[object_id] = state.last_node
        self.stats.sync_releases += 1
        if self._event_log is not None:
            self._event_log.append(
                SyncOperationEvent(
                    self._event_log.next_sequence(),
                    tid,
                    object_id=object_id,
                    semantics=SyncSemantics.RELEASE,
                    operation=operation,
                    subcomputation=state.alpha,
                )
            )

    def on_acquire(self, tid: int, object_id: int, operation: str = "acquire") -> None:
        """Acquire semantics: ``C_t <- max(C_t, C_S)`` plus a pending sync edge."""
        state = self._state(tid)
        sync_clock = self._sync_clocks.setdefault(object_id, VectorClock())
        state.clock.merge(sync_clock)
        releaser = self._last_releaser.get(object_id)
        if releaser is not None:
            state.pending_acquire_sources.append((releaser, object_id, operation))
        self.stats.sync_acquires += 1
        if self._event_log is not None:
            self._event_log.append(
                SyncOperationEvent(
                    self._event_log.next_sequence(),
                    tid,
                    object_id=object_id,
                    semantics=SyncSemantics.ACQUIRE,
                    operation=operation,
                    subcomputation=state.alpha,
                )
            )

    def begin_next(self, tid: int) -> SubComputation:
        """Start the next sub-computation after a synchronization operation."""
        state = self._state(tid)
        if state.current is not None:
            raise ProvenanceError(
                f"thread {tid} tried to start a sub-computation while one is still open"
            )
        label = state.pending_start_label
        state.pending_start_label = None
        return self._begin_subcomputation(state, started_by=label)

    # ------------------------------------------------------------------ #
    # Finalisation
    # ------------------------------------------------------------------ #

    def finalize(self) -> ConcurrentProvenanceGraph:
        """Close every open sub-computation and attach the virtual input node.

        Returns:
            The completed CPG (data edges are added separately by
            :mod:`repro.core.dependencies`).
        """
        for state in self._threads.values():
            if not state.finished and state.current is not None:
                self.on_thread_end(state.tid)
        if self._input_pages and self.cpg.input_node is None:
            input_node = make_input_node(self._input_pages)
            self.cpg.add_subcomputation(input_node)
            self._notify(input_node, [])
        return self.cpg

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _require_current(self, state: _ThreadState) -> SubComputation:
        if state.current is None:
            raise ProvenanceError(
                f"thread {state.tid} has no open sub-computation (missing begin_next?)"
            )
        return state.current

    def _begin_subcomputation(self, state: _ThreadState, started_by: Optional[str]) -> SubComputation:
        """``startSub-computation``: assign clocks and open the new vertex.

        The paper sets ``C_t[t] <- alpha``; we store ``alpha + 1`` instead so
        that the very first sub-computation of a thread (alpha = 0) is
        distinguishable from "no knowledge of that thread" in the sparse
        vector-clock representation.  The shift is uniform, so it changes no
        ordering relation of the original scheme.
        """
        state.clock.set(state.tid, state.alpha + 1)
        node = SubComputation(
            tid=state.tid,
            index=state.alpha,
            clock=state.clock.copy(),
            started_by=started_by,
        )
        state.current = node
        return node

    def _end_subcomputation(self, state: _ThreadState, ended_by: Optional[str]) -> NodeId:
        """Close the open sub-computation and publish it to the CPG."""
        current = self._require_current(state)
        current.ended_by = ended_by
        node_id = self.cpg.add_subcomputation(current)
        self.stats.subcomputations += 1
        published_edges: List[Tuple] = []
        if state.last_node is not None:
            self.cpg.add_control_edge(state.last_node, node_id)
            published_edges.append((state.last_node, node_id, EdgeKind.CONTROL, {}))
        # Sync edges from the releasers whose objects this thread acquired
        # while this sub-computation was being created.
        for source, object_id, operation in state.pending_acquire_sources:
            if source != node_id:
                self.cpg.add_sync_edge(source, node_id, object_id=object_id, operation=operation)
                published_edges.append(
                    (source, node_id, EdgeKind.SYNC, {"object_id": object_id, "operation": operation})
                )
        state.pending_acquire_sources.clear()
        state.last_node = node_id
        state.current = None
        state.alpha += 1
        self._notify(current, published_edges)
        return node_id

"""The provenance core: the paper's primary contribution.

Vector clocks, sub-computations and thunks, the Concurrent Provenance
Graph, the parallel recording algorithm, data-dependence derivation, and
query/serialization utilities.

Where this package sits in the whole reproduction: ``docs/architecture.md``.
"""

from repro.core.algorithm import ProvenanceTracker, TrackerStats
from repro.core.cpg import ConcurrentProvenanceGraph, EdgeKind
from repro.core.dependencies import (
    data_dependencies_of,
    derive_data_edges,
    readers_of_pages,
    writers_of_pages,
)
from repro.core.events import (
    BranchEvent,
    EventLog,
    MemoryAccessEvent,
    OutputEvent,
    SyncOperationEvent,
    SyncSemantics,
    ThreadEndEvent,
    ThreadStartEvent,
)
from repro.core.queries import (
    TaintResult,
    backward_slice,
    find_racy_pairs,
    forward_slice,
    graph_statistics,
    happens_before_pairs,
    lineage_of_pages,
    propagate_taint,
    schedule_of,
)
from repro.core.serialization import (
    cpg_from_dict,
    cpg_from_json,
    cpg_to_dict,
    cpg_to_json,
    read_cpg,
    serialized_size,
    write_cpg,
)
from repro.core.thunk import (
    INPUT_NODE,
    INPUT_TID,
    BranchRecord,
    NodeId,
    SubComputation,
    Thunk,
    make_input_node,
)
from repro.core.vector_clock import VectorClock, merge_all

__all__ = [
    "ProvenanceTracker",
    "TrackerStats",
    "ConcurrentProvenanceGraph",
    "EdgeKind",
    "data_dependencies_of",
    "derive_data_edges",
    "readers_of_pages",
    "writers_of_pages",
    "BranchEvent",
    "EventLog",
    "MemoryAccessEvent",
    "OutputEvent",
    "SyncOperationEvent",
    "SyncSemantics",
    "ThreadEndEvent",
    "ThreadStartEvent",
    "TaintResult",
    "backward_slice",
    "find_racy_pairs",
    "forward_slice",
    "graph_statistics",
    "happens_before_pairs",
    "lineage_of_pages",
    "propagate_taint",
    "schedule_of",
    "cpg_from_dict",
    "cpg_from_json",
    "cpg_to_dict",
    "cpg_to_json",
    "read_cpg",
    "serialized_size",
    "write_cpg",
    "INPUT_NODE",
    "INPUT_TID",
    "BranchRecord",
    "NodeId",
    "SubComputation",
    "Thunk",
    "make_input_node",
    "VectorClock",
    "merge_all",
]

"""Vector clocks (Mattern) used to order sub-computations.

The provenance algorithm derives the happens-before partial order between
sub-computations in a completely decentralized way: every thread carries a
vector clock, every synchronization object carries one, and release/acquire
operations propagate clock values between them.  Because threads are
created dynamically (kmeans creates several hundred), the clock is a sparse
mapping from thread id to counter rather than a fixed-size array; absent
entries are zero, which matches the paper's initialisation.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Optional, Tuple


class VectorClock:
    """A sparse vector clock over thread ids.

    The clock supports the three operations the provenance algorithm needs:
    setting a thread's own component (``startSub-computation``), merging
    with another clock component-wise (``release``/``acquire``), and the
    happens-before comparison used to order sub-computations in the CPG.
    """

    __slots__ = ("_entries",)

    def __init__(self, entries: Optional[Mapping[int, int]] = None) -> None:
        self._entries: Dict[int, int] = {}
        if entries:
            for tid, value in entries.items():
                if value < 0:
                    raise ValueError(f"clock component for thread {tid} must be >= 0, got {value}")
                if value > 0:
                    self._entries[int(tid)] = int(value)

    # ------------------------------------------------------------------ #
    # Component access
    # ------------------------------------------------------------------ #

    def get(self, tid: int) -> int:
        """Return the component for thread ``tid`` (0 if absent)."""
        return self._entries.get(tid, 0)

    def set(self, tid: int, value: int) -> None:
        """Set the component for thread ``tid``."""
        if value < 0:
            raise ValueError(f"clock component must be >= 0, got {value}")
        if value == 0:
            self._entries.pop(tid, None)
        else:
            self._entries[tid] = value

    def advance(self, tid: int, value: Optional[int] = None) -> int:
        """Advance thread ``tid``'s component.

        Args:
            tid: The thread whose component advances.
            value: Explicit new value (the sub-computation counter ``alpha``
                in the paper); when omitted the component is incremented.

        Returns:
            The new component value.
        """
        new_value = self.get(tid) + 1 if value is None else value
        if new_value < self.get(tid):
            raise ValueError(
                f"clock for thread {tid} may not move backwards "
                f"({self.get(tid)} -> {new_value})"
            )
        self.set(tid, new_value)
        return new_value

    def merge(self, other: "VectorClock") -> None:
        """Merge ``other`` into this clock component-wise (in place).

        This is the ``max`` update performed on release (into the sync
        object's clock) and on acquire (into the thread's clock).
        """
        for tid, value in other._entries.items():
            if value > self._entries.get(tid, 0):
                self._entries[tid] = value

    def merged(self, other: "VectorClock") -> "VectorClock":
        """Return a new clock equal to the component-wise max of both."""
        result = self.copy()
        result.merge(other)
        return result

    def copy(self) -> "VectorClock":
        """Return an independent copy of this clock."""
        clone = VectorClock()
        clone._entries = dict(self._entries)
        return clone

    # ------------------------------------------------------------------ #
    # Ordering
    # ------------------------------------------------------------------ #

    def happens_before(self, other: "VectorClock") -> bool:
        """Return ``True`` if this clock is strictly less than ``other``.

        ``a`` happens-before ``b`` iff every component of ``a`` is <= the
        corresponding component of ``b`` and at least one is strictly
        smaller.
        """
        return self.dominated_by(other) and self._entries != other._entries

    def dominated_by(self, other: "VectorClock") -> bool:
        """Return ``True`` if every component of this clock is <= ``other``'s."""
        for tid, value in self._entries.items():
            if value > other.get(tid):
                return False
        return True

    def concurrent_with(self, other: "VectorClock") -> bool:
        """Return ``True`` if the clocks are distinct and unordered."""
        return (
            self != other
            and not self.happens_before(other)
            and not other.happens_before(self)
        )

    # ------------------------------------------------------------------ #
    # Conversions and dunder protocol
    # ------------------------------------------------------------------ #

    def as_dict(self) -> Dict[int, int]:
        """Return the non-zero components as a plain dictionary."""
        return dict(self._entries)

    def threads(self) -> Iterable[int]:
        """Thread ids with non-zero components."""
        return self._entries.keys()

    def __iter__(self) -> Iterator[Tuple[int, int]]:
        return iter(sorted(self._entries.items()))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        return self._entries == other._entries

    def __hash__(self) -> int:
        return hash(tuple(sorted(self._entries.items())))

    def __le__(self, other: "VectorClock") -> bool:
        return self.dominated_by(other)

    def __lt__(self, other: "VectorClock") -> bool:
        return self.happens_before(other)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{tid}:{value}" for tid, value in sorted(self._entries.items()))
        return f"VC{{{inner}}}"


def merge_all(clocks: Iterable[VectorClock]) -> VectorClock:
    """Return the component-wise maximum of every clock in ``clocks``."""
    result = VectorClock()
    for clock in clocks:
        result.merge(clock)
    return result

"""Provenance queries over the Concurrent Provenance Graph.

These are the operations the paper's case studies (§VIII) need: backward
and forward slices ("why does this memory look like this" for debugging),
lineage of particular pages, taint propagation for dynamic information-flow
tracking, and simple structural statistics.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.cpg import ConcurrentProvenanceGraph, EdgeKind
from repro.core.dependencies import writers_of_pages
from repro.core.thunk import NodeId

#: Edge kinds that carry provenance by default (control stays within a
#: thread and is usually included; sync edges order but do not move data,
#: data edges move data).
DEFAULT_SLICE_KINDS = (EdgeKind.DATA, EdgeKind.CONTROL, EdgeKind.SYNC)


def backward_slice(
    cpg: ConcurrentProvenanceGraph,
    node_id: NodeId,
    kinds: Sequence[EdgeKind] = (EdgeKind.DATA,),
    include_start: bool = True,
) -> Set[NodeId]:
    """Return every sub-computation that ``node_id`` (transitively) depends on.

    Args:
        cpg: The provenance graph (data edges must already be derived).
        node_id: The sub-computation being explained.
        kinds: Edge kinds to follow (data-only by default, i.e. a pure
            dataflow slice).
        include_start: Whether the starting node is part of the result.
    """
    result = cpg.ancestors(node_id, kinds=kinds)
    if include_start:
        result.add(node_id)
    return result


def forward_slice(
    cpg: ConcurrentProvenanceGraph,
    node_id: NodeId,
    kinds: Sequence[EdgeKind] = (EdgeKind.DATA,),
    include_start: bool = True,
) -> Set[NodeId]:
    """Return every sub-computation (transitively) influenced by ``node_id``."""
    result = cpg.descendants(node_id, kinds=kinds)
    if include_start:
        result.add(node_id)
    return result


def lineage_of_pages(cpg: ConcurrentProvenanceGraph, pages: Iterable[int]) -> Set[NodeId]:
    """Explain the final contents of ``pages``.

    Returns the sub-computations that wrote any of the pages plus everything
    those writers transitively depend on through data edges -- the paper's
    "why is the memory state like that" debugging query.
    """
    result: Set[NodeId] = set()
    for writer in writers_of_pages(cpg, pages):
        result |= backward_slice(cpg, writer, kinds=(EdgeKind.DATA,))
    return result


@dataclass
class TaintResult:
    """Outcome of propagating taint through the CPG.

    Attributes:
        tainted_nodes: Sub-computations that observed tainted data.
        tainted_pages: Pages that (transitively) carry tainted data.
        source_pages: The original taint sources.
    """

    tainted_nodes: Set[NodeId] = field(default_factory=set)
    tainted_pages: Set[int] = field(default_factory=set)
    source_pages: Set[int] = field(default_factory=set)

    def is_node_tainted(self, node_id: NodeId) -> bool:
        """Whether ``node_id`` observed tainted data."""
        return node_id in self.tainted_nodes

    def is_page_tainted(self, page: int) -> bool:
        """Whether ``page`` carries tainted data."""
        return page in self.tainted_pages


def replay_taint(
    ordered_nodes: Iterable[tuple],
    source_pages: Iterable[int],
    through_thread_state: bool = False,
) -> TaintResult:
    """Replay the page-level taint policy over ``(node_id, sub-computation)``
    pairs in a linear extension of the happens-before order.

    This is the single definition of the DIFT policy: both the in-memory
    :func:`propagate_taint` and the store's out-of-core
    ``StoreQueryEngine.propagate_taint`` replay through it, which is what
    keeps their results interchangeable.
    """
    result = TaintResult(source_pages=set(source_pages))
    result.tainted_pages = set(result.source_pages)
    tainted_threads: Set[int] = set()
    for node_id, node in ordered_nodes:
        if node.write_set and node.tid < 0:
            # The virtual input node defines the sources; writing input
            # pages does not by itself taint the node.
            continue
        tainted = bool(node.read_set & result.tainted_pages)
        if through_thread_state and node.tid in tainted_threads:
            tainted = True
        if tainted:
            result.tainted_nodes.add(node_id)
            result.tainted_pages |= node.write_set
            tainted_threads.add(node.tid)
    return result


def propagate_taint(
    cpg: ConcurrentProvenanceGraph,
    source_pages: Iterable[int],
    through_thread_state: bool = False,
) -> TaintResult:
    """Propagate page-granularity taint along the recorded partial order.

    A sub-computation becomes tainted when it reads a tainted page; every
    page it subsequently writes becomes tainted as well (the conservative
    page-level policy of the DIFT case study).

    Args:
        cpg: The provenance graph.
        source_pages: Initially tainted pages (usually the input pages).
        through_thread_state: When true, a thread that once observed
            tainted data keeps carrying the taint in its registers/stack,
            so every later sub-computation of that thread is tainted as
            well.  This is the conservative setting the DIFT policy checker
            uses; the default keeps taint strictly page-carried.
    """
    ordered = ((node_id, cpg.subcomputation(node_id)) for node_id in cpg.topological_order())
    return replay_taint(ordered, source_pages, through_thread_state=through_thread_state)


def happens_before_pairs(cpg: ConcurrentProvenanceGraph) -> Set[tuple]:
    """Return every ordered pair ``(a, b)`` with ``a`` happens-before ``b``.

    Exponential in nothing but quadratic in the number of vertices; intended
    for tests and small graphs.
    """
    nodes = [n for n in cpg.nodes() if n[0] >= 0]
    return {
        (a, b)
        for a in nodes
        for b in nodes
        if a != b and cpg.happens_before(a, b)
    }


def schedule_of(cpg: ConcurrentProvenanceGraph) -> List[NodeId]:
    """Return the recorded interleaving as a linear extension of the CPG order."""
    return [node for node in cpg.topological_order() if node[0] >= 0]


def graph_statistics(cpg: ConcurrentProvenanceGraph) -> Dict[str, float]:
    """Return summary statistics used by EXPERIMENTS.md and the examples."""
    nodes = [n for n in cpg.subcomputations() if n.tid >= 0]
    reads = sum(len(n.read_set) for n in nodes)
    writes = sum(len(n.write_set) for n in nodes)
    branches = sum(n.branch_count for n in nodes)
    summary = cpg.summary()
    return {
        "nodes": float(summary["nodes"]),
        "threads": float(summary["threads"]),
        "control_edges": float(summary["control_edges"]),
        "sync_edges": float(summary["sync_edges"]),
        "data_edges": float(summary["data_edges"]),
        "pages_read": float(reads),
        "pages_written": float(writes),
        "branches": float(branches),
        "mean_read_set": reads / len(nodes) if nodes else 0.0,
        "mean_write_set": writes / len(nodes) if nodes else 0.0,
    }


@dataclass
class PageAccessIndex:
    """Inverted index mapping each page to the sub-computations touching it.

    Built once per graph (O(sum of access-set sizes)); the persistent store
    serializes the same structure as its page index, so in-memory analyses
    and out-of-core queries share one definition of "who touched this page".

    Attributes:
        writers: page -> node ids whose write set contains the page,
            sorted by ``(tid, index)``.
        readers: page -> node ids whose read set contains the page,
            sorted by ``(tid, index)``.
    """

    writers: Dict[int, List[NodeId]] = field(default_factory=dict)
    readers: Dict[int, List[NodeId]] = field(default_factory=dict)

    def writers_of(self, page: int) -> List[NodeId]:
        """Node ids that wrote ``page`` (empty when nothing did)."""
        return self.writers.get(page, [])

    def readers_of(self, page: int) -> List[NodeId]:
        """Node ids that read ``page`` (empty when nothing did)."""
        return self.readers.get(page, [])

    def accessors_of(self, page: int) -> Set[NodeId]:
        """Every node id that read or wrote ``page``."""
        return set(self.writers_of(page)) | set(self.readers_of(page))

    def pages(self) -> Set[int]:
        """Every page with at least one recorded access."""
        return set(self.writers) | set(self.readers)


def build_page_index(cpg: ConcurrentProvenanceGraph) -> PageAccessIndex:
    """Build the page -> accessors inverted index over every vertex of ``cpg``
    (including the virtual input node, whose write set is the program input)."""
    writers: Dict[int, List[NodeId]] = defaultdict(list)
    readers: Dict[int, List[NodeId]] = defaultdict(list)
    for node_id in cpg.nodes():
        node = cpg.subcomputation(node_id)
        for page in node.write_set:
            writers[page].append(node_id)
        for page in node.read_set:
            readers[page].append(node_id)
    return PageAccessIndex(writers=dict(writers), readers=dict(readers))


def find_racy_pairs(cpg: ConcurrentProvenanceGraph) -> List[tuple]:
    """Return pairs of concurrent sub-computations with conflicting page accesses.

    Two sub-computations conflict when they are unordered by happens-before
    and one writes a page the other reads or writes.  Under the POSIX data-
    race-free assumption this list should be empty for page-disjoint
    programs; the debugging example uses it to locate synchronization bugs.

    Instead of testing every node pair (quadratic in the graph size, with a
    reachability test per pair), candidate pairs are generated from the
    page -> accessors inverted index: only pairs that actually share a page
    with at least one writer are checked for concurrency.  The accessor set
    is built once per page (not per writer), and pages that cannot yield a
    pair -- a single accessor, or all real accessors on one thread -- are
    skipped before any pairing work.
    """
    index = build_page_index(cpg)
    candidates: Set[Tuple[NodeId, NodeId]] = set()
    for page, writers in index.writers.items():
        if len(writers) == 1 and not index.readers_of(page):
            continue  # the lone accessor cannot race with itself
        accessors = index.accessors_of(page)
        if len({node[0] for node in accessors if node[0] >= 0}) < 2:
            continue  # a race needs two distinct real threads on the page
        for writer in writers:
            if writer[0] < 0:
                continue
            for other in accessors:
                if other == writer or other[0] < 0 or other[0] == writer[0]:
                    continue
                candidates.add((min(writer, other), max(writer, other)))
    racy = []
    for a, b in sorted(candidates):
        sub_a = cpg.subcomputation(a)
        sub_b = cpg.subcomputation(b)
        writes_conflict = (
            (sub_a.write_set & (sub_b.read_set | sub_b.write_set))
            or (sub_b.write_set & sub_a.read_set)
        )
        if writes_conflict and cpg.concurrent(a, b):
            racy.append((a, b, frozenset(writes_conflict)))
    return racy

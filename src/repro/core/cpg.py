"""The Concurrent Provenance Graph (CPG).

The CPG is a directed acyclic graph whose vertices are sub-computations and
whose edges record the three dependency kinds of the paper: *control* edges
(intra-thread program order), *synchronization* edges (release -> acquire
pairs, i.e. the sync schedule), and *data* edges (update-use relationships
between write sets and read sets, ordered by happens-before).
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.core.thunk import INPUT_NODE, NodeId, SubComputation
from repro.errors import ProvenanceError


class EdgeKind(enum.Enum):
    """The dependency kind an edge records."""

    CONTROL = "control"
    SYNC = "sync"
    DATA = "data"


class ConcurrentProvenanceGraph:
    """The CPG: sub-computations plus control/sync/data dependency edges.

    The graph is built incrementally by the provenance tracker while the
    program runs; data edges are usually derived afterwards (or at snapshot
    time) by :mod:`repro.core.dependencies`.
    """

    def __init__(self) -> None:
        self._graph = nx.MultiDiGraph()
        self._subcomputations: Dict[NodeId, SubComputation] = {}

    # ------------------------------------------------------------------ #
    # Vertices
    # ------------------------------------------------------------------ #

    def add_subcomputation(self, node: SubComputation) -> NodeId:
        """Add a sub-computation vertex.

        Raises:
            ProvenanceError: If a vertex with the same ``(tid, index)``
                already exists.
        """
        node_id = node.node_id
        if node_id in self._subcomputations:
            raise ProvenanceError(f"sub-computation {node_id} already present in the CPG")
        self._subcomputations[node_id] = node
        self._graph.add_node(node_id)
        return node_id

    def subcomputation(self, node_id: NodeId) -> SubComputation:
        """Return the sub-computation stored at ``node_id``."""
        try:
            return self._subcomputations[node_id]
        except KeyError as exc:
            raise ProvenanceError(f"no sub-computation {node_id} in the CPG") from exc

    def has_node(self, node_id: NodeId) -> bool:
        """Whether ``node_id`` is a vertex of the CPG."""
        return node_id in self._subcomputations

    def nodes(self) -> List[NodeId]:
        """Every vertex id, sorted by (tid, index)."""
        return sorted(self._subcomputations)

    def subcomputations(self) -> Iterator[SubComputation]:
        """Iterate over every stored sub-computation."""
        return iter(self._subcomputations.values())

    def thread_nodes(self, tid: int) -> List[NodeId]:
        """Vertices of thread ``tid`` in execution order."""
        return sorted(node for node in self._subcomputations if node[0] == tid)

    def threads(self) -> List[int]:
        """Thread ids present in the graph (excluding the virtual input node)."""
        return sorted({tid for tid, _ in self._subcomputations if (tid, 0) != INPUT_NODE or tid >= 0})

    @property
    def input_node(self) -> Optional[NodeId]:
        """The virtual input vertex, if present."""
        return INPUT_NODE if INPUT_NODE in self._subcomputations else None

    # ------------------------------------------------------------------ #
    # Edges
    # ------------------------------------------------------------------ #

    def _check_nodes(self, source: NodeId, target: NodeId) -> None:
        if source not in self._subcomputations:
            raise ProvenanceError(f"edge source {source} is not a CPG vertex")
        if target not in self._subcomputations:
            raise ProvenanceError(f"edge target {target} is not a CPG vertex")

    def add_control_edge(self, source: NodeId, target: NodeId) -> None:
        """Add an intra-thread program-order edge."""
        self._check_nodes(source, target)
        if source[0] != target[0]:
            raise ProvenanceError(
                f"control edge must stay within one thread: {source} -> {target}"
            )
        self._graph.add_edge(source, target, kind=EdgeKind.CONTROL)

    def add_sync_edge(
        self,
        source: NodeId,
        target: NodeId,
        object_id: int,
        operation: str = "",
    ) -> None:
        """Add a release -> acquire edge through synchronization object ``object_id``."""
        self._check_nodes(source, target)
        self._graph.add_edge(
            source, target, kind=EdgeKind.SYNC, object_id=object_id, operation=operation
        )

    def add_data_edge(self, source: NodeId, target: NodeId, pages: Iterable[int]) -> None:
        """Add an update-use edge labelled with the pages that carry the data."""
        self._check_nodes(source, target)
        self._graph.add_edge(source, target, kind=EdgeKind.DATA, pages=frozenset(pages))

    def edges(self, kind: Optional[EdgeKind] = None) -> List[Tuple[NodeId, NodeId, dict]]:
        """Return ``(source, target, attributes)`` for every edge of ``kind`` (or all)."""
        result = []
        for source, target, attrs in self._graph.edges(data=True):
            if kind is None or attrs.get("kind") is kind:
                result.append((source, target, attrs))
        return result

    def edge_count(self, kind: Optional[EdgeKind] = None) -> int:
        """Number of edges of ``kind`` (or all edges)."""
        return len(self.edges(kind))

    def successors(self, node_id: NodeId, kind: Optional[EdgeKind] = None) -> List[NodeId]:
        """Direct successors of ``node_id`` reachable through edges of ``kind``."""
        result = []
        for _, target, attrs in self._graph.out_edges(node_id, data=True):
            if kind is None or attrs.get("kind") is kind:
                result.append(target)
        return result

    def predecessors(self, node_id: NodeId, kind: Optional[EdgeKind] = None) -> List[NodeId]:
        """Direct predecessors of ``node_id`` through edges of ``kind``."""
        result = []
        for source, _, attrs in self._graph.in_edges(node_id, data=True):
            if kind is None or attrs.get("kind") is kind:
                result.append(source)
        return result

    # ------------------------------------------------------------------ #
    # Order and structure
    # ------------------------------------------------------------------ #

    def is_acyclic(self) -> bool:
        """Whether the CPG is a DAG (it always should be)."""
        return nx.is_directed_acyclic_graph(self._graph)

    def happens_before(self, first: NodeId, second: NodeId) -> bool:
        """Happens-before test using the recorded vector clocks."""
        a = self.subcomputation(first)
        b = self.subcomputation(second)
        if a.tid == b.tid:
            return a.index < b.index
        return a.clock.happens_before(b.clock) or (
            a.clock.dominated_by(b.clock) and a.clock != b.clock
        )

    def concurrent(self, first: NodeId, second: NodeId) -> bool:
        """Whether two sub-computations are unordered by happens-before."""
        return not self.happens_before(first, second) and not self.happens_before(second, first)

    def topological_order(self) -> List[NodeId]:
        """A linear extension of the recorded partial order (control + sync edges)."""
        restricted = nx.MultiDiGraph()
        restricted.add_nodes_from(self._graph.nodes)
        for source, target, attrs in self._graph.edges(data=True):
            if attrs.get("kind") in (EdgeKind.CONTROL, EdgeKind.SYNC):
                restricted.add_edge(source, target)
        try:
            return list(nx.topological_sort(restricted))
        except nx.NetworkXUnfeasible as exc:  # pragma: no cover - defensive
            raise ProvenanceError("control/sync edges of the CPG contain a cycle") from exc

    def ancestors(self, node_id: NodeId, kinds: Optional[Sequence[EdgeKind]] = None) -> Set[NodeId]:
        """Every vertex from which ``node_id`` is reachable through edges of ``kinds``."""
        return self._closure(node_id, kinds, forward=False)

    def descendants(self, node_id: NodeId, kinds: Optional[Sequence[EdgeKind]] = None) -> Set[NodeId]:
        """Every vertex reachable from ``node_id`` through edges of ``kinds``."""
        return self._closure(node_id, kinds, forward=True)

    def _closure(
        self, node_id: NodeId, kinds: Optional[Sequence[EdgeKind]], forward: bool
    ) -> Set[NodeId]:
        if node_id not in self._subcomputations:
            raise ProvenanceError(f"no sub-computation {node_id} in the CPG")
        allowed = set(kinds) if kinds is not None else None
        seen: Set[NodeId] = set()
        frontier = [node_id]
        while frontier:
            current = frontier.pop()
            if forward:
                neighbours = self._graph.out_edges(current, data=True)
                step = lambda edge: edge[1]  # noqa: E731 - tiny local helper
            else:
                neighbours = self._graph.in_edges(current, data=True)
                step = lambda edge: edge[0]  # noqa: E731
            for edge in neighbours:
                attrs = edge[2]
                if allowed is not None and attrs.get("kind") not in allowed:
                    continue
                nxt = step(edge)
                if nxt not in seen and nxt != node_id:
                    seen.add(nxt)
                    frontier.append(nxt)
        return seen

    # ------------------------------------------------------------------ #
    # Export and summary
    # ------------------------------------------------------------------ #

    def to_networkx(self) -> nx.MultiDiGraph:
        """Return a copy of the underlying networkx graph (for external analysis)."""
        return self._graph.copy()

    def summary(self) -> Dict[str, int]:
        """Return basic size statistics of the graph."""
        return {
            "nodes": len(self._subcomputations),
            "threads": len({tid for tid, _ in self._subcomputations if tid >= 0}),
            "control_edges": self.edge_count(EdgeKind.CONTROL),
            "sync_edges": self.edge_count(EdgeKind.SYNC),
            "data_edges": self.edge_count(EdgeKind.DATA),
        }

    def __len__(self) -> int:
        return len(self._subcomputations)

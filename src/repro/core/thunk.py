"""Sub-computations and thunks: the vertices of the CPG.

A *sub-computation* (``L_t[alpha]`` in the paper) is everything a thread
executes between two consecutive pthreads synchronization calls.  Within a
sub-computation the control path is recorded at the granularity of
*thunks* (``L_t[alpha].Delta[beta]``): the instruction sequences between
successive branches, reconstructed from the Intel PT trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Set, Tuple

from repro.core.vector_clock import VectorClock

#: Node identifier used in the CPG: (thread id, sub-computation index).
NodeId = Tuple[int, int]

#: The pseudo thread id used for the virtual node representing program input.
INPUT_TID = -1

#: The node id of the virtual input node.
INPUT_NODE: NodeId = (INPUT_TID, 0)


@dataclass(frozen=True)
class BranchRecord:
    """One control-flow event inside a sub-computation.

    Attributes:
        site: Synthetic instruction pointer of the branch.
        taken: Outcome for conditional branches; ``True`` for indirect
            branches (they are always "taken").
        is_indirect: Whether this was an indirect branch (TIP packet) rather
            than a conditional one (TNT bit).
    """

    site: int
    taken: bool
    is_indirect: bool = False


@dataclass
class Thunk:
    """A sequence of instructions between two successive branches.

    Attributes:
        index: Position of the thunk inside its sub-computation (``beta``).
        start_branch: The branch event that opened this thunk (``None`` for
            the first thunk of a sub-computation).
        instructions: Number of instruction-equivalents executed inside the
            thunk (loads, stores, compute units).
    """

    index: int
    start_branch: Optional[BranchRecord] = None
    instructions: int = 0


@dataclass
class SubComputation:
    """One vertex of the Concurrent Provenance Graph.

    Attributes:
        tid: Executing thread id.
        index: Sub-computation counter within the thread (``alpha``).
        clock: Vector-clock value assigned at the start of the
            sub-computation; defines the happens-before partial order.
        read_set: Page ids read by the thread during the sub-computation.
        write_set: Page ids written during the sub-computation.
        thunks: Control path taken within the sub-computation.
        started_by: Name of the synchronization operation that started it
            (``None`` for the first sub-computation of a thread).
        ended_by: Name of the synchronization operation that ended it
            (``None`` while the sub-computation is still open and for the
            final sub-computation, which ends with thread exit).
        faults: Number of page faults taken while executing it.
    """

    tid: int
    index: int
    clock: VectorClock = field(default_factory=VectorClock)
    read_set: Set[int] = field(default_factory=set)
    write_set: Set[int] = field(default_factory=set)
    thunks: List[Thunk] = field(default_factory=list)
    started_by: Optional[str] = None
    ended_by: Optional[str] = None
    faults: int = 0

    @property
    def node_id(self) -> NodeId:
        """The CPG node identifier ``(tid, index)``."""
        return (self.tid, self.index)

    @property
    def branch_count(self) -> int:
        """Number of branch events recorded inside this sub-computation."""
        return sum(1 for thunk in self.thunks if thunk.start_branch is not None)

    @property
    def instruction_count(self) -> int:
        """Instruction-equivalents executed inside this sub-computation."""
        return sum(thunk.instructions for thunk in self.thunks)

    def record_read(self, page: int) -> None:
        """Add ``page`` to the read set."""
        self.read_set.add(page)

    def record_write(self, page: int) -> None:
        """Add ``page`` to the write set."""
        self.write_set.add(page)

    def record_branch(self, record: BranchRecord) -> Thunk:
        """Close the current thunk and open a new one at ``record``.

        Returns:
            The newly opened thunk.
        """
        thunk = Thunk(index=len(self.thunks), start_branch=record)
        self.thunks.append(thunk)
        return thunk

    def record_instructions(self, units: int = 1) -> None:
        """Charge ``units`` instructions to the current (last) thunk."""
        if not self.thunks:
            self.thunks.append(Thunk(index=0))
        self.thunks[-1].instructions += units

    def pages_touched(self) -> FrozenSet[int]:
        """All pages read or written by this sub-computation."""
        return frozenset(self.read_set | self.write_set)


def make_input_node(pages: Set[int]) -> SubComputation:
    """Create the virtual sub-computation representing the program input.

    The input shim maps the input file into the tracked input region; the
    provenance graph models the file itself as a virtual node whose write
    set is every input page, so reads of the input produce ordinary data
    dependence edges.
    """
    node = SubComputation(tid=INPUT_TID, index=0, started_by="input")
    node.write_set.update(pages)
    return node

"""Serialization of the Concurrent Provenance Graph.

The perf-style tooling and the snapshot facility both need a compact,
self-contained representation of (parts of) the CPG: the snapshot ring
buffer stores serialized slots, EXPERIMENTS.md reports serialized sizes,
and users of the library export graphs for offline analysis.

Two wire formats exist:

* **v1** is the original whole-graph JSON document: edge endpoints are
  ``[tid, index]`` lists.
* **v2** is the format the persistent store (:mod:`repro.store`) writes:
  edge endpoints are compact ``"tid:index"`` keys and the document may
  carry a ``meta`` object (segment metadata).  Node payloads are identical
  in both versions.

:func:`cpg_from_dict` accepts either version and raises
:class:`~repro.errors.ProvenanceError` (never ``KeyError``) for unknown
versions, unknown edge kinds, or structurally incomplete records.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.cpg import ConcurrentProvenanceGraph, EdgeKind
from repro.core.thunk import BranchRecord, NodeId, SubComputation, Thunk
from repro.core.vector_clock import VectorClock
from repro.errors import ProvenanceError

#: The original whole-graph JSON format.
FORMAT_VERSION = 1

#: The segmented-store format (compact edge endpoints, optional metadata).
FORMAT_VERSION_V2 = 2

#: Every version :func:`cpg_from_dict` understands.
SUPPORTED_FORMAT_VERSIONS = (FORMAT_VERSION, FORMAT_VERSION_V2)


# ---------------------------------------------------------------------- #
# Node identifiers
# ---------------------------------------------------------------------- #


def node_key(node_id: NodeId) -> str:
    """Render a node id as the compact ``"tid:index"`` key used by v2."""
    return f"{node_id[0]}:{node_id[1]}"


def parse_node_key(key: str) -> NodeId:
    """Invert :func:`node_key`.

    Raises:
        ProvenanceError: If ``key`` is not of the form ``"tid:index"``.
    """
    try:
        tid_text, index_text = key.split(":", 1)
        return (int(tid_text), int(index_text))
    except (AttributeError, ValueError) as exc:
        raise ProvenanceError(f"malformed node key {key!r} (expected 'tid:index')") from exc


def _node_id_from(value: object) -> NodeId:
    """Accept either endpoint representation (v1 list or v2 key string)."""
    if isinstance(value, str):
        return parse_node_key(value)
    if isinstance(value, (list, tuple)) and len(value) == 2:
        try:
            return (int(value[0]), int(value[1]))
        except (TypeError, ValueError) as exc:
            raise ProvenanceError(f"malformed node id {value!r}") from exc
    raise ProvenanceError(f"malformed node id {value!r} (expected [tid, index] or 'tid:index')")


# ---------------------------------------------------------------------- #
# Sub-computations
# ---------------------------------------------------------------------- #


def subcomputation_to_dict(node: SubComputation) -> dict:
    """Convert one sub-computation into plain JSON-serializable data."""
    return {
        "tid": node.tid,
        "index": node.index,
        "clock": {str(tid): value for tid, value in node.clock.as_dict().items()},
        "read_set": sorted(node.read_set),
        "write_set": sorted(node.write_set),
        "started_by": node.started_by,
        "ended_by": node.ended_by,
        "faults": node.faults,
        "thunks": [
            {
                "index": thunk.index,
                "instructions": thunk.instructions,
                "branch": (
                    {
                        "site": thunk.start_branch.site,
                        "taken": thunk.start_branch.taken,
                        "indirect": thunk.start_branch.is_indirect,
                    }
                    if thunk.start_branch is not None
                    else None
                ),
            }
            for thunk in node.thunks
        ],
    }


def subcomputation_from_dict(data: dict) -> SubComputation:
    """Rebuild a sub-computation from :func:`subcomputation_to_dict` output.

    Raises:
        ProvenanceError: If the mandatory ``tid``/``index`` fields are
            missing or malformed.
    """
    if not isinstance(data, dict):
        raise ProvenanceError(f"node record must be an object, got {type(data).__name__}")
    missing = [key for key in ("tid", "index") if key not in data]
    if missing:
        raise ProvenanceError(f"node record is missing field(s) {missing}: {data!r}")
    try:
        node = SubComputation(
            tid=int(data["tid"]),
            index=int(data["index"]),
            clock=VectorClock({int(tid): value for tid, value in data.get("clock", {}).items()}),
            started_by=data.get("started_by"),
            ended_by=data.get("ended_by"),
            faults=int(data.get("faults", 0)),
        )
    except (TypeError, ValueError) as exc:
        raise ProvenanceError(f"malformed node record {data!r}") from exc
    node.read_set.update(data.get("read_set", ()))
    node.write_set.update(data.get("write_set", ()))
    for thunk_data in data.get("thunks", ()):
        branch = thunk_data.get("branch")
        record = (
            BranchRecord(
                site=int(branch["site"]),
                taken=bool(branch["taken"]),
                is_indirect=bool(branch.get("indirect", False)),
            )
            if branch is not None
            else None
        )
        node.thunks.append(
            Thunk(
                index=int(thunk_data["index"]),
                start_branch=record,
                instructions=int(thunk_data.get("instructions", 0)),
            )
        )
    return node


# ---------------------------------------------------------------------- #
# Edges
# ---------------------------------------------------------------------- #


def edge_to_dict(
    source: NodeId, target: NodeId, attrs: dict, version: int = FORMAT_VERSION
) -> dict:
    """Serialize one edge (as returned by :meth:`ConcurrentProvenanceGraph.edges`)."""
    kind = attrs.get("kind")
    if not isinstance(kind, EdgeKind):
        raise ProvenanceError(f"edge {source} -> {target} has no EdgeKind: {attrs!r}")
    if version == FORMAT_VERSION_V2:
        entry: Dict[str, object] = {
            "source": node_key(source),
            "target": node_key(target),
            "kind": kind.value,
        }
    else:
        entry = {"source": list(source), "target": list(target), "kind": kind.value}
    if kind is EdgeKind.SYNC:
        entry["object_id"] = attrs.get("object_id")
        entry["operation"] = attrs.get("operation", "")
    if kind is EdgeKind.DATA:
        entry["pages"] = sorted(attrs.get("pages", ()))
    return entry


def edge_from_dict(edge: dict) -> Tuple[NodeId, NodeId, EdgeKind, dict]:
    """Parse one serialized edge into ``(source, target, kind, attributes)``.

    Both endpoint representations (v1 and v2) are accepted.

    Raises:
        ProvenanceError: For missing ``source``/``target``/``kind`` fields
            or an edge kind this version does not know.
    """
    if not isinstance(edge, dict):
        raise ProvenanceError(f"edge record must be an object, got {type(edge).__name__}")
    missing = [key for key in ("source", "target", "kind") if key not in edge]
    if missing:
        raise ProvenanceError(f"edge record is missing field(s) {missing}: {edge!r}")
    source = _node_id_from(edge["source"])
    target = _node_id_from(edge["target"])
    try:
        kind = EdgeKind(edge["kind"])
    except ValueError as exc:
        known = ", ".join(sorted(member.value for member in EdgeKind))
        raise ProvenanceError(
            f"unknown edge kind {edge['kind']!r} (known kinds: {known})"
        ) from exc
    attrs: Dict[str, object] = {}
    if kind is EdgeKind.SYNC:
        attrs["object_id"] = edge.get("object_id")
        attrs["operation"] = edge.get("operation", "")
    if kind is EdgeKind.DATA:
        attrs["pages"] = frozenset(edge.get("pages", ()))
    return source, target, kind, attrs


def apply_edge(
    cpg: ConcurrentProvenanceGraph,
    source: NodeId,
    target: NodeId,
    kind: EdgeKind,
    attrs: dict,
) -> None:
    """Add one parsed edge to ``cpg`` (the single kind-dispatch point)."""
    if kind is EdgeKind.CONTROL:
        cpg.add_control_edge(source, target)
    elif kind is EdgeKind.SYNC:
        cpg.add_sync_edge(
            source, target, object_id=attrs.get("object_id"), operation=attrs.get("operation", "")
        )
    else:
        cpg.add_data_edge(source, target, attrs.get("pages", ()))


def apply_edge_dict(cpg: ConcurrentProvenanceGraph, edge: dict) -> None:
    """Parse one serialized edge and add it to ``cpg``."""
    apply_edge(cpg, *edge_from_dict(edge))


# ---------------------------------------------------------------------- #
# Whole graphs
# ---------------------------------------------------------------------- #


def cpg_to_dict(
    cpg: ConcurrentProvenanceGraph,
    nodes: Optional[Iterable[NodeId]] = None,
    version: int = FORMAT_VERSION,
) -> dict:
    """Serialize ``cpg`` (or the induced subgraph over ``nodes``) to a dictionary."""
    if version not in SUPPORTED_FORMAT_VERSIONS:
        raise ProvenanceError(f"cannot write CPG format version {version!r}")
    wanted = set(nodes) if nodes is not None else None
    node_payload = []
    for node in cpg.subcomputations():
        if wanted is None or node.node_id in wanted:
            node_payload.append(subcomputation_to_dict(node))
    edge_payload: List[dict] = []
    for source, target, attrs in cpg.edges():
        if wanted is not None and (source not in wanted or target not in wanted):
            continue
        edge_payload.append(edge_to_dict(source, target, attrs, version=version))
    return {
        "format_version": version,
        "nodes": node_payload,
        "edges": edge_payload,
    }


def cpg_from_dict(data: dict) -> ConcurrentProvenanceGraph:
    """Rebuild a CPG from :func:`cpg_to_dict` output (v1 or v2).

    Raises:
        ProvenanceError: For an unsupported format version, unknown edge
            kinds, or node/edge records with missing mandatory fields.
    """
    version = data.get("format_version")
    if version not in SUPPORTED_FORMAT_VERSIONS:
        supported = ", ".join(str(v) for v in SUPPORTED_FORMAT_VERSIONS)
        raise ProvenanceError(
            f"unsupported CPG format version {version!r} (supported: {supported})"
        )
    cpg = ConcurrentProvenanceGraph()
    for node_data in data.get("nodes", ()):
        cpg.add_subcomputation(subcomputation_from_dict(node_data))
    for edge in data.get("edges", ()):
        apply_edge_dict(cpg, edge)
    return cpg


def cpg_to_json(
    cpg: ConcurrentProvenanceGraph,
    indent: Optional[int] = None,
    version: int = FORMAT_VERSION,
) -> str:
    """Serialize ``cpg`` to a JSON string."""
    return json.dumps(cpg_to_dict(cpg, version=version), indent=indent, sort_keys=True)


def cpg_from_json(payload: str) -> ConcurrentProvenanceGraph:
    """Deserialize a CPG from a JSON string (either format version)."""
    try:
        data = json.loads(payload)
    except json.JSONDecodeError as exc:
        raise ProvenanceError(f"CPG payload is not valid JSON: {exc}") from exc
    return cpg_from_dict(data)


def write_cpg(
    cpg: ConcurrentProvenanceGraph,
    path: str,
    indent: Optional[int] = 2,
    version: int = FORMAT_VERSION,
) -> None:
    """Write ``cpg`` to ``path`` as JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(cpg_to_json(cpg, indent=indent, version=version))


def read_cpg(path: str) -> ConcurrentProvenanceGraph:
    """Read a CPG previously written with :func:`write_cpg`."""
    with open(path, "r", encoding="utf-8") as handle:
        return cpg_from_json(handle.read())


def serialized_size(cpg: ConcurrentProvenanceGraph, nodes: Optional[Iterable[NodeId]] = None) -> int:
    """Return the size in bytes of the compact (no indentation) serialization."""
    return len(json.dumps(cpg_to_dict(cpg, nodes=nodes), sort_keys=True).encode("utf-8"))

"""Serialization of the Concurrent Provenance Graph.

The perf-style tooling and the snapshot facility both need a compact,
self-contained representation of (parts of) the CPG: the snapshot ring
buffer stores serialized slots, EXPERIMENTS.md reports serialized sizes,
and users of the library export graphs for offline analysis.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, Optional

from repro.core.cpg import ConcurrentProvenanceGraph, EdgeKind
from repro.core.thunk import BranchRecord, NodeId, SubComputation, Thunk
from repro.core.vector_clock import VectorClock
from repro.errors import ProvenanceError

#: Format version written into every serialized graph.
FORMAT_VERSION = 1


def subcomputation_to_dict(node: SubComputation) -> dict:
    """Convert one sub-computation into plain JSON-serializable data."""
    return {
        "tid": node.tid,
        "index": node.index,
        "clock": {str(tid): value for tid, value in node.clock.as_dict().items()},
        "read_set": sorted(node.read_set),
        "write_set": sorted(node.write_set),
        "started_by": node.started_by,
        "ended_by": node.ended_by,
        "faults": node.faults,
        "thunks": [
            {
                "index": thunk.index,
                "instructions": thunk.instructions,
                "branch": (
                    {
                        "site": thunk.start_branch.site,
                        "taken": thunk.start_branch.taken,
                        "indirect": thunk.start_branch.is_indirect,
                    }
                    if thunk.start_branch is not None
                    else None
                ),
            }
            for thunk in node.thunks
        ],
    }


def subcomputation_from_dict(data: dict) -> SubComputation:
    """Rebuild a sub-computation from :func:`subcomputation_to_dict` output."""
    node = SubComputation(
        tid=int(data["tid"]),
        index=int(data["index"]),
        clock=VectorClock({int(tid): value for tid, value in data.get("clock", {}).items()}),
        started_by=data.get("started_by"),
        ended_by=data.get("ended_by"),
        faults=int(data.get("faults", 0)),
    )
    node.read_set.update(data.get("read_set", ()))
    node.write_set.update(data.get("write_set", ()))
    for thunk_data in data.get("thunks", ()):
        branch = thunk_data.get("branch")
        record = (
            BranchRecord(
                site=int(branch["site"]),
                taken=bool(branch["taken"]),
                is_indirect=bool(branch.get("indirect", False)),
            )
            if branch is not None
            else None
        )
        node.thunks.append(
            Thunk(
                index=int(thunk_data["index"]),
                start_branch=record,
                instructions=int(thunk_data.get("instructions", 0)),
            )
        )
    return node


def cpg_to_dict(cpg: ConcurrentProvenanceGraph, nodes: Optional[Iterable[NodeId]] = None) -> dict:
    """Serialize ``cpg`` (or the induced subgraph over ``nodes``) to a dictionary."""
    wanted = set(nodes) if nodes is not None else None
    node_payload = []
    for node in cpg.subcomputations():
        if wanted is None or node.node_id in wanted:
            node_payload.append(subcomputation_to_dict(node))
    edge_payload = []
    for source, target, attrs in cpg.edges():
        if wanted is not None and (source not in wanted or target not in wanted):
            continue
        entry: Dict[str, object] = {
            "source": list(source),
            "target": list(target),
            "kind": attrs["kind"].value,
        }
        if attrs["kind"] is EdgeKind.SYNC:
            entry["object_id"] = attrs.get("object_id")
            entry["operation"] = attrs.get("operation", "")
        if attrs["kind"] is EdgeKind.DATA:
            entry["pages"] = sorted(attrs.get("pages", ()))
        edge_payload.append(entry)
    return {
        "format_version": FORMAT_VERSION,
        "nodes": node_payload,
        "edges": edge_payload,
    }


def cpg_from_dict(data: dict) -> ConcurrentProvenanceGraph:
    """Rebuild a CPG from :func:`cpg_to_dict` output."""
    if data.get("format_version") != FORMAT_VERSION:
        raise ProvenanceError(
            f"unsupported CPG format version {data.get('format_version')!r}"
        )
    cpg = ConcurrentProvenanceGraph()
    for node_data in data.get("nodes", ()):
        cpg.add_subcomputation(subcomputation_from_dict(node_data))
    for edge in data.get("edges", ()):
        source = tuple(edge["source"])
        target = tuple(edge["target"])
        kind = EdgeKind(edge["kind"])
        if kind is EdgeKind.CONTROL:
            cpg.add_control_edge(source, target)
        elif kind is EdgeKind.SYNC:
            cpg.add_sync_edge(
                source, target, object_id=edge.get("object_id"), operation=edge.get("operation", "")
            )
        else:
            cpg.add_data_edge(source, target, edge.get("pages", ()))
    return cpg


def cpg_to_json(cpg: ConcurrentProvenanceGraph, indent: Optional[int] = None) -> str:
    """Serialize ``cpg`` to a JSON string."""
    return json.dumps(cpg_to_dict(cpg), indent=indent, sort_keys=True)


def cpg_from_json(payload: str) -> ConcurrentProvenanceGraph:
    """Deserialize a CPG from a JSON string."""
    return cpg_from_dict(json.loads(payload))


def write_cpg(cpg: ConcurrentProvenanceGraph, path: str, indent: Optional[int] = 2) -> None:
    """Write ``cpg`` to ``path`` as JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(cpg_to_json(cpg, indent=indent))


def read_cpg(path: str) -> ConcurrentProvenanceGraph:
    """Read a CPG previously written with :func:`write_cpg`."""
    with open(path, "r", encoding="utf-8") as handle:
        return cpg_from_json(handle.read())


def serialized_size(cpg: ConcurrentProvenanceGraph, nodes: Optional[Iterable[NodeId]] = None) -> int:
    """Return the size in bytes of the compact (no indentation) serialization."""
    return len(json.dumps(cpg_to_dict(cpg, nodes=nodes), sort_keys=True).encode("utf-8"))

"""Trace event records.

The provenance tracker can optionally keep a flat, ordered log of every
event it observes (memory accesses at page granularity, branches,
synchronization operations, thread lifecycle).  The log is what the
snapshot facility serializes into its ring-buffer slots, and it is also a
convenient substrate for tests that want to assert on exact event
sequences.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional


class SyncSemantics(enum.Enum):
    """Whether a synchronization operation acts as an acquire or a release."""

    ACQUIRE = "acquire"
    RELEASE = "release"


@dataclass(frozen=True)
class TraceEvent:
    """Base class for every event in the trace log.

    Attributes:
        sequence: Global sequence number (assigned by the tracker).
        tid: Thread the event belongs to.
    """

    sequence: int
    tid: int


@dataclass(frozen=True)
class MemoryAccessEvent(TraceEvent):
    """First touch of a page by a sub-computation (read or write)."""

    page: int = 0
    is_write: bool = False
    subcomputation: int = 0


@dataclass(frozen=True)
class BranchEvent(TraceEvent):
    """A conditional or indirect branch observed through Intel PT."""

    site: int = 0
    taken: bool = True
    is_indirect: bool = False
    subcomputation: int = 0


@dataclass(frozen=True)
class SyncOperationEvent(TraceEvent):
    """An acquire or release on a synchronization object."""

    object_id: int = 0
    semantics: SyncSemantics = SyncSemantics.ACQUIRE
    operation: str = ""
    subcomputation: int = 0


@dataclass(frozen=True)
class ThreadStartEvent(TraceEvent):
    """A thread began executing."""

    parent_tid: Optional[int] = None


@dataclass(frozen=True)
class ThreadEndEvent(TraceEvent):
    """A thread finished executing."""

    subcomputations: int = 0


@dataclass(frozen=True)
class OutputEvent(TraceEvent):
    """Data left the program through the output shim (DIFT sink)."""

    size: int = 0
    subcomputation: int = 0


@dataclass
class EventLog:
    """An append-only, globally ordered list of trace events."""

    events: List[TraceEvent] = field(default_factory=list)
    _next_sequence: int = 0

    def next_sequence(self) -> int:
        """Reserve and return the next sequence number."""
        sequence = self._next_sequence
        self._next_sequence += 1
        return sequence

    def append(self, event: TraceEvent) -> None:
        """Append ``event`` (whose sequence number must already be set)."""
        self.events.append(event)

    def of_type(self, event_type: type) -> List[TraceEvent]:
        """Return every logged event of the given type, in order."""
        return [event for event in self.events if isinstance(event, event_type)]

    def for_thread(self, tid: int) -> List[TraceEvent]:
        """Return every logged event of thread ``tid``, in order."""
        return [event for event in self.events if event.tid == tid]

    def __len__(self) -> int:
        return len(self.events)

"""perf event records.

``perf record`` writes a stream of typed records into ``perf.data``:
MMAP/COMM records describe the process and its loaded images, ITRACE_START
marks the beginning of PT data for a process, AUX records reference chunks
of the AUX area, and LOST/AUX-truncation records mark data loss.  The
reproduction keeps the same record taxonomy so that the log-size accounting
of Figure 9 includes the perf framing, not just the raw PT bytes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional


class RecordType(enum.Enum):
    """The perf record types the reproduction models."""

    MMAP = "mmap"
    COMM = "comm"
    ITRACE_START = "itrace_start"
    AUX = "aux"
    AUXTRACE = "auxtrace"
    LOST = "lost"
    EXIT = "exit"


#: Fixed framing overhead charged per record (the real perf event header is
#: 8 bytes plus type-specific fields; 24 bytes is a representative average).
RECORD_HEADER_SIZE = 24


@dataclass(frozen=True)
class PerfRecord:
    """One record in the perf data stream.

    Attributes:
        type: Record type.
        pid: Process the record refers to.
        payload_size: Size of the record payload in bytes (AUXTRACE records
            count the referenced AUX data here).
        description: Human-readable summary used by ``perf script``.
    """

    type: RecordType
    pid: int
    payload_size: int = 0
    description: str = ""

    @property
    def size(self) -> int:
        """Total on-disk size of the record including framing."""
        return RECORD_HEADER_SIZE + self.payload_size


@dataclass
class PerfData:
    """An in-memory model of a ``perf.data`` file.

    Attributes:
        records: Every record in write order.
        aux_data: Raw AUX (PT) bytes per pid, in drain order.
        command: The recorded command line (for the file header).
    """

    records: List[PerfRecord] = field(default_factory=list)
    aux_data: dict = field(default_factory=dict)
    command: str = ""

    def add_record(self, record: PerfRecord) -> None:
        """Append a record."""
        self.records.append(record)

    def add_aux_data(self, pid: int, data: bytes) -> None:
        """Append drained AUX bytes for ``pid`` and account an AUXTRACE record."""
        if not data:
            return
        self.aux_data.setdefault(pid, bytearray()).extend(data)
        self.add_record(
            PerfRecord(
                RecordType.AUXTRACE,
                pid=pid,
                payload_size=len(data),
                description=f"auxtrace size {len(data)}",
            )
        )

    def aux_bytes(self, pid: Optional[int] = None) -> int:
        """Total AUX bytes stored (for one pid or overall)."""
        if pid is not None:
            return len(self.aux_data.get(pid, b""))
        return sum(len(chunk) for chunk in self.aux_data.values())

    def records_of(self, record_type: RecordType) -> List[PerfRecord]:
        """Records of one type, in order."""
        return [record for record in self.records if record.type is record_type]

    @property
    def total_size(self) -> int:
        """Size of the modelled perf.data file in bytes (framing + payloads)."""
        return sum(record.size for record in self.records)

    def raw_trace(self) -> bytes:
        """Concatenated AUX bytes of every traced process (for compression stats)."""
        return b"".join(bytes(chunk) for chunk in self.aux_data.values())

"""``perf script`` -- decoding a recorded PT trace for human consumption.

After ``perf record``, the branch information is still compressed packet
data; ``perf script`` runs the PT decoder over it (using the loaded-image
side-band) and prints one line per reconstructed branch.  The reproduction
produces the same shape of output and also exposes the decoded traces
programmatically, which is what the INSPECTOR session consumes to validate
its control-flow records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.perf.events import PerfData, RecordType
from repro.pt.binary_map import ImageMap
from repro.pt.decoder import DecodedTrace, PTDecoder, ReconstructedBranch, reconstruct_branches


@dataclass
class ScriptOutput:
    """The result of decoding one perf data file.

    Attributes:
        traces: Decoded packet stream per pid.
        branches: Reconstructed branch events per pid (only for pids whose
            branch-site side-band is available in the image map).
        lines: ``perf script``-style text lines.
        lost_events: Number of LOST records seen in the perf data.
    """

    traces: Dict[int, DecodedTrace] = field(default_factory=dict)
    branches: Dict[int, List[ReconstructedBranch]] = field(default_factory=dict)
    lines: List[str] = field(default_factory=list)
    lost_events: int = 0

    @property
    def total_branches(self) -> int:
        """Total branch outcomes decoded across processes."""
        return sum(trace.branch_count for trace in self.traces.values())


class PerfScript:
    """Decodes a :class:`PerfData` container the way ``perf script`` would."""

    def __init__(self, image_map: Optional[ImageMap] = None) -> None:
        self.image_map = image_map if image_map is not None else ImageMap()
        self._decoder = PTDecoder()

    def run(self, data: PerfData, max_lines_per_pid: int = 1000) -> ScriptOutput:
        """Decode ``data`` and produce script-style output.

        Args:
            data: The recorded perf data.
            max_lines_per_pid: Cap on generated text lines per process (the
                real tool streams; we keep a bounded sample for inspection).
        """
        output = ScriptOutput()
        output.lost_events = len(data.records_of(RecordType.LOST))
        for pid, chunk in data.aux_data.items():
            trace = self._decoder.decode_lenient(bytes(chunk))
            output.traces[pid] = trace
            sites = self.image_map.branch_sites(pid)
            if sites:
                reconstructed = reconstruct_branches(trace, sites, image_map=self.image_map)
                output.branches[pid] = reconstructed
                for branch in reconstructed[:max_lines_per_pid]:
                    kind = "jmp*" if branch.is_indirect else ("jcc+" if branch.taken else "jcc-")
                    image = branch.image or "unknown"
                    output.lines.append(f"pid {pid} {kind} {branch.site:#x} ({image})")
            else:
                for index, taken in enumerate(trace.tnt_bits[:max_lines_per_pid]):
                    output.lines.append(f"pid {pid} tnt[{index}] {'T' if taken else 'N'}")
        return output

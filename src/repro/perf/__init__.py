"""The perf-utility layer: ``perf record`` and ``perf script`` equivalents.

Where this package sits in the whole reproduction: ``docs/architecture.md``.
"""

from repro.perf.events import RECORD_HEADER_SIZE, PerfData, PerfRecord, RecordType
from repro.perf.record import PerfRecordSession
from repro.perf.script import PerfScript, ScriptOutput

__all__ = [
    "RECORD_HEADER_SIZE",
    "PerfData",
    "PerfRecord",
    "RecordType",
    "PerfRecordSession",
    "PerfScript",
    "ScriptOutput",
]

"""``perf record`` -- collecting the PT trace of an INSPECTOR run.

The session attaches the PT PMU to every process of the application's
cgroup, emits the side-band records (COMM, MMAP, ITRACE_START) a real
``perf record`` would write, periodically drains the per-process AUX
buffers into the perf data file, and notes LOST records when the AUX
buffers overflowed because the consumer could not keep up.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import PerfError
from repro.perf.events import PerfData, PerfRecord, RecordType
from repro.pt.binary_map import ImageMap
from repro.pt.pmu import IntelPTPMU


class PerfRecordSession:
    """Collects PT trace data from a PMU into a :class:`PerfData` container.

    Args:
        pmu: The Intel PT PMU tracing the application.
        image_map: The loaded-image map (produces MMAP records).
        command: Command line recorded in the file header.
    """

    def __init__(self, pmu: IntelPTPMU, image_map: Optional[ImageMap] = None, command: str = "") -> None:
        self.pmu = pmu
        self.image_map = image_map if image_map is not None else ImageMap()
        self.data = PerfData(command=command)
        self._started: Dict[int, bool] = {}
        self._finished = False

    # ------------------------------------------------------------------ #
    # Side-band records
    # ------------------------------------------------------------------ #

    def on_process_start(self, pid: int, name: str) -> None:
        """Record COMM + ITRACE_START for a newly traced process."""
        self.data.add_record(
            PerfRecord(RecordType.COMM, pid=pid, payload_size=len(name), description=name)
        )
        self.data.add_record(
            PerfRecord(RecordType.ITRACE_START, pid=pid, description=f"itrace start {name}")
        )
        self._started[pid] = True

    def on_mmap(self, pid: int, image_name: str, base: int, size: int) -> None:
        """Record an MMAP event (a loaded executable image)."""
        self.image_map.add_image(image_name, base, size, pid=pid)
        self.data.add_record(
            PerfRecord(
                RecordType.MMAP,
                pid=pid,
                payload_size=len(image_name) + 16,
                description=f"{image_name} @ {base:#x}+{size:#x}",
            )
        )

    def on_process_exit(self, pid: int) -> None:
        """Record process exit and drain its remaining AUX data."""
        self.drain(pid)
        self.data.add_record(PerfRecord(RecordType.EXIT, pid=pid, description="exit"))

    # ------------------------------------------------------------------ #
    # AUX collection
    # ------------------------------------------------------------------ #

    def drain(self, pid: Optional[int] = None) -> int:
        """Drain AUX buffers (of one pid or of every traced process).

        Returns:
            Number of bytes collected.
        """
        collected = 0
        pids = [pid] if pid is not None else self.pmu.traced_pids()
        for traced_pid in pids:
            try:
                buffer = self.pmu.aux_buffer(traced_pid)
            except PerfError:
                continue
            self.pmu.encoder(traced_pid).flush()
            payload = buffer.drain()
            if payload:
                self.data.add_aux_data(traced_pid, payload)
                collected += len(payload)
            if buffer.stats.bytes_lost:
                self.data.add_record(
                    PerfRecord(
                        RecordType.LOST,
                        pid=traced_pid,
                        payload_size=8,
                        description=f"lost {buffer.stats.bytes_lost} aux bytes",
                    )
                )
        return collected

    def finish(self) -> PerfData:
        """Flush and drain everything and return the perf data container."""
        if not self._finished:
            self.pmu.flush_all()
            self.drain()
            self._finished = True
        return self.data

"""The Phoenix *reverse_index* workload.

The original program walks a directory of HTML files and builds a reverse
index from link targets to the documents containing them.  Its defining
characteristic in the paper is *many small memory allocations across
threads*: every link found allocates a small entry and inserts it into a
shared index under a lock.  Under INSPECTOR every insert is a short
sub-computation, so the pages of the shared index are re-protected and
re-faulted over and over with almost no computation to amortise them --
which is why reverse_index is one of the three high-overhead outliers, with
the overhead attributed to the threading library.
"""

from __future__ import annotations

from typing import Dict, List

from repro.threads.program import ProgramAPI, join_all
from repro.workloads.base import DatasetSpec, InputDescriptor, PaperReference, Workload, chunk_ranges
from repro.workloads.datasets import pack_words, rng_for, scaled, unpack_words

#: Number of distinct link targets in the synthetic corpus.
LINK_TARGETS = 64

#: Words (tokens) per document; a fraction of them are links.
DOC_TOKENS = 32

#: Size in bytes of each allocated index entry (link id, document id).
ENTRY_SIZE = 16


class ReverseIndexWorkload(Workload):
    """Reverse link index built with many small allocations under a lock."""

    name = "reverse_index"
    suite = "phoenix"
    description = "Build a link -> documents reverse index from an HTML corpus"
    paper = PaperReference(
        dataset="datafiles",
        page_faults=2.61e4,
        faults_per_sec=10.35e4,
        log_mb=192,
        compressed_mb=5.7,
        compression_ratio=34,
        bandwidth_mb_per_sec=764,
        branch_instr_per_sec=2.87e9,
        overhead_band="high",
    )

    def generate_dataset(self, size: str = "medium", seed: int = 42) -> DatasetSpec:
        rng = rng_for(self.name, size, seed)
        documents = scaled(size, 48, 128, 320)
        tokens: List[int] = []
        expected_links = 0
        for _ in range(documents):
            for _ in range(DOC_TOKENS):
                if rng.random() < 0.25:
                    # Link token: encoded as (1 << 32) | target id.
                    tokens.append((1 << 32) | rng.randrange(LINK_TARGETS))
                    expected_links += 1
                else:
                    tokens.append(rng.randrange(1 << 20))
        return DatasetSpec(
            workload=self.name,
            size=size,
            payload=pack_words(tokens),
            meta={"documents": documents, "tokens_per_doc": DOC_TOKENS, "links": expected_links},
        )

    def run(self, api: ProgramAPI, inp: InputDescriptor, num_threads: int) -> Dict[str, object]:
        documents = inp.meta["documents"]
        # Shared index: one counter per link target plus a global entry count.
        index_counts_addr = api.calloc(LINK_TARGETS, 8)
        total_entries_addr = api.calloc(1, 8)
        index_lock = api.mutex("reverse_index.lock")

        def worker(wapi: ProgramAPI, doc_start: int, doc_end: int) -> int:
            found = 0
            doc = doc_start
            while wapi.branch(doc < doc_end, "ridx.doc_loop"):
                raw = wapi.load_bytes(inp.base + doc * DOC_TOKENS * 8, DOC_TOKENS * 8)
                tokens = unpack_words(raw)
                wapi.compute(2 * DOC_TOKENS)
                for token in tokens:
                    if not wapi.branch(token >> 32, "ridx.is_link"):
                        continue
                    target = token & 0xFFFF_FFFF
                    # A small allocation plus the insert, both inside the
                    # index lock: the paper's pathological pattern of many
                    # tiny cross-thread allocations and short critical
                    # sections.
                    wapi.lock(index_lock)
                    entry_addr = wapi.malloc(ENTRY_SIZE)
                    wapi.store(entry_addr, target)
                    wapi.store(entry_addr + 8, doc)
                    count_addr = index_counts_addr + target * 8
                    wapi.store(count_addr, wapi.load(count_addr) + 1)
                    wapi.store(total_entries_addr, wapi.load(total_entries_addr) + 1)
                    wapi.unlock(index_lock)
                    found += 1
                doc += 1
            return found

        handles = [
            api.spawn(worker, start, end, name=f"ridx-{index}")
            for index, (start, end) in enumerate(chunk_ranges(documents, num_threads))
        ]
        per_worker = [api.join(handle) for handle in handles]
        counts = [api.load(index_counts_addr + target * 8) for target in range(LINK_TARGETS)]
        total = api.load(total_entries_addr)
        api.write_output(pack_words(counts[:8]), source_addresses=[index_counts_addr])
        return {"total_links": total, "per_target": counts, "per_worker": per_worker}

    def verify(self, result: Dict[str, object], dataset: DatasetSpec) -> None:
        assert result["total_links"] == dataset.meta["links"], "total link count is wrong"
        assert sum(result["per_target"]) == dataset.meta["links"]

"""The PARSEC *streamcluster* workload.

The original performs online clustering of a point stream: in every round
each thread evaluates, for each of its points, whether opening a new centre
would reduce the total cost, synchronising with barriers between rounds.
Characteristics preserved: many barrier-separated rounds over the same
data, distance computations with a data-dependent branch per point (the
densest branch stream of the paper -- 7.8e9 branches/sec producing a 29 GB
trace, the largest of all benchmarks), and shared per-round accumulators.
"""

from __future__ import annotations

from typing import Dict, List

from repro.threads.program import ProgramAPI, join_all
from repro.workloads.base import DatasetSpec, InputDescriptor, PaperReference, Workload, chunk_ranges
from repro.workloads.datasets import pack_doubles, rng_for, scaled, unpack_doubles

#: Dimensionality of the streamed points.
DIMENSIONS = 4

#: Points per chunked read.
CHUNK = 128


class StreamclusterWorkload(Workload):
    """Online clustering with barrier-separated rounds and dense branching."""

    name = "streamcluster"
    suite = "parsec"
    description = "Online k-median clustering of a point stream"
    paper = PaperReference(
        dataset="2 5 1 10 10 5 none output.txt 16",
        page_faults=1.64e5,
        faults_per_sec=1.163e4,
        log_mb=29_300,
        compressed_mb=787.0,
        compression_ratio=37,
        bandwidth_mb_per_sec=2083,
        branch_instr_per_sec=7.78e9,
        overhead_band="low",
    )

    #: Barrier-separated rounds of the gain-evaluation loop.
    rounds = 10

    def generate_dataset(self, size: str = "medium", seed: int = 42) -> DatasetSpec:
        rng = rng_for(self.name, size, seed)
        points = scaled(size, 2_048, 6_144, 18_432)
        centres = 5
        values: List[float] = []
        for _ in range(points):
            values.extend(rng.uniform(0.0, 100.0) for _ in range(DIMENSIONS))
        return DatasetSpec(
            workload=self.name,
            size=size,
            payload=pack_doubles(values),
            meta={"points": points, "centres": centres},
        )

    def run(self, api: ProgramAPI, inp: InputDescriptor, num_threads: int) -> Dict[str, object]:
        points = inp.meta["points"]
        centres = inp.meta["centres"]
        # Shared state: current centres, per-worker partial costs/open
        # counters (reduced by the serial thread after each barrier), and
        # the per-round totals.
        centres_addr = api.calloc(centres * DIMENSIONS, 8)
        partial_cost_addr = api.calloc(num_threads, 8)
        partial_open_addr = api.calloc(num_threads, 8)
        cost_addr = api.calloc(self.rounds, 8)
        opened_addr = api.calloc(1, 8)
        round_barrier = api.barrier(num_threads, "streamcluster.round")

        initial = unpack_doubles(api.load_bytes(inp.base, centres * DIMENSIONS * 8))
        for offset, value in enumerate(initial):
            api.storef(centres_addr + offset * 8, value)

        def worker(wapi: ProgramAPI, index: int, start: int, end: int) -> float:
            local_cost_total = 0.0
            for round_index in range(self.rounds):
                current = [
                    wapi.loadf(centres_addr + offset * 8) for offset in range(centres * DIMENSIONS)
                ]
                threshold = 50.0 + 5.0 * round_index
                local_cost = 0.0
                would_open = 0
                cursor = start
                while wapi.branch(cursor < end, "streamcluster.point_loop"):
                    upper = min(cursor + CHUNK, end)
                    raw = wapi.load_bytes(
                        inp.base + cursor * DIMENSIONS * 8, (upper - cursor) * DIMENSIONS * 8
                    )
                    values = unpack_doubles(raw)
                    # Distance to every centre plus the gain bookkeeping
                    # (~6x the bare multiply-accumulate count).
                    wapi.compute(6 * centres * DIMENSIONS * (upper - cursor))
                    chunk_opens = 0
                    gain_outcomes = []
                    for point in range(upper - cursor):
                        coords = values[point * DIMENSIONS : (point + 1) * DIMENSIONS]
                        best = float("inf")
                        for centre in range(centres):
                            distance = 0.0
                            for dimension in range(DIMENSIONS):
                                diff = coords[dimension] - current[centre * DIMENSIONS + dimension]
                                distance += diff * diff
                            if distance < best:
                                best = distance
                        local_cost += best
                        opens = best > threshold * threshold
                        gain_outcomes.append(opens)
                        if opens:
                            chunk_opens += 1
                    # Two data-dependent branches per point (nearest-centre
                    # update and the "would opening a centre pay off?" test)
                    # are what make streamcluster's trace the paper's largest.
                    wapi.branch_run(gain_outcomes, "streamcluster.gain_test")
                    wapi.branch_run([True] * (upper - cursor), "streamcluster.point_loop")
                    would_open += chunk_opens
                    cursor = upper
                wapi.storef(partial_cost_addr + index * 8, local_cost)
                wapi.store(partial_open_addr + index * 8, would_open)
                local_cost_total += local_cost
                serial = wapi.barrier_wait(round_barrier)
                if serial:
                    # The serial thread reduces the partial results and
                    # nudges the first centre every round, so rounds differ.
                    round_cost = 0.0
                    round_opens = 0
                    for worker_index in range(num_threads):
                        round_cost += wapi.loadf(partial_cost_addr + worker_index * 8)
                        round_opens += wapi.load(partial_open_addr + worker_index * 8)
                    wapi.storef(cost_addr + round_index * 8, round_cost)
                    wapi.store(opened_addr, wapi.load(opened_addr) + round_opens)
                    for dimension in range(DIMENSIONS):
                        address = centres_addr + dimension * 8
                        wapi.storef(address, wapi.loadf(address) * 0.95)
                wapi.barrier_wait(round_barrier)
            return local_cost_total

        handles = [
            api.spawn(worker, index, start, end, name=f"sc-{index}")
            for index, (start, end) in enumerate(chunk_ranges(points, num_threads))
        ]
        join_all(api, handles)
        costs = [api.loadf(cost_addr + round_index * 8) for round_index in range(self.rounds)]
        opened = api.load(opened_addr)
        api.write_output(pack_doubles(costs), source_addresses=[cost_addr])
        return {"round_costs": costs, "candidate_opens": opened}

    def verify(self, result: Dict[str, object], dataset: DatasetSpec) -> None:
        costs = result["round_costs"]
        assert len(costs) == self.rounds
        assert all(cost >= 0.0 for cost in costs), "negative clustering cost"

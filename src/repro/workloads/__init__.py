"""Re-implementations of the Phoenix 2.0 and PARSEC 3.0 applications evaluated in the paper.

Where this package sits in the whole reproduction: ``docs/architecture.md``.
"""

from repro.workloads.base import (
    SIZES,
    DatasetSpec,
    InputDescriptor,
    PaperReference,
    Workload,
    chunk_ranges,
)
from repro.workloads.registry import (
    INPUT_SCALING_WORKLOADS,
    OUTLIER_WORKLOADS,
    WORKLOAD_CLASSES,
    all_workloads,
    get_workload,
    list_workloads,
)

__all__ = [
    "SIZES",
    "DatasetSpec",
    "InputDescriptor",
    "PaperReference",
    "Workload",
    "chunk_ranges",
    "INPUT_SCALING_WORKLOADS",
    "OUTLIER_WORKLOADS",
    "WORKLOAD_CLASSES",
    "all_workloads",
    "get_workload",
    "list_workloads",
]

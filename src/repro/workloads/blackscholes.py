"""The PARSEC *blackscholes* workload.

The original prices a portfolio of European options with the Black-Scholes
closed-form solution.  Characteristics preserved: an embarrassingly
parallel sweep with heavy floating-point work per option, a read-mostly
input, one output write per option block, and very little synchronization
-- the paper places it firmly in the low-overhead band with PT tracing as
the dominant cost.
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro.threads.program import ProgramAPI, join_all
from repro.workloads.base import DatasetSpec, InputDescriptor, PaperReference, Workload, chunk_ranges
from repro.workloads.datasets import pack_doubles, rng_for, scaled, unpack_doubles

#: Fields per option: spot, strike, rate, volatility, time, call/put flag.
FIELDS = 6

#: Options per chunked read.
CHUNK = 64


def _cumulative_normal(x: float) -> float:
    """Standard normal CDF via the error function."""
    return 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))


def black_scholes_price(
    spot: float, strike: float, rate: float, volatility: float, time: float, is_call: bool
) -> float:
    """Closed-form Black-Scholes price of a European option."""
    if time <= 0 or volatility <= 0:
        intrinsic = spot - strike if is_call else strike - spot
        return max(intrinsic, 0.0)
    d1 = (math.log(spot / strike) + (rate + 0.5 * volatility**2) * time) / (
        volatility * math.sqrt(time)
    )
    d2 = d1 - volatility * math.sqrt(time)
    if is_call:
        return spot * _cumulative_normal(d1) - strike * math.exp(-rate * time) * _cumulative_normal(d2)
    return strike * math.exp(-rate * time) * _cumulative_normal(-d2) - spot * _cumulative_normal(-d1)


class BlackScholesWorkload(Workload):
    """European option pricing with the Black-Scholes closed form."""

    name = "blackscholes"
    suite = "parsec"
    description = "Price a portfolio of European options (Black-Scholes)"
    paper = PaperReference(
        dataset="16 in_64K.txt prices.txt",
        page_faults=2.49e4,
        faults_per_sec=2.58e4,
        log_mb=851,
        compressed_mb=57.3,
        compression_ratio=15,
        bandwidth_mb_per_sec=882,
        branch_instr_per_sec=2.49e9,
        overhead_band="low",
    )

    def generate_dataset(self, size: str = "medium", seed: int = 42) -> DatasetSpec:
        rng = rng_for(self.name, size, seed)
        options = scaled(size, 2_048, 6_144, 18_432)
        values: List[float] = []
        for _ in range(options):
            values.extend(
                (
                    rng.uniform(10.0, 150.0),  # spot
                    rng.uniform(10.0, 150.0),  # strike
                    rng.uniform(0.01, 0.1),  # rate
                    rng.uniform(0.05, 0.6),  # volatility
                    rng.uniform(0.1, 2.0),  # time to maturity
                    1.0 if rng.random() < 0.5 else 0.0,  # call flag
                )
            )
        return DatasetSpec(
            workload=self.name,
            size=size,
            payload=pack_doubles(values),
            meta={"options": options},
        )

    def run(self, api: ProgramAPI, inp: InputDescriptor, num_threads: int) -> Dict[str, object]:
        options = inp.meta["options"]
        prices_addr = api.calloc(options, 8)

        def worker(wapi: ProgramAPI, start: int, end: int) -> float:
            checksum = 0.0
            cursor = start
            while wapi.branch(cursor < end, "blackscholes.option_loop"):
                upper = min(cursor + CHUNK, end)
                raw = wapi.load_bytes(
                    inp.base + cursor * FIELDS * 8, (upper - cursor) * FIELDS * 8
                )
                values = unpack_doubles(raw)
                # The closed-form evaluation is ~200 FLOP-equivalents/option.
                wapi.compute(200 * (upper - cursor))
                # One validity/maturity check per option; essentially always
                # taken (valid portfolios), hence the 15x compressibility.
                wapi.branch_run(
                    [values[option * FIELDS + 4] > 0.0 for option in range(upper - cursor)],
                    "blackscholes.maturity_check",
                )
                prices: List[float] = []
                for option in range(upper - cursor):
                    spot, strike, rate, vol, time, flag = values[
                        option * FIELDS : (option + 1) * FIELDS
                    ]
                    price = black_scholes_price(spot, strike, rate, vol, time, flag >= 0.5)
                    prices.append(price)
                    checksum += price
                wapi.store_bytes(prices_addr + cursor * 8, pack_doubles(prices))
                cursor = upper
            return checksum

        handles = [
            api.spawn(worker, start, end, name=f"bs-{index}")
            for index, (start, end) in enumerate(chunk_ranges(options, num_threads))
        ]
        checksums = [api.join(handle) for handle in handles]
        total = sum(checksums)
        api.write_output(pack_doubles([total]), source_addresses=[prices_addr])
        return {"checksum": total, "options": options, "prices_addr": prices_addr}

    def verify(self, result: Dict[str, object], dataset: DatasetSpec) -> None:
        values = unpack_doubles(dataset.payload)
        expected = 0.0
        for option in range(dataset.meta["options"]):
            spot, strike, rate, vol, time, flag = values[option * FIELDS : (option + 1) * FIELDS]
            expected += black_scholes_price(spot, strike, rate, vol, time, flag >= 0.5)
        assert abs(result["checksum"] - expected) < 1e-6 * max(1.0, abs(expected)), (
            "sum of option prices does not match the reference"
        )

"""The PARSEC *canneal* workload.

The original minimises the routing cost of a chip netlist with simulated
annealing: every move picks two random elements, evaluates the cost delta
of swapping them, and commits or rejects the swap.  Characteristics
preserved: random accesses that scatter over a large shared array (so a
sub-computation touches many distinct pages while doing little work per
page) and frequent short critical sections.  That combination makes canneal
the paper's largest page-fault producer (2.1e6 faults) and one of the three
high-overhead outliers, with the overhead attributed to the threading
library rather than PT.
"""

from __future__ import annotations

from typing import Dict, List

from repro.threads.program import ProgramAPI, join_all
from repro.workloads.base import DatasetSpec, InputDescriptor, PaperReference, Workload
from repro.workloads.datasets import pack_words, rng_for, scaled, unpack_words

#: Swap moves attempted per critical section (one sub-computation).  The
#: original holds its elements for long stretches of moves; long critical
#: sections are also what lets the page faults of a sub-computation
#: amortise over many moves.
MOVES_PER_STEP = 512


class CannealWorkload(Workload):
    """Simulated annealing over a netlist with random element swaps."""

    name = "canneal"
    suite = "parsec"
    description = "Simulated-annealing placement of netlist elements"
    paper = PaperReference(
        dataset="15 10000 2000 100000.nets 32",
        page_faults=2.11e6,
        faults_per_sec=21.57e4,
        log_mb=5_343,
        compressed_mb=315.0,
        compression_ratio=17,
        bandwidth_mb_per_sec=547,
        branch_instr_per_sec=1.55e9,
        overhead_band="high",
    )

    def generate_dataset(self, size: str = "medium", seed: int = 42) -> DatasetSpec:
        rng = rng_for(self.name, size, seed)
        elements = scaled(size, 8_192, 16_384, 32_768)
        moves = scaled(size, 8_192, 16_384, 32_768)
        placement = list(range(elements))
        rng.shuffle(placement)
        return DatasetSpec(
            workload=self.name,
            size=size,
            payload=pack_words(placement),
            meta={"elements": elements, "moves": moves, "seed": seed},
        )

    def run(self, api: ProgramAPI, inp: InputDescriptor, num_threads: int) -> Dict[str, object]:
        elements = inp.meta["elements"]
        total_moves = inp.meta["moves"]
        seed = inp.meta["seed"]
        # The netlist placement lives in the shared heap; every worker swaps
        # random entries of it.
        placement_addr = api.calloc(elements, 8)
        initial = unpack_words(api.load_bytes(inp.base, elements * 8))
        api.store_bytes(placement_addr, pack_words(initial))
        placement_lock = api.mutex("canneal.placement")
        accepted_addr = api.calloc(1, 8)

        moves_per_thread = max(total_moves // num_threads, 1)

        def worker(wapi: ProgramAPI, index: int) -> int:
            import random as _random

            rng = _random.Random(f"canneal:{seed}:{index}")
            accepted = 0
            steps = moves_per_thread // MOVES_PER_STEP
            step = 0
            while wapi.branch(step < steps, "canneal.step_loop"):
                wapi.lock(placement_lock)
                for _ in range(MOVES_PER_STEP):
                    first = rng.randrange(elements)
                    second = rng.randrange(elements)
                    a = wapi.load(placement_addr + first * 8)
                    b = wapi.load(placement_addr + second * 8)
                    # Routing-cost delta over both elements' nets (~300 ops:
                    # the original walks every net of both elements).
                    wapi.compute(300)
                    delta = (a - b) * (first - second)
                    if wapi.branch(delta > 0, "canneal.accept_swap"):
                        wapi.store(placement_addr + first * 8, b)
                        wapi.store(placement_addr + second * 8, a)
                        accepted += 1
                wapi.unlock(placement_lock)
                step += 1
            wapi.lock(placement_lock)
            wapi.store(accepted_addr, wapi.load(accepted_addr) + accepted)
            wapi.unlock(placement_lock)
            return accepted

        handles = [
            api.spawn(worker, index, name=f"canneal-{index}") for index in range(num_threads)
        ]
        join_all(api, handles)
        accepted = api.load(accepted_addr)
        checksum = sum(
            unpack_words(api.load_bytes(placement_addr, min(elements, 512) * 8))
        )
        api.write_output(pack_words([accepted, checksum]), source_addresses=[placement_addr])
        return {"accepted_moves": accepted, "checksum": checksum}

    def verify(self, result: Dict[str, object], dataset: DatasetSpec) -> None:
        total_moves = dataset.meta["moves"]
        assert 0 <= result["accepted_moves"] <= total_moves, "accepted moves out of range"

"""The Phoenix *pca* workload.

The original computes the mean vector and a sampled covariance matrix of a
dense matrix in two barrier-separated phases.  Characteristics preserved:
two phases over the same input separated by a barrier, partial results
merged under a mutex, and a moderate amount of arithmetic per page.
"""

from __future__ import annotations

from typing import Dict, List

from repro.threads.program import ProgramAPI, join_all
from repro.workloads.base import DatasetSpec, InputDescriptor, PaperReference, Workload, chunk_ranges
from repro.workloads.datasets import pack_doubles, rng_for, scaled, unpack_doubles

#: Number of covariance entries sampled in phase two (the paper's -s flag).
COVARIANCE_SAMPLES = 48


class PCAWorkload(Workload):
    """Mean and sampled covariance of a dense matrix, in two barrier phases."""

    name = "pca"
    suite = "phoenix"
    description = "Column means and sampled covariance of a dense matrix"
    paper = PaperReference(
        dataset="-r 4000 -c 4000 -s 100",
        page_faults=5.34e5,
        faults_per_sec=10.22e4,
        log_mb=1_900,
        compressed_mb=116.0,
        compression_ratio=16,
        bandwidth_mb_per_sec=364,
        branch_instr_per_sec=1.42e9,
        overhead_band="low",
    )

    def generate_dataset(self, size: str = "medium", seed: int = 42) -> DatasetSpec:
        rng = rng_for(self.name, size, seed)
        rows = scaled(size, 144, 256, 448)
        columns = scaled(size, 96, 160, 224)
        values = [rng.uniform(0.0, 10.0) for _ in range(rows * columns)]
        return DatasetSpec(
            workload=self.name,
            size=size,
            payload=pack_doubles(values),
            meta={"rows": rows, "columns": columns},
        )

    def run(self, api: ProgramAPI, inp: InputDescriptor, num_threads: int) -> Dict[str, object]:
        rows = inp.meta["rows"]
        columns = inp.meta["columns"]
        means_addr = api.calloc(columns, 8)
        cov_addr = api.calloc(COVARIANCE_SAMPLES, 8)
        merge_lock = api.mutex("pca.merge")
        phase_barrier = api.barrier(num_threads, "pca.phase")
        sample_pairs = [
            ((7 * index) % columns, (13 * index + 3) % columns) for index in range(COVARIANCE_SAMPLES)
        ]

        def worker(wapi: ProgramAPI, row_start: int, row_end: int) -> None:
            # Phase 1: partial column sums.
            partial = [0.0] * columns
            row = row_start
            while wapi.branch(row < row_end, "pca.mean_loop"):
                values = unpack_doubles(wapi.load_bytes(inp.base + row * columns * 8, columns * 8))
                # Load, accumulate, and update the running mean per cell.
                wapi.compute(8 * columns)
                wapi.branch_run([True] * columns, "pca.mean_cell_loop")
                for column in range(columns):
                    partial[column] += values[column]
                row += 1
            wapi.lock(merge_lock)
            for column in range(columns):
                address = means_addr + column * 8
                wapi.storef(address, wapi.loadf(address) + partial[column] / rows)
            wapi.unlock(merge_lock)

            # Every thread must see the final means before phase 2.
            wapi.barrier_wait(phase_barrier)
            means = [wapi.loadf(means_addr + column * 8) for column in range(columns)]

            # Phase 2: partial sampled covariance.
            cov_partial = [0.0] * COVARIANCE_SAMPLES
            row = row_start
            while wapi.branch(row < row_end, "pca.cov_loop"):
                values = unpack_doubles(wapi.load_bytes(inp.base + row * columns * 8, columns * 8))
                wapi.compute(24 * COVARIANCE_SAMPLES)
                wapi.branch_run([True] * COVARIANCE_SAMPLES, "pca.cov_sample_loop")
                for index, (ci, cj) in enumerate(sample_pairs):
                    cov_partial[index] += (values[ci] - means[ci]) * (values[cj] - means[cj])
                row += 1
            wapi.lock(merge_lock)
            for index in range(COVARIANCE_SAMPLES):
                address = cov_addr + index * 8
                wapi.storef(address, wapi.loadf(address) + cov_partial[index] / max(rows - 1, 1))
            wapi.unlock(merge_lock)

        handles = [
            api.spawn(worker, start, end, name=f"pca-{index}")
            for index, (start, end) in enumerate(chunk_ranges(rows, num_threads))
        ]
        join_all(api, handles)
        means = [api.loadf(means_addr + column * 8) for column in range(columns)]
        covariance = [api.loadf(cov_addr + index * 8) for index in range(COVARIANCE_SAMPLES)]
        api.write_output(pack_doubles(means[:8]), source_addresses=[means_addr])
        return {"means": means, "covariance_samples": covariance}

    def verify(self, result: Dict[str, object], dataset: DatasetSpec) -> None:
        rows = dataset.meta["rows"]
        columns = dataset.meta["columns"]
        values = unpack_doubles(dataset.payload)
        expected_first_mean = sum(values[row * columns] for row in range(rows)) / rows
        assert abs(result["means"][0] - expected_first_mean) < 1e-6, "first column mean is wrong"
